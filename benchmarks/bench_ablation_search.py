"""Ablation: what each search-framework component buys (paper §4.2).

The paper's framework is A* + space pruning + redundancy elimination +
comparative filtering, which together "significantly reduce the time
complexity and make time-optimal search feasible".  This bench ablates
the two toggleable components on a fixed workload and reports nodes
expanded and distinct states:

* ``informed`` — the admissible swap-aware heuristic (vs the bare
  remaining-critical-path bound);
* ``dominance`` — the comparative-analysis filter (equivalence checking
  stays on; without it the search would not terminate in useful time).

Every configuration must return the same optimal depth — the components
are pure accelerators.
"""

import pytest

from repro.arch import lnn
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.core import OptimalMapper

from .conftest import record_row

CONFIGS = {
    "full": dict(informed=True, dominance=True),
    "no-dominance": dict(informed=True, dominance=False),
    "uninformed": dict(informed=False, dominance=True),
    "neither": dict(informed=False, dominance=False),
}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_ablation_qft5_lnn(benchmark, config, run_telemetry):
    circuit = qft_skeleton(5)
    mapper = OptimalMapper(lnn(5), uniform_latency(1, 1),
                           telemetry=run_telemetry, **CONFIGS[config])
    result = benchmark.pedantic(
        lambda: mapper.map(circuit, initial_mapping=list(range(5))),
        rounds=1,
        iterations=1,
    )
    assert result.depth == 13  # all configurations are exact
    record_row(
        benchmark,
        config=config,
        depth=result.depth,
        nodes_expanded=result.stats["nodes_expanded"],
        nodes_generated=result.stats["nodes_generated"],
        distinct_states=result.stats["distinct_states"],
        equivalent_dropped=result.stats["filtered_equivalent"],
        dominated_dropped=result.stats["filtered_dominated"],
    )


@pytest.mark.parametrize("config", ["full", "neither"])
def test_ablation_random_circuit(benchmark, config):
    circuit = random_circuit(5, 10, two_qubit_fraction=0.8, seed=12)
    mapper = OptimalMapper(
        lnn(5), uniform_latency(1, 3), **CONFIGS[config]
    )
    result = benchmark.pedantic(
        lambda: mapper.map(circuit, initial_mapping=list(range(5))),
        rounds=1,
        iterations=1,
    )
    record_row(
        benchmark,
        config=config,
        depth=result.depth,
        nodes_expanded=result.stats["nodes_expanded"],
    )


def test_full_config_dominates_ablations(benchmark):
    """The complete framework expands the fewest nodes."""
    circuit = qft_skeleton(5)

    def run_all():
        counts = {}
        for name, flags in CONFIGS.items():
            mapper = OptimalMapper(lnn(5), uniform_latency(1, 1), **flags)
            result = mapper.map(circuit, initial_mapping=list(range(5)))
            counts[name] = result.stats["nodes_expanded"]
        return counts

    counts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert counts["full"] <= min(counts.values()) * 1.01
    record_row(benchmark, **counts)
