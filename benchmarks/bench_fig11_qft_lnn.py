"""Figure 2 / Figure 11: time-optimal QFT on LNN.

Regenerates (a) the exact-search result for QFT-5/QFT-6 on LNN — the paper
reports the 17-cycle QFT-6 butterfly found in under a second — and (b) the
generalized butterfly schedule (Fig. 13a) across sizes, checking the linear
4n−7 depth the paper's analysis derives.
"""

import pytest

from repro.arch import lnn
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper
from repro.qft import qft_lnn_depth_formula, qft_lnn_schedule
from repro.verify import validate_result

from .conftest import record_row

#: Paper-reported optimal depths (Fig. 11 and the §6.1.1 generalization).
PAPER_OPTIMAL = {4: None, 5: 13, 6: 17}


@pytest.mark.parametrize("n", [4, 5, 6])
def test_exact_search_qft_lnn(benchmark, n):
    """Search overhead + depth for QFT-n on LNN (paper: <1 s for QFT-6)."""
    circuit = qft_skeleton(n)
    mapper = OptimalMapper(lnn(n), uniform_latency(1, 1))

    def solve():
        return mapper.map(circuit, initial_mapping=list(range(n)))

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    validate_result(result)
    if PAPER_OPTIMAL[n] is not None:
        assert result.depth == PAPER_OPTIMAL[n]
    record_row(
        benchmark,
        n=n,
        measured_depth=result.depth,
        paper_depth=PAPER_OPTIMAL[n] or "n/a",
        swaps=result.num_inserted_swaps,
        nodes_expanded=result.stats["nodes_expanded"],
    )


@pytest.mark.parametrize("n", [6, 10, 16, 24, 32])
def test_butterfly_pattern_scaling(benchmark, n):
    """The generalized Fig. 13(a) schedule: depth 4n−7, verified."""
    result = benchmark(qft_lnn_schedule, n)
    validate_result(result)
    assert result.depth == qft_lnn_depth_formula(n) == 4 * n - 7
    record_row(
        benchmark,
        n=n,
        measured_depth=result.depth,
        formula_depth=4 * n - 7,
        swaps=result.num_inserted_swaps,
    )


def test_pattern_matches_search_at_qft6(benchmark):
    """The headline agreement: search == butterfly == 17 cycles at n=6."""
    circuit = qft_skeleton(6)
    mapper = OptimalMapper(lnn(6), uniform_latency(1, 1))
    searched = benchmark.pedantic(
        lambda: mapper.map(circuit, initial_mapping=list(range(6))),
        rounds=1,
        iterations=1,
    )
    pattern = qft_lnn_schedule(6)
    assert searched.depth == pattern.depth == 17
    record_row(
        benchmark,
        search_depth=searched.depth,
        pattern_depth=pattern.depth,
        paper_depth=17,
    )
