"""Figure 12: optimal QFT on the 2×N grid with SWAPs running ∥ gates.

The paper's first-reported discovery: QFT-8 on 2×4 in 17 cycles, 3n+O(1)
in general.  The default run checks the generalized schedule (17 cycles at
n=8) plus the exact search at n=6 on 2×3 (11 cycles); the full exact
QFT-8 search (paper: <30 s in C++, ~1 min here) runs under
``REPRO_BENCH_FULL=1``.
"""

import pytest

from repro.arch import grid
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton
from repro.core import OptimalMapper
from repro.qft import qft_2xn_depth_formula, qft_2xn_schedule
from repro.verify import validate_result

from .conftest import full_mode, record_row


def test_exact_search_qft6_on_2x3(benchmark):
    """Exact search on the 2×3 instance: depth 11 = 3·6 − 7."""
    circuit = qft_skeleton(6)
    mapper = OptimalMapper(grid(2, 3), uniform_latency(1, 1))
    result = benchmark.pedantic(
        lambda: mapper.map(circuit, initial_mapping=list(range(6))),
        rounds=1,
        iterations=1,
    )
    validate_result(result)
    assert result.depth == 11
    record_row(
        benchmark,
        n=6,
        measured_depth=result.depth,
        formula_depth=qft_2xn_depth_formula(6),
        nodes_expanded=result.stats["nodes_expanded"],
    )


@pytest.mark.skipif(not full_mode(), reason="set REPRO_BENCH_FULL=1 (~1-2 min)")
def test_exact_search_qft8_on_2x4(benchmark):
    """The paper's headline instance: QFT-8 on 2×4 is 17 cycles."""
    circuit = qft_skeleton(8)
    mapper = OptimalMapper(grid(2, 4), uniform_latency(1, 1))
    result = benchmark.pedantic(
        lambda: mapper.map(circuit, initial_mapping=list(range(8))),
        rounds=1,
        iterations=1,
    )
    validate_result(result)
    assert result.depth == 17
    record_row(benchmark, measured_depth=result.depth, paper_depth=17)


@pytest.mark.parametrize("n", [8, 12, 16, 24])
def test_mixed_pattern_scaling(benchmark, n):
    """Generalized Fig. 13(b) schedule: depth 3n−7, SWAPs overlap gates."""
    result = benchmark(qft_2xn_schedule, n)
    validate_result(result)
    assert result.depth == 3 * n - 7
    by_start = {}
    for op in result.ops:
        by_start.setdefault(op.start, set()).add(op.is_inserted_swap)
    mixed_cycles = sum(1 for kinds in by_start.values() if len(kinds) == 2)
    assert mixed_cycles > 0
    record_row(
        benchmark,
        n=n,
        measured_depth=result.depth,
        formula_depth=3 * n - 7,
        paper_depth_qft8=17 if n == 8 else "",
        cycles_mixing_swap_and_gate=mixed_cycles,
    )
