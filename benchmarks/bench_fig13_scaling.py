"""Figure 13: depth scaling of the three generalized QFT schedules.

Regenerates the series behind the paper's asymptotic claims:

* LNN butterfly (13a): 4n + O(1);
* 2×N mixed (13b): 3n + O(1), matching Maslov's lower-bound prediction;
* 2×N constrained (13c): 3n + O(1) with a +2 constant penalty.

Also reports SWAP counts (n(n−1)/2-ish — linear-depth is bought with
quadratically many SWAPs, which is why gate-count-optimal mappers behave
differently on QFT).
"""

import pytest

from repro.qft import (
    qft_2xn_constrained_schedule,
    qft_2xn_schedule,
    qft_lnn_schedule,
)
from repro.verify import validate_result

from .conftest import record_row

SIZES = [8, 12, 16, 20, 24, 32]

SCHEDULES = {
    "lnn-butterfly": (qft_lnn_schedule, lambda n: 4 * n - 7),
    "2xn-mixed": (qft_2xn_schedule, lambda n: 3 * n - 7),
    "2xn-constrained": (qft_2xn_constrained_schedule, lambda n: 3 * n - 5),
}


@pytest.mark.parametrize("pattern", sorted(SCHEDULES))
def test_depth_series(benchmark, pattern):
    emit, formula = SCHEDULES[pattern]

    def build_series():
        return [emit(n) for n in SIZES]

    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    depths = []
    for n, result in zip(SIZES, series):
        validate_result(result)
        assert result.depth == formula(n)
        depths.append(result.depth)
    slopes = {
        (b - a) // (m - n)
        for (n, a), (m, b) in zip(
            zip(SIZES, depths), list(zip(SIZES, depths))[1:]
        )
    }
    record_row(
        benchmark,
        pattern=pattern,
        sizes=SIZES,
        depths=depths,
        slope=sorted(slopes),
        swaps_at_n32=series[-1].num_inserted_swaps,
    )
    # Linear scaling with the paper's slope (4 for LNN, 3 for 2xN).
    expected_slope = 4 if pattern == "lnn-butterfly" else 3
    assert slopes == {expected_slope}


def test_2d_beats_1d_asymptotically(benchmark):
    """The 2×N architecture's 3n beats LNN's 4n at every size."""

    def gaps():
        return [
            qft_lnn_schedule(n).depth - qft_2xn_schedule(n).depth
            for n in SIZES
        ]

    deltas = benchmark.pedantic(gaps, rounds=1, iterations=1)
    assert all(d > 0 for d in deltas)
    assert deltas == sorted(deltas)  # the gap grows with n
    record_row(benchmark, sizes=SIZES, lnn_minus_2xn=deltas)
