"""Figure 14: constrained optimal QFT on 2×N (no SWAP/gate mixing).

Regenerates the 19-cycle QFT-8 schedule and the 3n−5 family, and checks
the two properties the paper highlights: no cycle mixes SWAPs with
computation gates, and the final layout mirrors the initial one.
"""

import pytest

from repro.analysis import is_mirrored_layout
from repro.qft import (
    qft_2xn_constrained_depth_formula,
    qft_2xn_constrained_schedule,
    qft_2xn_schedule,
)
from repro.verify import validate_result

from .conftest import record_row


@pytest.mark.parametrize("n", [8, 12, 16, 24])
def test_constrained_pattern(benchmark, n):
    result = benchmark(qft_2xn_constrained_schedule, n)
    validate_result(result)
    assert result.depth == qft_2xn_constrained_depth_formula(n) == 3 * n - 5
    by_start = {}
    for op in result.ops:
        by_start.setdefault(op.start, set()).add(op.is_inserted_swap)
    assert all(len(kinds) == 1 for kinds in by_start.values())
    assert is_mirrored_layout(result)
    record_row(
        benchmark,
        n=n,
        measured_depth=result.depth,
        paper_depth_qft8=19 if n == 8 else "",
        mirrored_layout=True,
    )


def test_mixing_saves_two_cycles(benchmark):
    """Fig. 12 vs Fig. 14: allowing SWAP ∥ gate saves exactly 2 cycles."""

    def both():
        return [
            (n, qft_2xn_schedule(n).depth, qft_2xn_constrained_schedule(n).depth)
            for n in (8, 12, 16)
        ]

    rows = benchmark(both)
    for n, mixed, constrained in rows:
        assert constrained - mixed == 2
    record_row(
        benchmark,
        qft8_mixed=rows[0][1],
        qft8_constrained=rows[0][2],
        paper=(17, 19),
    )
