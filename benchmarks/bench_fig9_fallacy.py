"""Figure 9: the meet-in-the-middle fallacy in the heuristic's SWAP split.

Regenerates the example family: two operands of a distant gate whose
predecessor chains have unequal lengths.  The heuristic enumerates every
(r, s) split of the required d−1 SWAPs and uses the slack of each chain;
the even split is strictly worse whenever the slack is uneven, exactly the
paper's point.  Also measures the cost of evaluating h(v), since the split
enumeration is in the search's innermost loop.
"""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.heuristic import heuristic_cost
from repro.core.problem import MappingProblem
from repro.core.state import SearchNode

from .conftest import record_row


def _node(problem):
    mapping = tuple(range(problem.num_logical))
    inv = list(mapping)
    return SearchNode(
        time=0,
        pos=mapping,
        inv=tuple(inv),
        ptr=(0,) * problem.num_logical,
        started=0,
        inflight=(),
        last_swaps=frozenset(),
        prev_startable=frozenset(),
        parent=None,
        actions=(),
    )


def _fallacy_instance(chain_len, distance, swap_cycles):
    """One operand with a ``chain_len`` prefix, the other idle, at
    ``distance`` on an LNN chain."""
    n = distance + 1
    circuit = Circuit(n)
    for _ in range(chain_len):
        circuit.h(0)
    circuit.gt(0, n - 1)
    return MappingProblem(circuit, lnn(n), uniform_latency(1, swap_cycles))


def _middle_split_estimate(problem):
    """What a naive meet-in-the-middle heuristic would report."""
    chain = problem.num_gates - 1
    d = problem.num_physical - 1
    swaps_each = (d - 1 + 1) // 2
    u = chain
    delay = max(swaps_each * problem.swap_len - 0, 0)  # busy-chain slack 0
    return u + delay + 1


@pytest.mark.parametrize("distance,chain", [(5, 3), (7, 5), (9, 7)])
def test_uneven_split_beats_middle(benchmark, distance, chain):
    problem = _fallacy_instance(chain, distance, swap_cycles=2)
    node = _node(problem)
    h = benchmark(heuristic_cost, problem, node)
    naive = _middle_split_estimate(problem)
    assert h < naive
    record_row(
        benchmark,
        distance=distance,
        chain_len=chain,
        heuristic=h,
        naive_middle_split=naive,
        saved_cycles=naive - h,
    )


def test_fig9_exact_numbers(benchmark):
    """The concrete Fig. 9 parameters: distance 5, SWAP 2 cycles.

    Even split: 4 extra delay cycles; best split: 3 — the heuristic must
    pick the best.
    """
    problem = _fallacy_instance(3, 5, swap_cycles=2)
    h = benchmark(heuristic_cost, problem, _node(problem))
    assert h == 3 + 3 + 1  # chain + best-split delay + gate
    record_row(benchmark, heuristic=h, even_split_value=3 + 4 + 1)
