"""Scalability of the practical mapper (paper §6.2: "scalable up to
hundreds of thousands of gates").

Measures routing time of the practical TOQM mapper against circuit size
on IBM Q20 Tokyo and checks the growth is close to linear (the per-gate
cost is bounded by the expansion caps and the look-ahead window, so time
should scale ~O(gates); a super-quadratic blow-up would mean the pruning
regressed).  Absolute per-gate cost is a pure-Python number — the paper's
C++ implementation is a large constant factor faster.
"""

import time

import pytest

from repro.arch import ibm_tokyo
from repro.circuit import IBM_LATENCY
from repro.circuit.generators import random_circuit
from repro.core import HeuristicMapper
from repro.verify import validate_result

from .conftest import full_mode, record_row

SIZES = [125, 250, 500, 1000] + ([2000, 4000] if full_mode() else [])


@pytest.mark.parametrize("num_gates", SIZES)
def test_practical_mapper_scaling(benchmark, num_gates):
    circuit = random_circuit(
        16, num_gates, two_qubit_fraction=0.55, seed=17
    )
    arch = ibm_tokyo()
    mapper = HeuristicMapper(arch, IBM_LATENCY)
    result = benchmark.pedantic(
        lambda: mapper.map(circuit), rounds=1, iterations=1
    )
    validate_result(result)
    record_row(
        benchmark,
        gates=num_gates,
        depth=result.depth,
        swaps=result.num_inserted_swaps,
        expansions=result.stats["nodes_expanded"],
        expansions_per_gate=round(
            result.stats["nodes_expanded"] / num_gates, 2
        ),
    )


def test_growth_is_subquadratic(benchmark):
    """Doubling the gate count should not quadruple the routing time."""
    arch = ibm_tokyo()

    def measure():
        times = []
        for gates in (250, 500, 1000):
            circuit = random_circuit(
                16, gates, two_qubit_fraction=0.55, seed=23
            )
            start = time.perf_counter()
            HeuristicMapper(arch, IBM_LATENCY).map(circuit)
            times.append(time.perf_counter() - start)
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio_1 = times[1] / times[0]
    ratio_2 = times[2] / times[1]
    record_row(
        benchmark,
        seconds=[round(t, 2) for t in times],
        doubling_ratios=[round(ratio_1, 2), round(ratio_2, 2)],
    )
    # Linear doubling ratio is 2; leave generous head-room for noise and
    # the queue warm-up, but reject quadratic (4x) growth.
    assert ratio_1 < 3.5
    assert ratio_2 < 3.5
