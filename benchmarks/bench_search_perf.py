"""Search-performance trajectory harness: emits ``BENCH_search.json``.

Unlike the figure/table benches (which reproduce *paper* numbers), this
script tracks *our own* mapper throughput over time so performance work
has a recorded baseline to be held against.  It runs a small suite of
exact and heuristic searches, computes nodes/sec, wall time and the
heuristic-memo hit rate per suite, and writes everything — including the
pre-recorded baseline and the speedup against it — to one JSON file.

Run it directly (no pytest)::

    PYTHONPATH=src python benchmarks/bench_search_perf.py
    PYTHONPATH=src python benchmarks/bench_search_perf.py --tiny \
        --out /tmp/BENCH_search.json

``--tiny`` shrinks every suite for CI smoke runs; ``--check-speedup``
exits non-zero when the QFT-8/LNN microbench regresses below the given
multiple of the recorded baseline (off by default — CI uploads the JSON
but never gates on wall-clock, which is too noisy on shared runners).

How to read the output: ``suites.<name>.nodes_per_sec`` is the
throughput headline (median over iterations); ``memo_hit_rate`` is
``hits / (hits + misses)`` of the whole-evaluation heuristic cache; and
``speedup_vs_baseline`` divides the current microbench throughput by
``baseline.qft8_lnn_exact_nodes_per_sec``, which was measured on the
commit named in ``baseline.commit`` with this same script's
methodology.

The report is *append-only over time*: every run adds one entry to the
``trajectory`` list (``{commit, date, mode, pruning, suites}``) while
the top-level fields always describe the latest run.  ``--no-prune``
runs the exact-solve suites with every search-space reduction disabled
(incumbent bound, active-SWAP restriction, symmetry quotient) — the
"before" point the pruned default is compared against; ``repro
bench-trend`` tabulates the whole trajectory.

The ``*_solve`` suites measure mode 2 end-to-end (initial-mapping
search + routing, the paper's Table-2 configuration); the budgeted
microbench keeps the reduction-free mode-1 configuration so its
nodes/sec stays comparable with the recorded pre-overhaul baseline.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Dict, Optional

from repro.analysis.batch import BatchTask, map_many
from repro.arch import grid, lnn
from repro.circuit import uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.core import HeuristicMapper, OptimalMapper, SearchBudgetExceeded
from repro.core.kernels import resolve_backend

#: Throughput of the QFT-8/LNN exact microbench measured immediately
#: before the hot-path overhaul landed, with this script's methodology
#: (median of 3 runs, 20k-node budget, uniform(1,3) latency).  The
#: trajectory point every later run is compared against.
BASELINE = {
    "commit": "b9dead3",
    "label": "pre-overhaul",
    "qft8_lnn_exact_nodes_per_sec": 3882.1,
}

MICRO_SUITE = "qft8_lnn_exact"


def _memo_hit_rate(stats: Dict) -> Optional[float]:
    hits = stats.get("memo_hits")
    misses = stats.get("memo_misses")
    if hits is None or misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def _run_exact_budgeted(num_qubits: int, max_nodes: int,
                        iterations: int, kernel: Optional[str]) -> Dict:
    """Exact search driven into its node budget: pure-throughput probe."""
    circuit = qft_skeleton(num_qubits)
    samples = []
    for _ in range(iterations):
        # Reduction-free configuration: the recorded baseline predates
        # the branch-and-bound layer, so the throughput microbench keeps
        # measuring the raw expansion loop.
        mapper = OptimalMapper(
            lnn(num_qubits), uniform_latency(1, 3), max_nodes=max_nodes,
            prune_swaps=False, seed_incumbent=False, reduce_symmetry=False,
            kernel=kernel,
        )
        try:
            result = mapper.map(
                circuit, initial_mapping=list(range(num_qubits))
            )
            stats = result.stats  # solved inside the budget (tiny mode)
        except SearchBudgetExceeded as exc:
            stats = exc.partial_stats
        samples.append(stats)
    rates = [s["nodes_expanded"] / s["seconds"] for s in samples]
    mid = samples[len(samples) // 2]
    return {
        "kind": "exact-budgeted",
        "iterations": iterations,
        "nodes_expanded": int(mid["nodes_expanded"]),
        "wall_seconds": statistics.median(s["seconds"] for s in samples),
        "nodes_per_sec": statistics.median(rates),
        "memo_hit_rate": _memo_hit_rate(mid),
    }


def _run_exact_solve(num_qubits: int, arch, iterations: int,
                     pruned: bool, kernel: Optional[str]) -> Dict:
    """Mode-2 exact solve (placement + routing) run to optimality.

    ``pruned`` toggles the whole search-space-reduction layer at once
    (incumbent bound, active-SWAP restriction, symmetry quotient); the
    resulting ``nodes_expanded`` is deterministic either way, which is
    what lets CI gate on it.
    """
    circuit = qft_skeleton(num_qubits)
    samples = []
    depth = None
    for _ in range(iterations):
        mapper = OptimalMapper(
            arch, uniform_latency(1, 3), search_initial_mapping=True,
            prune_swaps=pruned, seed_incumbent=pruned,
            reduce_symmetry=pruned, kernel=kernel,
        )
        result = mapper.map(circuit)
        depth = result.depth
        samples.append(result.stats)
    rates = [s["nodes_expanded"] / s["seconds"] for s in samples]
    mid = samples[len(samples) // 2]
    return {
        "kind": "exact-solve-mode2",
        "iterations": iterations,
        "pruned": pruned,
        "depth": depth,
        "nodes_expanded": int(mid["nodes_expanded"]),
        "pruned_by_bound": int(mid.get("pruned_by_bound", 0)),
        "symmetry_pruned": int(mid.get("symmetry_pruned", 0)),
        "swaps_restricted": int(mid.get("swaps_restricted", 0)),
        "wall_seconds": statistics.median(s["seconds"] for s in samples),
        "nodes_per_sec": statistics.median(rates),
        "memo_hit_rate": _memo_hit_rate(mid),
    }


def _run_portfolio_solve(num_qubits: int, arch, iterations: int,
                         kernel: Optional[str]) -> Dict:
    """Portfolio race to a proven optimum, against the seeded baseline.

    Records the before/after node counts the portfolio work is judged
    by: ``baseline_nodes_expanded`` is the incumbent-seeded exact search
    (the pre-portfolio configuration), ``nodes_expanded`` the portfolio
    exact lane with every bound on.  Both are deterministic — the held
    seed is offered before the exact lane starts and the side lanes
    never beat it on these instances — so ``bench-trend --check`` gates
    on the node count as tightly as on the other solve suites.
    """
    from repro.analysis.portfolio import PortfolioMapper

    circuit = qft_skeleton(num_qubits)
    latency = uniform_latency(1, 3)
    baseline = OptimalMapper(
        arch, latency, search_initial_mapping=True, kernel=kernel
    ).map(circuit)
    samples = []
    depth = None
    optimal = False
    for _ in range(iterations):
        result = PortfolioMapper(arch, latency, kernel=kernel).map(circuit)
        depth = result.depth
        optimal = result.optimal
        samples.append(result.stats)
    rates = [s["nodes_expanded"] / s["seconds"] for s in samples]
    mid = samples[len(samples) // 2]
    nodes = int(mid["nodes_expanded"])
    base_nodes = int(baseline.stats["nodes_expanded"])
    return {
        "kind": "portfolio-solve-mode2",
        "iterations": iterations,
        "depth": depth,
        "optimal": optimal,
        "lanes_finished": int(mid.get("lanes_finished", 0)),
        "winner_lane": mid.get("winner_lane"),
        "nodes_expanded": nodes,
        "closed_dominated": int(mid.get("closed_dominated", 0)),
        "root_candidates_restricted": int(
            mid.get("root_candidates_restricted", 0)
        ),
        "baseline_nodes_expanded": base_nodes,
        "nodes_reduction_pct": (
            round(100.0 * (base_nodes - nodes) / base_nodes, 1)
            if base_nodes else 0.0
        ),
        "wall_seconds": statistics.median(s["seconds"] for s in samples),
        "nodes_per_sec": statistics.median(rates),
        "memo_hit_rate": _memo_hit_rate(mid),
    }


def _run_heuristic(num_qubits: int, iterations: int,
                   kernel: Optional[str]) -> Dict:
    """Practical-mapper probe (layer-limited search, trimmed queue)."""
    circuit = qft_skeleton(num_qubits)
    samples = []
    depth = None
    for _ in range(iterations):
        mapper = HeuristicMapper(
            lnn(num_qubits), uniform_latency(1, 3), kernel=kernel
        )
        result = mapper.map(circuit, initial_mapping=list(range(num_qubits)))
        depth = result.depth
        samples.append(result.stats)
    rates = [s["nodes_expanded"] / s["seconds"] for s in samples]
    mid = samples[len(samples) // 2]
    return {
        "kind": "heuristic",
        "iterations": iterations,
        "depth": depth,
        "nodes_expanded": int(mid["nodes_expanded"]),
        "wall_seconds": statistics.median(s["seconds"] for s in samples),
        "nodes_per_sec": statistics.median(rates),
        "memo_hit_rate": _memo_hit_rate(mid),
    }


def _run_batch(num_circuits: int, workers: int,
               kernel: Optional[str]) -> Dict:
    """Batch-runner probe: map_many over random circuits."""
    tasks = [
        BatchTask(
            label=f"rand5-{seed}",
            circuit=random_circuit(5, 8, seed=seed),
            mapper=OptimalMapper(
                lnn(5), uniform_latency(1, 3), max_nodes=50000,
                kernel=kernel,
            ),
        )
        for seed in range(num_circuits)
    ]
    start = time.perf_counter()
    records = map_many(tasks, max_workers=workers, keep_results=False)
    wall = time.perf_counter() - start
    nodes = sum(int(r.stats.get("nodes_expanded", 0)) for r in records)
    return {
        "kind": "batch",
        "circuits": num_circuits,
        "workers": workers,
        "succeeded": sum(1 for r in records if r.ok),
        "nodes_expanded": nodes,
        "wall_seconds": wall,
        "nodes_per_sec": nodes / wall if wall > 0 else None,
        "memo_hit_rate": None,
    }


def run_suites(tiny: bool, pruned: bool = True,
               kernel: Optional[str] = None) -> Dict[str, Dict]:
    if tiny:
        return {
            MICRO_SUITE: _run_exact_budgeted(
                6, max_nodes=2000, iterations=1, kernel=kernel
            ),
            "qft4_lnn_solve": _run_exact_solve(
                4, lnn(4), iterations=3, pruned=pruned, kernel=kernel
            ),
            "portfolio_qft_lnn": _run_portfolio_solve(
                4, lnn(4), iterations=1, kernel=kernel
            ),
            "heuristic_qft6_lnn": _run_heuristic(
                6, iterations=2, kernel=kernel
            ),
            "batch_random5": _run_batch(
                num_circuits=2, workers=1, kernel=kernel
            ),
        }
    return {
        MICRO_SUITE: _run_exact_budgeted(
            8, max_nodes=20000, iterations=3, kernel=kernel
        ),
        "qft5_lnn_solve": _run_exact_solve(
            5, lnn(5), iterations=3, pruned=pruned, kernel=kernel
        ),
        "qft6_2xn_solve": _run_exact_solve(
            6, grid(2, 3), iterations=3, pruned=pruned, kernel=kernel
        ),
        "portfolio_qft_lnn": _run_portfolio_solve(
            5, lnn(5), iterations=3, kernel=kernel
        ),
        "heuristic_qft8_lnn": _run_heuristic(8, iterations=3, kernel=kernel),
        "batch_random5": _run_batch(num_circuits=4, workers=1, kernel=kernel),
    }


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def _trajectory_entry(
    report: Dict,
    run_id: Optional[str] = None,
    ledger_path: Optional[str] = None,
) -> Dict:
    """Compact per-run record appended to the ``trajectory`` list.

    ``run_id`` / ``git_sha`` / ``ledger_path`` make each bench-trend row
    traceable to full artifacts: the short ``commit`` stays for display,
    the full SHA pins the exact tree, and the run's ledger entry (host
    info, config fingerprint, artifacts) lives under ``run_id`` in
    ``<ledger_path>/index.jsonl``.  ``ledger_path`` is ``None`` when no
    ledger was configured.
    """
    from repro.obs.ledger import git_sha

    return {
        "commit": _current_commit(),
        "git_sha": git_sha(),
        "run_id": run_id,
        "ledger_path": ledger_path,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "mode": report["mode"],
        "pruning": report["pruning"],
        "kernel_backend": report["kernel_backend"],
        "python_version": report["python_version"],
        "cpu_count": report["cpu_count"],
        "suites": {
            name: {
                key: suite[key]
                for key in ("kind", "depth", "nodes_expanded",
                            "nodes_per_sec", "wall_seconds")
                if key in suite
            }
            for name, suite in report["suites"].items()
        },
    }


def _load_trajectory(path: str) -> list:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return []
    trajectory = previous.get("trajectory")
    return list(trajectory) if isinstance(trajectory, list) else []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="shrunken suites for CI smoke runs (microbench label kept, "
             "but throughput is NOT comparable to full runs)",
    )
    parser.add_argument(
        "--out", default="benchmarks/results/BENCH_search.json",
        help="output path for the JSON report",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless microbench nodes/sec >= X * recorded baseline "
             "(full mode only)",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="run the exact-solve suites with every search-space "
             "reduction disabled (the 'before' trajectory point)",
    )
    parser.add_argument(
        "--kernel", default=None,
        choices=["pure", "vector", "compiled"],
        help="kernel backend for every suite (default: best available); "
             "the resolved backend is recorded per trajectory entry and "
             "bench-trend only compares entries of the same backend",
    )
    parser.add_argument(
        "--flight-recorder", default=None, metavar="DIR",
        help="attach the passive flight recorder (resource sampler + "
             "sampling profiler, search stays on the fast path) across "
             "the whole run; writes flight.jsonl + profile.folded under "
             "DIR and a summary into the report",
    )
    parser.add_argument(
        "--ledger-dir", default=None, metavar="DIR",
        help="record this bench run in the run ledger at DIR (also "
             "honors $REPRO_LEDGER_DIR); every trajectory entry carries "
             "the run_id either way",
    )
    args = parser.parse_args(argv)

    from repro.obs.ledger import LEDGER_ENV, RunLedger, new_run_id

    run_id = new_run_id()
    ledger_run = None
    ledger_root = args.ledger_dir or os.environ.get(LEDGER_ENV)
    if ledger_root:
        ledger = RunLedger(ledger_root)
        ledger_run = ledger.open_run(
            "bench",
            {
                "mode": "tiny" if args.tiny else "full",
                "pruning": "off" if args.no_prune else "on",
                "kernel": args.kernel,
            },
            run_id=run_id,
        )

    recorder = None
    if args.flight_recorder:
        from repro.obs import JsonlSink, Telemetry

        os.makedirs(args.flight_recorder, exist_ok=True)
        recorder = Telemetry(
            sink=JsonlSink(
                os.path.join(args.flight_recorder, "flight.jsonl")
            ),
            sample_resources=True,
            profile=True,
            profile_collapsed=os.path.join(
                args.flight_recorder, "profile.folded"
            ),
            hot_path=False,
        )

    backend = resolve_backend(args.kernel).name
    suites = run_suites(args.tiny, pruned=not args.no_prune,
                        kernel=args.kernel)
    flight_summary = None
    if recorder is not None:
        final = recorder.finish() or {}
        profile = final.get("profile", {})
        flight_summary = {
            "directory": args.flight_recorder,
            "resources": final.get("resources", {}),
            "profile": {
                key: profile.get(key)
                for key in ("samples", "kernel_samples", "kernel_pct")
            },
        }
    report = {
        "schema": "repro.bench_search/2",
        "mode": "tiny" if args.tiny else "full",
        "pruning": "off" if args.no_prune else "on",
        "kernel_backend": backend,
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "baseline": dict(BASELINE),
        "suites": suites,
    }
    if flight_summary is not None:
        report["flight_recorder"] = flight_summary
    if not args.tiny:
        current = suites[MICRO_SUITE]["nodes_per_sec"]
        report["speedup_vs_baseline"] = {
            MICRO_SUITE: current / BASELINE["qft8_lnn_exact_nodes_per_sec"]
        }
    report["trajectory"] = _load_trajectory(args.out) + [
        _trajectory_entry(
            report,
            run_id=run_id,
            ledger_path=ledger_run.ledger.root if ledger_run else None,
        )
    ]

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    if ledger_run is not None:
        ledger_run.add_artifact("bench_json", args.out)
        if args.flight_recorder:
            ledger_run.add_artifact("flight_recorder", args.flight_recorder)
        ledger_run.finish("ok", stats={
            name: {
                "nodes_expanded": suite.get("nodes_expanded"),
                "nodes_per_sec": suite.get("nodes_per_sec"),
            }
            for name, suite in suites.items()
        })

    print(f"{'kernel backend':22s} {backend:>18s}  "
          f"(python {report['python_version']}, "
          f"{report['cpu_count']} cpu)")
    for name, suite in suites.items():
        rate = suite.get("nodes_per_sec")
        rate_txt = f"{rate:,.0f} nodes/s" if rate else "—"
        memo = suite.get("memo_hit_rate")
        memo_txt = f"memo {memo:.1%}" if memo is not None else "memo —"
        print(f"{name:22s} {rate_txt:>18s}  "
              f"{suite['wall_seconds']:.3f}s  {memo_txt}")
    if "speedup_vs_baseline" in report:
        speedup = report["speedup_vs_baseline"][MICRO_SUITE]
        print(f"{'speedup vs baseline':22s} {speedup:>17.2f}x  "
              f"(baseline {BASELINE['commit']})")
        if args.check_speedup is not None and speedup < args.check_speedup:
            print(
                f"FAIL: microbench speedup {speedup:.2f}x below required "
                f"{args.check_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
