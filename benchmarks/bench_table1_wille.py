"""Table 1: optimal cycles for the Wille building-block suite on IBM QX2.

Latencies per the paper: SWAP 6 cycles, CX 2 cycles, single-qubit gates 1.
Both the initial mapping and the transformed circuit are solved optimally
(Section 5.3 mode 2), as in the paper.  Each row reports the measured
ideal/optimal cycles next to the published ones; the benchmark time is the
paper's "Mapper Overhead" column (theirs is C++ on a Xeon, ours is pure
Python, so absolute numbers differ by a constant factor).

Rows whose optimal search needs more than the per-row budget are reported
as ``budget`` without failing; ``REPRO_BENCH_FULL=1`` raises the budget
and runs every row.
"""

import pytest

from repro.arch import ibm_qx2
from repro.benchcircuits import TABLE1, wille_circuit
from repro.circuit import TABLE1_LATENCY
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.verify import validate_result

from .conftest import full_mode, record_row

#: Rows measured to exceed a Python-friendly budget in default mode.
_SLOW_ROWS = {"4mod5-v0_19", "alu-v3_34", "mod5d1_63", "mod5mils_65"}


def _rows():
    for row in TABLE1:
        if full_mode() or row.name not in _SLOW_ROWS:
            yield row


@pytest.mark.parametrize("row", list(_rows()), ids=lambda r: r.name)
def test_table1_row(benchmark, row):
    circuit = wille_circuit(row.name)
    budget = 900.0 if full_mode() else 60.0
    mapper = OptimalMapper(
        ibm_qx2(),
        TABLE1_LATENCY,
        search_initial_mapping=True,
        max_seconds=budget,
    )

    def solve():
        try:
            return mapper.map(circuit)
        except SearchBudgetExceeded:
            return None

    result = benchmark.pedantic(solve, rounds=1, iterations=1)
    ideal = circuit.depth(TABLE1_LATENCY)
    if result is None:
        record_row(
            benchmark,
            benchmark_name=row.name,
            measured_ideal=ideal,
            measured_optimal="budget",
            paper_ideal=row.ideal_cycle,
            paper_optimal=row.optimal_cycle,
        )
        return
    validate_result(result)
    assert result.optimal
    assert result.depth >= ideal
    # Shape: rows the paper solves at the ideal depth are embeddable and
    # must stay swap-free here too.
    if row.optimal_cycle == row.ideal_cycle:
        assert result.depth == ideal
    record_row(
        benchmark,
        benchmark_name=row.name,
        n=row.num_qubits,
        gates=len(circuit),
        measured_ideal=ideal,
        measured_optimal=result.depth,
        measured_overhead_cycles=result.depth - ideal,
        paper_ideal=row.ideal_cycle,
        paper_optimal=row.optimal_cycle,
        paper_overhead_cycles=row.optimal_cycle - row.ideal_cycle,
        paper_mapper_seconds=row.mapper_overhead_s,
    )
