"""Table 2: optimal depths and solver overhead, TOQM vs OLSQ-style.

Both solvers are exact, so whenever both finish they must report the same
depth — the published table's first shape.  The second shape is overhead:
OLSQ explodes as the optimal depth moves away from the ideal (the paper
measures 9–1500× slowdowns); our OLSQ-style stand-in (same formulation,
exhaustive instead of SMT) shows the same blow-up, so it runs under a
wall-clock budget and a budget hit is reported as a lower bound on the
slowdown.

Latencies per the paper: every gate 1 cycle, SWAP 3 cycles.  Rows that are
slow even for TOQM-in-Python (grid2by4, queko_15_1) need
``REPRO_BENCH_FULL=1``.
"""

import time

import pytest

from repro.baselines import OlsqStyleMapper
from repro.benchcircuits import TABLE2, olsq_architecture, olsq_circuit
from repro.circuit import OLSQ_LATENCY
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.verify import validate_result

from .conftest import full_mode, record_row

#: Rows cheap enough for the default run (TOQM side well under a minute).
_DEFAULT_ROWS = {
    ("4gt13_92", "ibmqx2"),
    ("adder", "grid2by3"),
    ("adder", "grid2by4"),
    ("adder", "ibmqx2"),
    ("or", "ibmqx2"),
    ("qaoa5", "ibmqx2"),
    ("queko_05_0", "aspen-4"),
}

_OLSQ_BUDGET_S = 60.0


def _rows():
    for row in TABLE2:
        key = (row.name, row.arch)
        if full_mode() or key in _DEFAULT_ROWS:
            yield row


@pytest.mark.parametrize(
    "row", list(_rows()), ids=lambda r: f"{r.name}@{r.arch}"
)
def test_table2_row(benchmark, row):
    circuit = olsq_circuit(row.name)
    arch = olsq_architecture(row)

    mapper = OptimalMapper(
        arch, OLSQ_LATENCY, search_initial_mapping=True, max_seconds=600
    )
    result = benchmark.pedantic(
        lambda: mapper.map(circuit), rounds=1, iterations=1
    )
    validate_result(result)
    toqm_seconds = result.stats["seconds"]

    olsq_depth = "budget"
    start = time.perf_counter()
    try:
        olsq = OlsqStyleMapper(
            arch, OLSQ_LATENCY, max_seconds=_OLSQ_BUDGET_S
        ).map(circuit)
        validate_result(olsq)
        olsq_depth = olsq.depth
        assert olsq.depth == result.depth  # two exact solvers agree
    except SearchBudgetExceeded:
        pass
    olsq_seconds = time.perf_counter() - start

    slowdown = olsq_seconds / max(toqm_seconds, 1e-6)
    record_row(
        benchmark,
        benchmark_name=row.name,
        arch=row.arch,
        measured_depth=result.depth,
        paper_depth=row.toqm_cycle,
        measured_ideal=circuit.depth(OLSQ_LATENCY),
        paper_ideal=row.ideal_cycle,
        olsq_style_depth=olsq_depth,
        toqm_seconds=round(toqm_seconds, 3),
        olsq_style_seconds=round(olsq_seconds, 3),
        olsq_over_toqm=(
            f">{slowdown:.0f}x" if olsq_depth == "budget" else f"{slowdown:.0f}x"
        ),
        paper_olsq_over_toqm=f"{row.olsq_overhead_s / row.toqm_overhead_s:.0f}x",
    )
