"""Table 3: the practical TOQM mapper vs SABRE and Zulehner on IBM Q20 Tokyo.

Latencies per the paper: 1-qubit gates 1 cycle, CX 2 cycles, SWAP 6 cycles.
For each benchmark row all three mappers route the same circuit; the row
reports the transformed-circuit cycle counts and TOQM's speedup over each
baseline.  The published shape: TOQM wins on almost every row, speedups
0.99–1.36×, averaging 1.21×.

Because the mappers here are pure Python, the default run uses a
representative subset of rows at a scaled gate count (the stand-ins keep
the published qubit counts and ideal-cycle ratios — see DESIGN.md §5).
``REPRO_BENCH_FULL=1`` runs all 26 rows at a larger cap.
"""

import pytest

from repro.arch import ibm_tokyo
from repro.baselines import SabreMapper, ZulehnerMapper
from repro.benchcircuits import TABLE3, large_circuit, table3_row
from repro.circuit import TABLE3_LATENCY
from repro.core import HeuristicMapper
from repro.verify import validate_result

from .conftest import full_mode, record_row

#: Default subset spanning widths 8..16 qubits and the exact qft_10 row.
_DEFAULT_ROWS = [
    "cm82a_208",
    "qft_10",
    "rd53_251",
    "z4_268",
    "sqrt8_260",
    "cm42a_207",
    "pm1_249",
    "square_root",
]

_SCALE_CAP = 1200
_SCALE_CAP_FULL = 3000


def _row_names():
    if full_mode():
        return [row.name for row in TABLE3]
    return _DEFAULT_ROWS


@pytest.mark.parametrize("name", _row_names())
def test_table3_row(benchmark, name):
    row = table3_row(name)
    cap = _SCALE_CAP_FULL if full_mode() else _SCALE_CAP
    circuit = large_circuit(name, scale_gate_cap=cap)
    arch = ibm_tokyo()

    toqm = benchmark.pedantic(
        lambda: HeuristicMapper(arch, TABLE3_LATENCY).map(circuit),
        rounds=1,
        iterations=1,
    )
    validate_result(toqm)
    sabre = SabreMapper(arch, TABLE3_LATENCY, seed=0).map(circuit)
    validate_result(sabre)
    zulehner = ZulehnerMapper(arch, TABLE3_LATENCY).map(circuit)
    validate_result(zulehner)

    record_row(
        benchmark,
        benchmark_name=name,
        n=row.num_qubits,
        gates=len(circuit),
        published_gates=row.gate_count,
        ideal=circuit.depth(TABLE3_LATENCY),
        toqm=toqm.depth,
        sabre=sabre.depth,
        zulehner=zulehner.depth,
        speedup_vs_sabre=round(sabre.depth / toqm.depth, 3),
        speedup_vs_zulehner=round(zulehner.depth / toqm.depth, 3),
        paper_speedup_vs_sabre=round(row.speedup_vs_sabre, 3),
        paper_speedup_vs_zulehner=round(row.speedup_vs_zulehner, 3),
    )
    # The shape claim: TOQM's practical mode is at least competitive with
    # both baselines on every row.  The paper's own range dips to 0.99x
    # (TOQM marginally behind SABRE on cm82a_208), so allow the same
    # slack against per-row noise; the aggregate test below requires the
    # average advantage.
    assert toqm.depth <= 1.12 * sabre.depth
    assert toqm.depth <= 1.12 * zulehner.depth


def test_table3_average_speedup(benchmark):
    """Aggregate shape: average speedup over the subset is > 1."""
    cap = 800
    arch = ibm_tokyo()
    names = ["cm82a_208", "qft_10", "z4_268", "cm42a_207"]

    def run_all():
        ratios = []
        for name in names:
            circuit = large_circuit(name, scale_gate_cap=cap)
            ours = HeuristicMapper(arch, TABLE3_LATENCY).map(circuit)
            sabre = SabreMapper(arch, TABLE3_LATENCY, seed=0).map(circuit)
            zulehner = ZulehnerMapper(arch, TABLE3_LATENCY).map(circuit)
            ratios.append(sabre.depth / ours.depth)
            ratios.append(zulehner.depth / ours.depth)
        return ratios

    ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)
    average = sum(ratios) / len(ratios)
    assert average > 1.0
    record_row(
        benchmark,
        average_speedup=round(average, 3),
        paper_average=1.21,
        min_speedup=round(min(ratios), 3),
        max_speedup=round(max(ratios), 3),
        paper_range=(0.99, 1.36),
    )
