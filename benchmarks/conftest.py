"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Rows print
(under ``-s``) and are attached to the pytest-benchmark JSON via
``extra_info`` so the comparison against the published numbers survives in
the machine-readable output.

Set ``REPRO_BENCH_FULL=1`` to run the expensive configurations (full-size
Table 3 circuits, the QFT-8-on-2×4 exact search, the slow Table 1/2 rows).

Set ``REPRO_BENCH_TELEMETRY=1`` to persist per-run telemetry: every bench
that takes the ``run_telemetry`` fixture (and any bench passing it to a
mapper's ``telemetry=`` argument) writes a JSONL trail — spans, progress
events and a final metrics snapshot — to
``benchmarks/results/telemetry/<test-id>.jsonl`` next to the benchmark
results.  Without the env var the fixture yields a disabled
:class:`~repro.obs.Telemetry`, so instrumented benches cost nothing extra
by default.
"""

import os
import re

import pytest

from repro.obs import Telemetry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
TELEMETRY_DIR = os.path.join(RESULTS_DIR, "telemetry")


def full_mode() -> bool:
    """True when the full (slow) benchmark configurations are requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def telemetry_mode() -> bool:
    """True when per-run telemetry JSONL persistence is requested."""
    return os.environ.get("REPRO_BENCH_TELEMETRY", "") == "1"


def record_row(benchmark, **fields) -> None:
    """Attach paper-vs-measured fields to the benchmark and print them."""
    for key, value in fields.items():
        benchmark.extra_info[key] = value
    cells = "  ".join(f"{k}={v}" for k, v in fields.items())
    print(f"\n  [{benchmark.name}] {cells}")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (expensive mappers)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    runner.benchmark = benchmark
    return runner


@pytest.fixture
def run_telemetry(request):
    """Per-run telemetry; pass it to any mapper's ``telemetry=`` argument.

    Disabled (near-zero overhead) unless ``REPRO_BENCH_TELEMETRY=1``, in
    which case spans, progress events and a final metrics snapshot land in
    ``benchmarks/results/telemetry/<test-id>.jsonl``.
    """
    if not telemetry_mode():
        yield Telemetry.disabled()
        return
    os.makedirs(TELEMETRY_DIR, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    path = os.path.join(TELEMETRY_DIR, f"{slug}.jsonl")
    telemetry = Telemetry.to_jsonl(path)
    yield telemetry
    telemetry.finish()
