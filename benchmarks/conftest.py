"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Rows print
(under ``-s``) and are attached to the pytest-benchmark JSON via
``extra_info`` so the comparison against the published numbers survives in
the machine-readable output.

Set ``REPRO_BENCH_FULL=1`` to run the expensive configurations (full-size
Table 3 circuits, the QFT-8-on-2×4 exact search, the slow Table 1/2 rows).
"""

import os

import pytest


def full_mode() -> bool:
    """True when the full (slow) benchmark configurations are requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def record_row(benchmark, **fields) -> None:
    """Attach paper-vs-measured fields to the benchmark and print them."""
    for key, value in fields.items():
        benchmark.extra_info[key] = value
    cells = "  ".join(f"{k}={v}" for k, v in fields.items())
    print(f"\n  [{benchmark.name}] {cells}")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (expensive mappers)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    runner.benchmark = benchmark
    return runner
