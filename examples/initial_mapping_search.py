#!/usr/bin/env python3
"""Initial-mapping search (paper Section 5.3) and the Table 2 fast path.

Shows the three ways the library chooses where logical qubits start:

1. **mode 1** — a user-supplied initial mapping, scheduling only;
2. **mode 2** — the free pure-SWAP prefix that searches initial mappings
   without counting their cycles;
3. the **subgraph-monomorphism fast path** — when the circuit's
   interaction graph embeds into the hardware, the embedding is found
   directly and the circuit runs swap-free (how the Table 2 QUEKO rows
   solve at their known-optimal depth).

Run:  python examples/initial_mapping_search.py
"""

from repro import (
    OptimalMapper,
    lnn,
    rigetti_aspen4,
    uniform_latency,
    validate_result,
)
from repro.arch import find_swap_free_mapping
from repro.circuit import Circuit
from repro.circuit.generators import queko_circuit


def main() -> None:
    latency = uniform_latency(1, 3)

    # A circuit whose qubits interact "far apart" under the natural order.
    circuit = Circuit(5, name="far-pairs")
    circuit.cx(0, 4).cx(0, 4).cx(1, 3).cx(1, 3)
    arch = lnn(5)

    print("mode 1: identity initial mapping (scheduling only)")
    fixed = OptimalMapper(arch, latency).map(
        circuit, initial_mapping=[0, 1, 2, 3, 4]
    )
    validate_result(fixed)
    print(f"  depth {fixed.depth} cycles with "
          f"{fixed.num_inserted_swaps} swaps\n")

    print("mode 2: free SWAP prefix searches the initial mapping")
    searched = OptimalMapper(arch, latency, search_initial_mapping=True).map(
        circuit
    )
    validate_result(searched)
    print(f"  depth {searched.depth} cycles with "
          f"{searched.num_inserted_swaps} swaps")
    print("  chosen mapping: "
          + " ".join(f"q{l}->Q{p}" for l, p in
                     enumerate(searched.initial_mapping)))
    assert searched.depth < fixed.depth
    print(f"  ({fixed.depth - searched.depth} cycles saved)\n")

    print("fast path: QUEKO circuit on Aspen-4 (known-optimal depth 10)")
    aspen = rigetti_aspen4()
    queko = queko_circuit(aspen, depth=10, seed=3)
    embedding = find_swap_free_mapping(
        queko.interaction_graph(), aspen, queko.num_qubits
    )
    print(f"  interaction graph embeds: {embedding is not None}")
    result = OptimalMapper(
        aspen, uniform_latency(1, 3), search_initial_mapping=True
    ).map(queko)
    validate_result(result)
    print(f"  optimal depth {result.depth} cycles "
          f"({result.num_inserted_swaps} swaps) — matches the hidden "
          f"construction depth {queko.depth()}")
    assert result.depth == queko.depth()


if __name__ == "__main__":
    main()
