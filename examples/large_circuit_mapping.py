#!/usr/bin/env python3
"""Route a large circuit on IBM Q20 Tokyo: practical TOQM vs baselines.

Reproduces one row of the paper's Table 3 workflow end to end: regenerate
a large benchmark circuit, route it with the practical (approximate) TOQM
mapper of Section 6.2 and with the SABRE and Zulehner baselines, verify
every schedule independently, and report cycle counts and speedups.

Run:  python examples/large_circuit_mapping.py [benchmark] [gate_cap]
      e.g. python examples/large_circuit_mapping.py z4_268 1000
"""

import sys
import time

from repro import (
    HeuristicMapper,
    IBM_LATENCY,
    SabreMapper,
    ZulehnerMapper,
    ibm_tokyo,
    validate_result,
)
from repro.baselines import TrivialMapper
from repro.benchcircuits import large_circuit, table3_row


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "cm82a_208"
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 1200

    row = table3_row(name)
    circuit = large_circuit(name, scale_gate_cap=cap)
    arch = ibm_tokyo()
    ideal = circuit.depth(IBM_LATENCY)

    print(f"Benchmark     : {name} (published: {row.gate_count} gates, "
          f"{row.num_qubits} qubits)")
    print(f"Regenerated   : {len(circuit)} gates, ideal depth {ideal} cycles")
    print(f"Architecture  : {arch}")
    print(f"Latency model : 1q=1, cx=2, swap=6 (Table 3)")
    print()

    mappers = [
        ("TOQM (practical)", HeuristicMapper(arch, IBM_LATENCY)),
        ("SABRE", SabreMapper(arch, IBM_LATENCY, seed=0)),
        ("Zulehner", ZulehnerMapper(arch, IBM_LATENCY)),
        ("Trivial router", TrivialMapper(arch, IBM_LATENCY)),
    ]
    results = {}
    for label, mapper in mappers:
        start = time.perf_counter()
        result = mapper.map(circuit)
        elapsed = time.perf_counter() - start
        validate_result(result)
        results[label] = result
        print(
            f"{label:18s} depth {result.depth:>6} cycles   "
            f"{result.num_inserted_swaps:>5} swaps   {elapsed:7.2f}s"
        )

    ours = results["TOQM (practical)"].depth
    print()
    print(f"Speedup vs SABRE    : {results['SABRE'].depth / ours:.3f}x "
          f"(paper row: {row.speedup_vs_sabre:.3f}x)")
    print(f"Speedup vs Zulehner : {results['Zulehner'].depth / ours:.3f}x "
          f"(paper row: {row.speedup_vs_zulehner:.3f}x)")


if __name__ == "__main__":
    main()
