#!/usr/bin/env python3
"""Exact analysis of QFT (paper Section 6.1.1): search + generalization.

This walks the paper's two-step methodology end to end:

1. solve small QFT instances *exactly* with the A* search — QFT-6 on LNN
   (17 cycles, the Fig. 11 butterfly) and QFT-6 on a 2×3 grid (11 cycles);
2. compare against the generalized closed-form schedules (Fig. 13 a/b/c)
   and show the linear 4n−7 / 3n−7 / 3n−5 depth families, plus an ASCII
   rendering of the butterfly so the recurring pattern is visible.

Run:  python examples/qft_patterns.py
"""

from repro import OptimalMapper, grid, lnn, uniform_latency, validate_result
from repro.analysis import find_period, render_timeline
from repro.circuit.generators import qft_skeleton
from repro.qft import (
    qft_2xn_constrained_schedule,
    qft_2xn_schedule,
    qft_lnn_schedule,
)


def main() -> None:
    unit = uniform_latency(1, 1)

    print("=" * 70)
    print("Step 1 - exact search on small instances")
    print("=" * 70)
    for n, arch, label in [(6, lnn(6), "LNN"), (6, grid(2, 3), "2x3 grid")]:
        result = OptimalMapper(arch, unit).map(
            qft_skeleton(n), initial_mapping=list(range(n))
        )
        validate_result(result)
        print(
            f"QFT-{n} on {label:8s}: optimal depth {result.depth} cycles "
            f"({result.stats['nodes_expanded']} nodes, "
            f"{result.stats['seconds']:.2f}s)"
        )

    print()
    print("=" * 70)
    print("Step 2 - the generalized patterns (Fig. 13)")
    print("=" * 70)
    lnn6 = qft_lnn_schedule(6)
    validate_result(lnn6)
    print(f"\nButterfly schedule for QFT-6 on LNN ({lnn6.depth} cycles, "
          f"period {find_period(lnn6, skip_prefix=0)}):\n")
    print(render_timeline(lnn6))

    print("\nDepth families (verified schedule depths):")
    print(f"{'n':>4} {'LNN 4n-7':>10} {'2xN mixed 3n-7':>16} "
          f"{'2xN constrained 3n-5':>22}")
    for n in (6, 8, 12, 16, 24, 32):
        a = qft_lnn_schedule(n).depth
        b = qft_2xn_schedule(n).depth
        c = qft_2xn_constrained_schedule(n).depth
        print(f"{n:>4} {a:>10} {b:>16} {c:>22}")

    print(
        "\nPaper checkpoints: QFT-6/LNN = 17 (Fig. 11), QFT-8/2x4 = 17 "
        "(Fig. 12), constrained QFT-8 = 19 (Fig. 14)."
    )
    assert qft_lnn_schedule(6).depth == 17
    assert qft_2xn_schedule(8).depth == 17
    assert qft_2xn_constrained_schedule(8).depth == 19
    print("All checkpoints reproduced.")


if __name__ == "__main__":
    main()
