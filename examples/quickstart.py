#!/usr/bin/env python3
"""Quickstart: map a small circuit time-optimally onto IBM QX2.

Builds a 4-qubit logical circuit that cannot run directly on the QX2
bowtie, asks the optimal mapper (paper Sections 4–5) for a minimal-depth
hardware-compliant schedule — including the initial mapping (Section 5.3
mode 2) — verifies it with the independent checker, and prints the
cycle-by-cycle schedule plus OpenQASM output.

Run:  python examples/quickstart.py
"""

from repro import IBM_LATENCY, OptimalMapper, ibm_qx2, validate_result
from repro.circuit import Circuit, to_qasm


def build_circuit() -> Circuit:
    """A toy entangler whose interaction graph is a 4-cycle (C4 does not
    embed into the QX2 bowtie, so SWAPs are unavoidable)."""
    circuit = Circuit(4, name="quickstart")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(2, 3)
    circuit.cx(3, 0)  # closes the cycle: no swap-free embedding exists
    circuit.h(3)
    return circuit


def main() -> None:
    circuit = build_circuit()
    arch = ibm_qx2()
    print(f"Logical circuit: {circuit}")
    print(f"Ideal depth (all-to-all): {circuit.depth(IBM_LATENCY)} cycles")
    print(f"Target architecture: {arch}")
    print()

    mapper = OptimalMapper(arch, IBM_LATENCY, search_initial_mapping=True)
    result = mapper.map(circuit)
    validate_result(result)  # raises if anything is off

    print(result.describe())
    print()
    print(
        f"Search: {result.stats['nodes_expanded']} nodes expanded, "
        f"{result.stats['distinct_states']} distinct states, "
        f"{result.stats['seconds']:.3f}s"
    )
    print()
    print("Transformed circuit as OpenQASM 2.0:")
    print(to_qasm(result.to_physical_circuit()))


if __name__ == "__main__":
    main()
