"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``); all metadata
lives in pyproject.toml.

This file additionally declares the optional compiled kernel extension
(the ``compiled`` backend of ``repro.core.kernels``).  The build is
``optional``: on hosts without a C toolchain the failure is a warning
and the package installs pure-python — the kernel registry then falls
back to the ``vector`` (numpy) or ``pure`` backend at runtime.  Build
in place for development with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.core.kernels._ckernels",
            sources=["src/repro/core/kernels/_ckernels.c"],
            optional=True,
        )
    ]
)
