"""Reproduction of "Time-Optimal Qubit Mapping" (Zhang et al., ASPLOS 2021).

The package implements the TOQM compiler pass — an A*-based qubit mapper
that minimizes the cycle count (depth) of the whole transformed circuit —
together with every substrate it needs (circuit IR, architectures,
schedulers, verifiers), the baselines it is evaluated against (SABRE,
Zulehner's layered A*, an OLSQ-style exact solver), the paper's structured
QFT solutions, and a benchmark harness regenerating every table and figure.

Quickstart::

    from repro import OptimalMapper, ibm_qx2
    from repro.circuit.generators import qft_skeleton

    mapper = OptimalMapper(ibm_qx2(), search_initial_mapping=True)
    result = mapper.map(qft_skeleton(4))
    print(result.describe())
"""

from .arch import (
    CouplingGraph,
    fully_connected,
    grid,
    ibm_melbourne,
    ibm_qx2,
    ibm_tokyo,
    lnn,
    rigetti_aspen4,
)
from .baselines import OlsqStyleMapper, SabreMapper, TrivialMapper, ZulehnerMapper
from .circuit import (
    Circuit,
    Gate,
    IBM_LATENCY,
    LatencyModel,
    OLSQ_LATENCY,
    QFT_LATENCY,
    uniform_latency,
)
from .core import (
    HeuristicMapper,
    MappingProblem,
    MappingResult,
    OptimalMapper,
    ScheduledOp,
    SearchBudgetExceeded,
)
from .verify import VerificationError, validate_result

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "LatencyModel",
    "uniform_latency",
    "QFT_LATENCY",
    "OLSQ_LATENCY",
    "IBM_LATENCY",
    "CouplingGraph",
    "lnn",
    "grid",
    "fully_connected",
    "ibm_qx2",
    "ibm_tokyo",
    "ibm_melbourne",
    "rigetti_aspen4",
    "OptimalMapper",
    "HeuristicMapper",
    "MappingProblem",
    "MappingResult",
    "ScheduledOp",
    "SearchBudgetExceeded",
    "SabreMapper",
    "ZulehnerMapper",
    "OlsqStyleMapper",
    "TrivialMapper",
    "validate_result",
    "VerificationError",
    "__version__",
]
