"""Exact-analysis tooling: all-optimal enumeration, pattern detection,
schedule rendering (paper Section 6.1 and Appendix B)."""

from .batch import BatchRecord, BatchTask, map_many, summarize
from .compare import ComparisonReport, MapperComparison, compare_mappers
from .all_optimal import enumerate_optimal, most_regular, regularity_score
from .fidelity import NoiseModel, estimate_fidelity, fidelity_gain
from .patterns import (
    canonicalize_swap_gate_order,
    cycle_signatures,
    find_period,
    is_mirrored_layout,
)
from .render import render_steps, render_timeline

__all__ = [
    "BatchRecord",
    "BatchTask",
    "map_many",
    "summarize",
    "compare_mappers",
    "ComparisonReport",
    "MapperComparison",
    "NoiseModel",
    "estimate_fidelity",
    "fidelity_gain",
    "enumerate_optimal",
    "most_regular",
    "regularity_score",
    "cycle_signatures",
    "find_period",
    "canonicalize_swap_gate_order",
    "is_mirrored_layout",
    "render_timeline",
    "render_steps",
]
