"""All-optimal-solutions enumeration and pattern mining (Appendix B).

The paper's exact-analysis workflow needs *all* optimal solutions because
"not all optimal solutions for small circuits have a recurring pattern" —
one keeps the solver running past the first terminal, then picks the
solution whose structure generalizes.  This module wraps that workflow:

* :func:`enumerate_optimal` — every distinct optimal schedule (modulo
  state-filter equivalence);
* :func:`most_regular` — rank solutions by detected periodicity and
  structural regularity, returning the best candidate for generalization
  (the step the paper performs by hand in §6.1.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel
from ..core.astar import OptimalMapper
from ..core.result import MappingResult
from .patterns import canonicalize_swap_gate_order, cycle_signatures, find_period


def enumerate_optimal(
    circuit: Circuit,
    coupling: CouplingGraph,
    latency: Optional[LatencyModel] = None,
    initial_mapping: Optional[Sequence[int]] = None,
    search_initial_mapping: bool = False,
    max_solutions: int = 64,
) -> List[MappingResult]:
    """Collect distinct optimal schedules for a circuit.

    Args:
        circuit: Logical circuit.
        coupling: Target architecture.
        latency: Latency model.
        initial_mapping: Fix the starting mapping (mode 1).
        search_initial_mapping: Search the starting mapping (mode 2).
        max_solutions: Enumeration cap.

    Returns:
        All optimal terminals popped before a strictly deeper node, each
        independently reconstructable; every returned result has the same
        (optimal) depth.
    """
    mapper = OptimalMapper(
        coupling, latency, search_initial_mapping=search_initial_mapping
    )
    return mapper.find_all_optimal(
        circuit, initial_mapping=initial_mapping, max_solutions=max_solutions
    )


def regularity_score(result: MappingResult) -> Tuple[int, int]:
    """Structural-regularity key for ranking candidate solutions.

    Higher is better: solutions with a detected cycle-shape period score
    above aperiodic ones (shorter period preferred), ties broken by how
    few distinct cycle signatures appear after the Appendix-B SWAP/gate
    commutation normalization.
    """
    normalized = MappingResult(
        circuit=result.circuit,
        coupling=result.coupling,
        latency=result.latency,
        initial_mapping=result.initial_mapping,
        ops=canonicalize_swap_gate_order(result.ops),
        depth=result.depth,
        optimal=result.optimal,
    )
    period = find_period(normalized, skip_prefix=0)
    if period is None:
        period = find_period(normalized, skip_prefix=1)
    distinct = len(set(cycle_signatures(normalized)))
    period_score = -period if period is not None else -10 ** 6
    return (period_score, -distinct)


def most_regular(solutions: Sequence[MappingResult]) -> MappingResult:
    """The solution most likely to generalize (Appendix B's manual step).

    Args:
        solutions: Output of :func:`enumerate_optimal` (non-empty).
    """
    if not solutions:
        raise ValueError("no solutions to rank")
    return max(solutions, key=regularity_score)
