"""Parallel batch mapping: route many circuits across a process pool.

``map_many`` is the scale-out entry point the ROADMAP asks for: it takes a
list of :class:`BatchTask` (label, circuit, mapper), dispatches them to a
``ProcessPoolExecutor`` in chunks, and returns one :class:`BatchRecord`
per task *in submission order* regardless of completion order.  Failure is
contained per task: a search-budget abort, a mapper exception, or a
crashed worker process each produce an error record for the affected
task(s) instead of poisoning the whole batch.

Every successful record carries the mapper's ``stats`` dict, which all
mappers in this library emit in the normalized schema
(:data:`repro.obs.schema.REQUIRED_STAT_KEYS`), so batch output tabulates
uniformly across mappers — the same property
:mod:`repro.analysis.compare` relies on.

Design constraints worth knowing:

* Workers are module-level functions and tasks are plain picklable
  objects — mappers constructed with ``telemetry=None`` (the default)
  pickle fine; telemetry sinks hold file handles and do not, so
  ``map_many`` refuses instrumented mappers up front rather than failing
  inside the pool with an opaque pickling error.
* ``max_workers=1`` (or a single-CPU machine with ``max_workers=None``)
  runs every task in-process with no pool at all, which keeps coverage,
  debugging and profiling simple and avoids fork overhead where it could
  never pay off.
* Budgets (``max_nodes`` / ``max_seconds``) are applied per task by
  copying the mapper, so the caller's mapper instance is never mutated.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.circuit import Circuit
from ..core.astar import SearchBudgetExceeded
from ..core.result import MappingResult
from ..verify.checker import validate_result


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work: route ``circuit`` with ``mapper``.

    ``mapper`` may be any object with a ``map(circuit)`` method returning
    a :class:`MappingResult`; for pool execution it must be picklable
    (all library mappers are, with telemetry left unset).
    """

    label: str
    circuit: Circuit
    mapper: object


@dataclass
class BatchRecord:
    """Outcome of one :class:`BatchTask`.

    ``ok`` distinguishes success from containment: on failure ``error``
    holds a one-line description and ``stats`` holds whatever partial
    counters were salvaged (budget aborts carry their
    ``partial_stats``; crashes carry an empty dict).
    """

    label: str
    ok: bool
    seconds: float = 0.0
    depth: Optional[int] = None
    swaps: Optional[int] = None
    stats: Dict = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[MappingResult] = None


def _run_task(
    task: BatchTask,
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
) -> BatchRecord:
    """Execute one task, converting every failure into an error record."""
    mapper = task.mapper
    if max_nodes is not None or max_seconds is not None:
        mapper = copy.copy(mapper)
        if max_nodes is not None and hasattr(mapper, "max_nodes"):
            mapper.max_nodes = max_nodes
        if max_seconds is not None and hasattr(mapper, "max_seconds"):
            mapper.max_seconds = max_seconds
    start = time.perf_counter()
    try:
        result = mapper.map(task.circuit)
        if validate:
            validate_result(result)
    except SearchBudgetExceeded as exc:
        return BatchRecord(
            label=task.label,
            ok=False,
            seconds=time.perf_counter() - start,
            stats=dict(exc.partial_stats),
            error=f"budget exceeded: {exc}",
        )
    except Exception as exc:  # noqa: BLE001 - containment is the point
        return BatchRecord(
            label=task.label,
            ok=False,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return BatchRecord(
        label=task.label,
        ok=True,
        seconds=time.perf_counter() - start,
        depth=result.depth,
        swaps=result.num_inserted_swaps,
        stats=dict(result.stats),
        result=result if keep_results else None,
    )


def _run_chunk(
    chunk: List[BatchTask],
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
) -> List[BatchRecord]:
    """Pool worker: run a chunk of tasks sequentially in one process."""
    return [
        _run_task(task, max_nodes, max_seconds, keep_results, validate)
        for task in chunk
    ]


def _default_workers() -> int:
    import os

    return os.cpu_count() or 1


def _reject_unpicklable_telemetry(tasks: Sequence[BatchTask]) -> None:
    for task in tasks:
        tele = getattr(task.mapper, "telemetry", None)
        if tele is not None and getattr(tele, "enabled", False):
            raise ValueError(
                f"task {task.label!r}: mappers with live telemetry cannot "
                "cross a process boundary (sinks hold file handles); "
                "run with max_workers=1 or detach telemetry"
            )


def map_many(
    tasks: Sequence[BatchTask],
    *,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    max_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
    keep_results: bool = True,
    validate: bool = True,
) -> List[BatchRecord]:
    """Route every task, in parallel when it can pay off.

    Args:
        tasks: Work items; results come back in this order.
        max_workers: Pool size; ``None`` means the CPU count.  A resolved
            value of 1 executes in-process without a pool.
        chunk_size: Tasks per pool submission; ``None`` picks a size that
            gives each worker ~4 chunks for load balancing.
        max_nodes: Optional per-task node budget, applied to mappers that
            have a ``max_nodes`` attribute (the exact search).
        max_seconds: Optional per-task wall-clock budget, likewise.
        keep_results: Attach the full :class:`MappingResult` to each
            record.  Turn off for large sweeps where only depth/stats
            matter — results are the bulk of the pickled payload.
        validate: Structurally verify each schedule in the worker.

    Returns:
        One :class:`BatchRecord` per task, submission-ordered.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = _default_workers() if max_workers is None else max_workers
    if workers <= 1:
        return [
            _run_task(task, max_nodes, max_seconds, keep_results, validate)
            for task in tasks
        ]

    _reject_unpicklable_telemetry(tasks)
    if chunk_size is None:
        chunk_size = max(1, len(tasks) // (workers * 4) or 1)
    chunks = [
        tasks[i: i + chunk_size] for i in range(0, len(tasks), chunk_size)
    ]
    records: List[BatchRecord] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_chunk, chunk, max_nodes, max_seconds, keep_results,
                validate,
            )
            for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            try:
                records.extend(future.result())
            except Exception as exc:  # worker process died (or pickle blew)
                records.extend(
                    BatchRecord(
                        label=task.label,
                        ok=False,
                        error=f"worker failed: {type(exc).__name__}: {exc}",
                    )
                    for task in chunk
                )
    return records


def summarize(records: Sequence[BatchRecord]) -> Dict[str, float]:
    """Aggregate counters over a batch (for logs and JSON reports)."""
    done = [r for r in records if r.ok]
    return {
        "tasks": len(records),
        "succeeded": len(done),
        "failed": len(records) - len(done),
        "total_seconds": sum(r.seconds for r in records),
        "total_nodes_expanded": sum(
            int(r.stats.get("nodes_expanded", 0)) for r in records
        ),
    }
