"""Parallel batch mapping: route many circuits across worker processes.

``map_many`` is the scale-out entry point the ROADMAP asks for: it takes a
list of :class:`BatchTask` (label, circuit, mapper) and returns one
:class:`BatchRecord` per task *in submission order* regardless of
completion order.  Failure is contained per task: a search-budget abort,
a mapper exception, or a crashed worker process each produce an error
record (with exception type and truncated traceback) for the affected
task instead of poisoning the whole batch.

Two schedulers are available:

* ``scheduler="stealing"`` (default) — a coordinator-side task deque,
  drained cost-descending (predicted from gate count × qubit count, so
  the straggler tail shrinks) through one-task leases to a pool of
  dedicated worker processes.  A worker that dies only affects its own
  leased task, which is retried on a replacement worker up to
  ``orphan_retries`` times before it becomes an error record.
* ``scheduler="static"`` — the legacy up-front chunking over a
  ``ProcessPoolExecutor``, kept as the measurable baseline (a dead
  worker fails its whole chunk).

Both schedulers (and the in-process ``max_workers=1`` path) can install
a per-process **architecture warm cache** (``warm_cache=True``, see
:mod:`repro.core.warmcache`): tasks targeting the same device share the
distance matrix, automorphism group, SWAP-split LUT, heuristic memo and
compiled-kernel capsule, with hit/miss/evict counters surfaced in the
fleet rollup.  Warm-cache runs stay bit-identical to cold runs — every
shared structure is a pure cache of values the search would recompute
identically.

Every successful record carries the mapper's ``stats`` dict, which all
mappers in this library emit in the normalized schema
(:data:`repro.obs.schema.REQUIRED_STAT_KEYS`), so batch output tabulates
uniformly across mappers — the same property
:mod:`repro.analysis.compare` relies on.

Design constraints worth knowing:

* Workers are module-level functions and tasks are plain picklable
  objects — mappers constructed with ``telemetry=None`` (the default)
  pickle fine; telemetry sinks hold file handles and do not, so
  ``map_many`` refuses instrumented mappers up front rather than failing
  inside the pool with an opaque pickling error.  Fleet observability
  goes through ``telemetry_spec`` instead: a picklable
  :class:`~repro.obs.telemetry.TelemetrySpec` that each worker process
  builds exactly once, writing resource samples plus per-task
  ``worker_task`` records into its own JSONL shard; the coordinator
  merges shards into a fleet rollup (:mod:`repro.obs.export`) when the
  batch returns.
* ``max_workers=1`` (or a single-CPU machine with ``max_workers=None``)
  runs every task in-process with no pool at all, which keeps coverage,
  debugging and profiling simple and avoids fork overhead where it could
  never pay off.
* Budgets (``max_nodes`` / ``max_seconds``) are applied per task by
  copying the mapper, so the caller's mapper instance is never mutated.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
import multiprocessing
import os
import queue as _queue
import time
import traceback as _traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.circuit import Circuit
from ..core.astar import SearchBudgetExceeded
from ..core.warmcache import WarmCachePool
from ..core.result import MappingResult
from ..obs.events import SearchProgressEvent
from ..obs.schema import (
    MAPPER_TOQM_OPTIMAL,
    STAT_BUDGET_REASON,
    STAT_INCUMBENT_DEPTH,
    STAT_KERNEL_BACKEND,
    STAT_MODE2_ROOTS,
    base_stats,
)
from ..obs.runtime import peak_rss_bytes
from ..obs.telemetry import Telemetry, TelemetrySpec, resolve
from ..obs.trace import (
    INCUMBENT_SEED,
    PRUNE_ROOT_RESTRICTION,
    PRUNE_SYMMETRY,
    TraceRecorder,
    TraceSpec,
)
from ..verify.checker import validate_result


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work: route ``circuit`` with ``mapper``.

    ``mapper`` may be any object with a ``map(circuit)`` method returning
    a :class:`MappingResult`; for pool execution it must be picklable
    (all library mappers are, with telemetry left unset).
    """

    label: str
    circuit: Circuit
    mapper: object


@dataclass
class BatchRecord:
    """Outcome of one :class:`BatchTask`.

    ``ok`` distinguishes success from containment: on failure ``error``
    holds a one-line description and ``stats`` holds whatever partial
    counters were salvaged (budget aborts carry their
    ``partial_stats``; crashes carry an empty dict).
    """

    label: str
    ok: bool
    seconds: float = 0.0
    depth: Optional[int] = None
    swaps: Optional[int] = None
    stats: Dict = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[MappingResult] = None
    #: Worker-process peak RSS after this task (``getrusage``; a
    #: process-lifetime high-water mark, so within one worker it is
    #: monotone across tasks).
    peak_rss_bytes: Optional[int] = None
    #: Exception class name on failure (``"SearchBudgetExceeded"``,
    #: ``"WorkerCrashed"`` for a dead worker process, ...); ``None`` on
    #: success.  The fleet rollup aggregates failures by this.
    error_type: Optional[str] = None
    #: Truncated (tail-kept) traceback text for unexpected mapper
    #: exceptions; ``None`` for successes, budget trips and crashes.
    traceback: Optional[str] = None


#: Characters of traceback tail kept on failed records — enough for the
#: raising frame chain without shipping unbounded text through pickles.
_TRACEBACK_CHARS = 2000


def _truncated_traceback() -> str:
    text = _traceback.format_exc().rstrip()
    if len(text) > _TRACEBACK_CHARS:
        text = "...(truncated)...\n" + text[-_TRACEBACK_CHARS:]
    return text


def _with_warm_cache(mapper, warm_pool: Optional[WarmCachePool]):
    """A copy of ``mapper`` wired to the pool's shared ``ArchContext``.

    Returns ``mapper`` unchanged when warm caching is off or the mapper
    has no coupling graph to key on.  The copy also adopts the context's
    canonical coupling instance, so graph-level memos (distance table,
    automorphisms) are shared rather than duplicated per task.
    """
    if warm_pool is None:
        return mapper
    coupling = getattr(mapper, "coupling", None)
    if coupling is None:
        return mapper
    context = warm_pool.context(coupling, getattr(mapper, "latency", None))
    warm = copy.copy(mapper)
    warm.coupling = context.coupling
    warm.latency = context.latency
    warm.arch_context = context
    return warm


def _run_task(
    task: BatchTask,
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
    warm_pool: Optional[WarmCachePool] = None,
) -> BatchRecord:
    """Execute one task, converting every failure into an error record."""
    mapper = _with_warm_cache(task.mapper, warm_pool)
    if max_nodes is not None or max_seconds is not None:
        if mapper is task.mapper:
            mapper = copy.copy(mapper)
        if max_nodes is not None and hasattr(mapper, "max_nodes"):
            mapper.max_nodes = max_nodes
        if max_seconds is not None and hasattr(mapper, "max_seconds"):
            mapper.max_seconds = max_seconds
    start = time.perf_counter()
    try:
        result = mapper.map(task.circuit)
        if validate:
            validate_result(result)
    except SearchBudgetExceeded as exc:
        return BatchRecord(
            label=task.label,
            ok=False,
            seconds=time.perf_counter() - start,
            stats=dict(exc.partial_stats),
            error=f"budget exceeded: {exc}",
            error_type=type(exc).__name__,
            peak_rss_bytes=peak_rss_bytes(),
        )
    except Exception as exc:  # noqa: BLE001 - containment is the point
        return BatchRecord(
            label=task.label,
            ok=False,
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
            traceback=_truncated_traceback(),
            peak_rss_bytes=peak_rss_bytes(),
        )
    return BatchRecord(
        label=task.label,
        ok=True,
        seconds=time.perf_counter() - start,
        depth=result.depth,
        swaps=result.num_inserted_swaps,
        stats=dict(result.stats),
        result=result if keep_results else None,
        peak_rss_bytes=peak_rss_bytes(),
    )


#: Per-process fleet telemetry, built lazily from the first
#: :class:`TelemetrySpec` seen and cached for the worker's lifetime
#: (pool workers have no shutdown hook — shards stay durable because
#: ``JsonlSink`` flushes every record and the sampler is a daemon
#: thread that dies with the process).  Keyed by shard directory so a
#: long-lived process serving two fleets keeps the shards apart.
_WORKER_TELEMETRY: Dict[str, Telemetry] = {}


def _worker_telemetry(spec: Optional[TelemetrySpec]) -> Optional[Telemetry]:
    """This process's fleet telemetry for ``spec`` (built on first use)."""
    if spec is None:
        return None
    telemetry = _WORKER_TELEMETRY.get(spec.directory)
    if telemetry is None:
        telemetry = spec.build(os.getpid())
        _WORKER_TELEMETRY[spec.directory] = telemetry
        if telemetry.sink is not None:
            meta = {
                "type": "worker_meta",
                "worker": os.getpid(),
                "pid": os.getpid(),
                "started_ts": time.time(),
                "sample_resources": spec.sample_resources,
                "resource_interval_s": spec.resource_interval,
                "profile": spec.profile,
            }
            run_id = getattr(spec, "run_id", None)
            if run_id is not None:
                meta["run_id"] = run_id
            telemetry.sink.emit(meta)
    return telemetry


def _emit_worker_task(
    telemetry: Optional[Telemetry],
    record: BatchRecord,
    queue_wait_s: Optional[float],
    warm_pool: Optional[WarmCachePool] = None,
) -> None:
    """One ``worker_task`` shard record — everything the fleet rollup
    needs (who ran what, for how long, after waiting how long, at what
    peak RSS, against how warm a cache) without reading coordinator
    state.  ``warm_cache`` carries the worker's *cumulative* counters;
    the rollup keeps each worker's last snapshot and sums across
    workers."""
    if telemetry is None or telemetry.sink is None:
        return
    payload = {
        "type": "worker_task",
        "worker": os.getpid(),
        "label": record.label,
        "ok": record.ok,
        "seconds": round(record.seconds, 6),
        "queue_wait_s": (
            round(max(0.0, queue_wait_s), 6)
            if queue_wait_s is not None else None
        ),
        "nodes_expanded": int(record.stats.get("nodes_expanded", 0) or 0),
        "depth": record.depth,
        "peak_rss_bytes": record.peak_rss_bytes,
        "ts": time.time(),
    }
    if telemetry.run_id is not None:
        payload["run_id"] = telemetry.run_id
    if record.error_type is not None:
        payload["error_type"] = record.error_type
    if warm_pool is not None:
        payload["warm_cache"] = warm_pool.counters()
    telemetry.sink.emit(payload)


#: Per-process warm-cache pool for *static-chunk* pool workers (their
#: lifetime is one ``map_many`` call, so this is per-batch state).
_CHUNK_WARM_POOL: Optional[WarmCachePool] = None


def _run_chunk(
    chunk: List[BatchTask],
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
    telemetry_spec: Optional[TelemetrySpec] = None,
    submitted_ts: Optional[float] = None,
    warm_cache: bool = False,
) -> List[BatchRecord]:
    """Pool worker: run a chunk of tasks sequentially in one process.

    ``submitted_ts`` is the coordinator's wall-clock submission time;
    each task's queue wait is measured against it, so later tasks in a
    chunk correctly count their chunk-mates' run time as waiting.
    """
    global _CHUNK_WARM_POOL
    telemetry = _worker_telemetry(telemetry_spec)
    warm_pool = None
    if warm_cache:
        if _CHUNK_WARM_POOL is None:
            _CHUNK_WARM_POOL = WarmCachePool()
        warm_pool = _CHUNK_WARM_POOL
    records = []
    for task in chunk:
        queue_wait = (
            time.time() - submitted_ts if submitted_ts is not None else None
        )
        record = _run_task(task, max_nodes, max_seconds, keep_results,
                           validate, warm_pool=warm_pool)
        _emit_worker_task(telemetry, record, queue_wait,
                          warm_pool=warm_pool)
        records.append(record)
    return records


def _default_workers() -> int:
    import os

    return os.cpu_count() or 1


def _reject_unpicklable_telemetry(tasks: Sequence[BatchTask]) -> None:
    for task in tasks:
        tele = getattr(task.mapper, "telemetry", None)
        if tele is not None and getattr(tele, "enabled", False):
            raise ValueError(
                f"task {task.label!r}: mappers with live telemetry cannot "
                "cross a process boundary (sinks hold file handles); "
                "run with max_workers=1, detach telemetry, or pass "
                "telemetry_spec= for per-worker fleet telemetry"
            )


def _predicted_cost(task: BatchTask) -> int:
    """Crude per-task cost prediction: gate count × qubit count.

    Only the *ordering* matters — dispatching predicted-heavy tasks
    first shrinks the straggler tail (a heavy task started last would
    run alone while every other worker idles).
    """
    try:
        return len(task.circuit) * max(1, task.circuit.num_qubits)
    except (TypeError, AttributeError):
        return 0


def _stealing_worker(
    worker_id: int,
    lease_q,
    result_q,
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
    telemetry_spec: Optional[TelemetrySpec],
    warm_cache: bool,
) -> None:
    """Worker process: run one-task leases until the ``None`` sentinel.

    Each worker owns a private :class:`WarmCachePool` built fresh at
    startup (never inherited through fork), so its warmth is exactly
    the batch's own history — deterministic regardless of what the
    coordinator process mapped before.
    """
    _WORKER_TELEMETRY.clear()  # never adopt a forked parent's sinks
    telemetry = _worker_telemetry(telemetry_spec)
    warm_pool = WarmCachePool() if warm_cache else None
    while True:
        lease = lease_q.get()
        if lease is None:
            break
        index, task, enqueued_ts = lease
        queue_wait = time.time() - enqueued_ts
        record = _run_task(task, max_nodes, max_seconds, keep_results,
                           validate, warm_pool=warm_pool)
        _emit_worker_task(telemetry, record, queue_wait,
                          warm_pool=warm_pool)
        result_q.put((worker_id, index, record))


class _WorkerHandle:
    """Coordinator-side state for one stealing worker."""

    __slots__ = ("process", "lease_q", "current")

    def __init__(self, process, lease_q) -> None:
        self.process = process
        self.lease_q = lease_q
        self.current: Optional[int] = None  # leased task index


#: Coordinator poll interval while waiting for results — bounds how
#: long a dead worker goes unnoticed without burning CPU.
_STEAL_POLL_S = 0.05

#: How deep into the pending deque the affinity dispatch looks for a
#: task whose circuit the requesting worker has already warmed.  Tasks
#: are cost-ordered, so repeats of one circuit sit adjacent and the scan
#: succeeds early; the bound caps coordinator work on huge corpora.
_AFFINITY_SCAN = 256


def _map_many_stealing(
    tasks: List[BatchTask],
    workers: int,
    max_nodes: Optional[int],
    max_seconds: Optional[float],
    keep_results: bool,
    validate: bool,
    telemetry_spec: Optional[TelemetrySpec],
    warm_cache: bool,
    orphan_retries: int,
) -> List[BatchRecord]:
    """Work-stealing coordinator: shared deque, one-task leases.

    The deque is drained cost-descending; every idle worker immediately
    leases the heaviest remaining task, so load balances itself without
    up-front chunk guesses.  With ``warm_cache`` on, dispatch is
    affinity-aware: an idle worker first gets a pending task whose
    circuit it has already warmed (scanning at most
    :data:`_AFFINITY_SCAN` deep), falling back to the heaviest remaining
    task — placement never changes results, only which worker's cache
    gets the hit.  Worker death orphans at most its one leased task,
    which is retried on a replacement worker up to ``orphan_retries``
    times before becoming a ``WorkerCrashed`` record.
    """
    from ..core.warmcache import circuit_fingerprint

    ctx = multiprocessing.get_context()
    order = sorted(
        range(len(tasks)),
        key=lambda i: (-_predicted_cost(tasks[i]), i),
    )
    pending = deque(order)
    attempts = [0] * len(tasks)
    results: List[Optional[BatchRecord]] = [None] * len(tasks)
    completed = 0
    enqueued_ts = time.time()
    result_q = ctx.Queue()
    worker_ids = itertools.count()
    handles: Dict[int, _WorkerHandle] = {}
    fingerprints: List[Optional[str]] = [None] * len(tasks)
    worker_warmth: Dict[int, set] = {}

    def _fp(index: int) -> str:
        fp = fingerprints[index]
        if fp is None:
            try:
                fp = circuit_fingerprint(tasks[index].circuit)
            except Exception:  # noqa: BLE001 - exotic circuit object
                fp = f"task-{index}"
            fingerprints[index] = fp
        return fp

    def take_pending(worker_id: int) -> int:
        """Pop the best pending task for this worker.

        Preference order: (1) a task this worker has already warmed —
        a guaranteed cache hit; (2) a task *no* worker has warmed —
        claiming a fresh circuit instead of duplicating a cache some
        other worker already paid for (repeats sit adjacent in the
        cost-ordered deque, so without this rule the opening dispatch
        burst would hand the same circuit to every worker at once);
        (3) the heaviest remaining task.
        """
        if warm_cache:
            scan = min(len(pending), _AFFINITY_SCAN)
            seen = worker_warmth.get(worker_id)
            if seen:
                for k in range(scan):
                    if _fp(pending[k]) in seen:
                        index = pending[k]
                        del pending[k]
                        return index
            claimed = set()
            for warmth in worker_warmth.values():
                claimed |= warmth
            if claimed:
                for k in range(scan):
                    if _fp(pending[k]) not in claimed:
                        index = pending[k]
                        del pending[k]
                        return index
        return pending.popleft()

    def spawn() -> None:
        worker_id = next(worker_ids)
        lease_q = ctx.SimpleQueue()
        process = ctx.Process(
            target=_stealing_worker,
            args=(worker_id, lease_q, result_q, max_nodes, max_seconds,
                  keep_results, validate, telemetry_spec, warm_cache),
            daemon=True,
        )
        process.start()
        handles[worker_id] = _WorkerHandle(process, lease_q)

    def absorb(worker_id: int, index: int, record: BatchRecord) -> None:
        nonlocal completed
        handle = handles.get(worker_id)
        if handle is not None and handle.current == index:
            handle.current = None
        if results[index] is None:
            results[index] = record
            completed += 1

    def drain_nowait() -> None:
        while True:
            try:
                absorb(*result_q.get_nowait())
            except _queue.Empty:
                return

    def reap_dead_workers() -> None:
        """Handle worker death: orphan-retry its lease, spawn a spare."""
        nonlocal completed
        dead = [
            (worker_id, handle)
            for worker_id, handle in handles.items()
            if not handle.process.is_alive()
        ]
        if not dead:
            return
        # A worker can finish its lease and die before the coordinator
        # reads the result — drain first so those count as completed,
        # not orphaned.
        drain_nowait()
        for worker_id, handle in dead:
            index = handle.current
            if index is not None and results[index] is None:
                attempts[index] += 1
                if attempts[index] > orphan_retries:
                    exitcode = handle.process.exitcode
                    results[index] = BatchRecord(
                        label=tasks[index].label,
                        ok=False,
                        error=(
                            "worker failed: process exited with code "
                            f"{exitcode} while running this task "
                            f"(attempt {attempts[index]})"
                        ),
                        error_type="WorkerCrashed",
                    )
                    completed += 1
                else:
                    pending.appendleft(index)  # retry at the front
            handle.process.join()
            del handles[worker_id]
            worker_warmth.pop(worker_id, None)
        in_flight = sum(
            1 for handle in handles.values() if handle.current is not None
        )
        while (
            len(handles) < workers
            and len(handles) < len(pending) + in_flight + 1
            and completed + in_flight < len(tasks)
        ):
            spawn()

    try:
        for _ in range(min(workers, len(tasks))):
            spawn()
        while completed < len(tasks):
            for worker_id, handle in handles.items():
                if handle.current is None and pending:
                    index = take_pending(worker_id)
                    handle.current = index
                    if warm_cache:
                        worker_warmth.setdefault(worker_id, set()).add(
                            _fp(index)
                        )
                    try:
                        # SimpleQueue pickles fully before writing, so a
                        # failure here never corrupts the lease stream.
                        handle.lease_q.put(
                            (index, tasks[index], enqueued_ts)
                        )
                    except Exception as exc:  # noqa: BLE001 - unpicklable
                        handle.current = None
                        results[index] = BatchRecord(
                            label=tasks[index].label,
                            ok=False,
                            error=(
                                "worker failed: task not picklable: "
                                f"{type(exc).__name__}: {exc}"
                            ),
                            error_type=type(exc).__name__,
                        )
                        completed += 1
            try:
                absorb(*result_q.get(timeout=_STEAL_POLL_S))
            except _queue.Empty:
                reap_dead_workers()
    finally:
        for handle in handles.values():
            try:
                handle.lease_q.put(None)
            except Exception:  # noqa: BLE001 - already-dead worker
                pass
        for handle in handles.values():
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join()
        result_q.close()
        result_q.join_thread()
    return [record for record in results if record is not None]


def map_many(
    tasks: Sequence[BatchTask],
    *,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    max_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
    keep_results: bool = True,
    validate: bool = True,
    telemetry_spec: Optional[TelemetrySpec] = None,
    scheduler: str = "stealing",
    warm_cache: bool = True,
    orphan_retries: int = 1,
) -> List[BatchRecord]:
    """Route every task, in parallel when it can pay off.

    Args:
        tasks: Work items; results come back in this order.
        max_workers: Pool size; ``None`` means the CPU count.  A resolved
            value of 1 executes in-process without a pool — the
            bit-identity reference path for both schedulers.
        chunk_size: Tasks per pool submission on the *static* scheduler;
            ``None`` picks a size that gives each worker ~4 chunks while
            never submitting fewer chunks than workers.  Ignored by the
            stealing scheduler (its leases are always one task).
        max_nodes: Optional per-task node budget, applied to mappers that
            have a ``max_nodes`` attribute (the exact search).
        max_seconds: Optional per-task wall-clock budget, likewise.
        keep_results: Attach the full :class:`MappingResult` to each
            record.  Turn off for large sweeps where only depth/stats
            matter — results are the bulk of the pickled payload.
        validate: Structurally verify each schedule in the worker.
        telemetry_spec: Optional fleet-telemetry recipe; each worker
            process writes its own JSONL shard under
            ``telemetry_spec.directory`` and the coordinator writes the
            merged ``fleet.json`` rollup before returning.  Works on the
            in-process path too (one shard).
        scheduler: ``"stealing"`` (default; coordinator-dispatched
            one-task leases, cost-descending, per-task crash containment
            with orphan retry) or ``"static"`` (legacy up-front chunking
            over a process pool; a dead worker fails its whole chunk).
        warm_cache: Share per-architecture search artifacts across tasks
            through :mod:`repro.core.warmcache`.  Bit-identical results;
            hit/miss/evict counters land in the fleet rollup.
        orphan_retries: Stealing scheduler only — how many times a task
            orphaned by a dead worker is retried on a replacement before
            it becomes a ``WorkerCrashed`` error record.

    Returns:
        One :class:`BatchRecord` per task, submission-ordered.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if scheduler not in ("stealing", "static"):
        raise ValueError(
            f"unknown scheduler {scheduler!r}: expected 'stealing' or 'static'"
        )
    workers = _default_workers() if max_workers is None else max_workers
    _write_fleet_meta(telemetry_spec, total_tasks=len(tasks),
                      workers=workers, scheduler=scheduler)
    if workers <= 1:
        telemetry = _worker_telemetry(telemetry_spec)
        warm_pool = WarmCachePool() if warm_cache else None
        submitted = time.time()
        records = []
        for task in tasks:
            queue_wait = time.time() - submitted
            record = _run_task(task, max_nodes, max_seconds, keep_results,
                               validate, warm_pool=warm_pool)
            _emit_worker_task(telemetry, record, queue_wait,
                              warm_pool=warm_pool)
            records.append(record)
        _write_rollup(telemetry_spec)
        return records

    _reject_unpicklable_telemetry(tasks)
    if scheduler == "stealing":
        records = _map_many_stealing(
            tasks, workers, max_nodes, max_seconds, keep_results, validate,
            telemetry_spec, warm_cache, orphan_retries,
        )
        _write_rollup(telemetry_spec)
        return records

    if chunk_size is None:
        # ~4 chunks per worker for load balancing — but never chunks so
        # large that there are fewer submissions than workers, which
        # would leave workers idle for the whole batch.
        chunk_size = max(1, len(tasks) // (workers * 4) or 1)
        chunk_size = min(chunk_size, max(1, len(tasks) // workers))
    chunks = [
        tasks[i: i + chunk_size] for i in range(0, len(tasks), chunk_size)
    ]
    records: List[BatchRecord] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_chunk, chunk, max_nodes, max_seconds, keep_results,
                validate, telemetry_spec, time.time(), warm_cache,
            )
            for chunk in chunks
        ]
        for chunk, future in zip(chunks, futures):
            try:
                records.extend(future.result())
            except Exception as exc:  # worker process died (or pickle blew)
                records.extend(
                    BatchRecord(
                        label=task.label,
                        ok=False,
                        error=f"worker failed: {type(exc).__name__}: {exc}",
                        error_type=type(exc).__name__,
                    )
                    for task in chunk
                )
    _write_rollup(telemetry_spec)
    return records


def _write_rollup(telemetry_spec: Optional[TelemetrySpec]) -> None:
    """Coordinator-side shard merge (no-op without a spec)."""
    if telemetry_spec is None:
        return
    from ..obs.export import write_fleet_rollup

    write_fleet_rollup(telemetry_spec.directory)


def _write_fleet_meta(
    telemetry_spec: Optional[TelemetrySpec],
    total_tasks: int,
    workers: int,
    scheduler: str,
) -> None:
    """Coordinator-side ``fleet_meta`` record written *before* dispatch.

    Live consumers (``repro top``) need the planned task total to render
    queue depth while the fleet is still running; shards alone only show
    completions.  Also carries the run_id so the telemetry directory is
    self-describing even before the rollup exists.  No-op without a spec.
    """
    if telemetry_spec is None:
        return
    from ..obs.export import write_fleet_meta

    write_fleet_meta(
        telemetry_spec.directory,
        total_tasks=total_tasks,
        workers=workers,
        scheduler=scheduler,
        run_id=getattr(telemetry_spec, "run_id", None),
    )


# ----------------------------------------------------------------------
# Parallel mode-2 root fan-out
# ----------------------------------------------------------------------

#: Counters summed across fan-out root searches into the final stats dict.
_FANOUT_SUM_KEYS = (
    "nodes_expanded",
    "nodes_generated",
    "filtered_equivalent",
    "filtered_dominated",
    "killed",
    "redundant",
    "memo_hits",
    "memo_misses",
    "pruned_by_bound",
    "incumbent_updates",
    "swaps_restricted",
    "symmetry_pruned",
    "pruned_by_assignment_lb",
    "pruned_by_layer_weight",
    "root_candidates_restricted",
    "closed_dominated",
)


class SharedBound:
    """Cross-process monotone-min incumbent depth.

    A single ``multiprocessing.Value`` guarded by its own lock; workers
    :meth:`offer` every improved terminal depth and :meth:`peek` it
    periodically (every ``_SHARED_BOUND_POLL`` expansions) so one root's
    incumbent prunes every other root's queue.  The handle itself is not
    picklable — it reaches pool workers through the pool initializer
    (inheritance), never through task payloads.
    """

    _SENTINEL = 1 << 62

    def __init__(self) -> None:
        self._value = multiprocessing.Value("q", self._SENTINEL)

    def peek(self) -> Optional[int]:
        """Best depth offered so far, or ``None`` if none yet."""
        with self._value.get_lock():
            depth = self._value.value
        return None if depth >= self._SENTINEL else depth

    def offer(self, depth: int) -> bool:
        """Lower the bound to ``depth`` if it improves; True when it did."""
        with self._value.get_lock():
            if depth < self._value.value:
                self._value.value = depth
                return True
        return False


#: Per-process shared-bound handle, installed by the pool initializer.
_SHARED_BOUND: Optional[SharedBound] = None


def _init_mode2_worker(shared: SharedBound) -> None:
    global _SHARED_BOUND
    _SHARED_BOUND = shared


def _worker_mapper(mapper) -> "object":
    """A pickle-safe mode-1 copy of ``mapper`` for one fan-out root."""
    worker = copy.copy(mapper)
    worker.search_initial_mapping = False
    worker.seed_incumbent = False  # the fan-out seeds once, in the parent
    worker.mode2_workers = None
    worker.telemetry = None
    worker.shared_incumbent = None  # installed from _SHARED_BOUND in-worker
    return worker


def _worker_trace_telemetry(
    trace_spec: Optional[TraceSpec],
) -> Tuple[Optional[Telemetry], Optional[TraceRecorder]]:
    """In-memory trace telemetry for one fan-out root.

    Telemetry handles cannot cross the process boundary (sinks hold file
    handles), so a traced fan-out ships a picklable :class:`TraceSpec`
    instead; the worker records into memory and its ``drain()`` rides the
    outcome tuple back to the coordinator.
    """
    if trace_spec is None:
        return None, None
    recorder = TraceRecorder.from_spec(trace_spec)
    return Telemetry(search_trace=recorder), recorder


def _emit_root_task(
    telemetry: Optional[Telemetry],
    index: int,
    ok: bool,
    stats: Dict,
    seconds: float,
    queue_wait_s: Optional[float],
    depth: Optional[int],
) -> None:
    """Fan-out twin of :func:`_emit_worker_task`: one record per root."""
    if telemetry is None or telemetry.sink is None:
        return
    payload = {
        "type": "worker_task",
        "worker": os.getpid(),
        "label": f"root-{index}",
        "ok": ok,
        "seconds": round(seconds, 6),
        "queue_wait_s": (
            round(max(0.0, queue_wait_s), 6)
            if queue_wait_s is not None else None
        ),
        "nodes_expanded": int(stats.get("nodes_expanded", 0) or 0),
        "depth": depth,
        "peak_rss_bytes": peak_rss_bytes(),
        "ts": time.time(),
    }
    if telemetry.run_id is not None:
        payload["run_id"] = telemetry.run_id
    telemetry.sink.emit(payload)


def _run_mode2_root(payload) -> Tuple[int, bool, Optional[MappingResult],
                                      Dict, Optional[str],
                                      Optional[List[Dict]]]:
    """Pool worker: exact mode-1 search of one fan-out root mapping.

    Returns ``(index, ok, result, stats, budget_reason, trace_records)``;
    an exhausted queue (``budget_reason == "exhausted"``) is the *benign*
    outcome of a root whose optimum cannot beat the shared incumbent.
    ``trace_records`` streams the root's expansion-level trace chunk back
    when the coordinator requested one (None otherwise).
    """
    mapper, circuit, mapping, index, trace_spec, fleet_spec, submitted_ts = (
        payload
    )
    fleet = _worker_telemetry(fleet_spec)
    queue_wait = (
        time.time() - submitted_ts if submitted_ts is not None else None
    )
    mapper.shared_incumbent = _SHARED_BOUND
    telemetry, recorder = _worker_trace_telemetry(trace_spec)
    if telemetry is not None:
        mapper.telemetry = telemetry
    start = time.perf_counter()
    try:
        result = mapper.map(circuit, initial_mapping=list(mapping))
    except SearchBudgetExceeded as exc:
        stats = dict(exc.partial_stats)
        _emit_root_task(fleet, index, False, stats,
                        time.perf_counter() - start, queue_wait, None)
        return (index, False, None, stats,
                stats.get(STAT_BUDGET_REASON, "unknown"),
                recorder.drain() if recorder is not None else None)
    _emit_root_task(fleet, index, True, dict(result.stats),
                    time.perf_counter() - start, queue_wait, result.depth)
    return (index, True, result, dict(result.stats), None,
            recorder.drain() if recorder is not None else None)


def map_mode2_fanout(
    mapper,
    circuit: Circuit,
    max_workers: Optional[int] = None,
) -> MappingResult:
    """Mode 2 as a parallel fan-out over deduplicated prefix-root mappings.

    Enumerates every initial mapping the free-SWAP prefix of Section 5.3
    can reach (:func:`repro.core.astar.enumerate_mode2_mappings`), seeds
    one heuristic incumbent, then searches each mapping as an independent
    mode-1 problem — across a process pool when ``max_workers > 1``,
    sequentially in-process otherwise.  Workers share the best incumbent
    depth through a :class:`SharedBound`, so a good early root prunes all
    the others.  The minimum depth over all roots is exactly the serial
    mode-2 optimum (each root search is itself exact, and the root set
    is a superset of what the serial prefix expansion reaches).

    Budget semantics: ``mapper.max_nodes`` / ``max_seconds`` apply as a
    *cumulative* budget over roots on the sequential path and per root on
    the pool path.  When the budget trips before every root is resolved,
    the raised :class:`SearchBudgetExceeded` carries ``partial_stats``
    aggregated across all roots searched so far.  An expired anytime
    ``deadline`` instead returns the best schedule known with
    ``optimal=False``.

    Returns:
        The time-optimal :class:`MappingResult`; its ``stats`` aggregate
        node/heuristic counters over every root search and record
        ``mode2_roots`` / ``mode2_workers``.
    """
    from ..core.astar import enumerate_mode2_mappings
    from ..core.heuristic_mapper import incumbent_result
    from ..core.kernels import resolve_backend
    from ..core.problem import MappingProblem

    # The coordinator keeps any live telemetry for itself (progress
    # events, coordinator-side trace records); workers never carry it
    # across the process boundary — a traced run ships a picklable
    # TraceSpec instead and workers stream their chunks back.
    tele = resolve(getattr(mapper, "telemetry", None))
    trace = tele.search_trace if tele.enabled else None
    trace_spec = trace.spec() if trace is not None else None
    # Fleet telemetry rides the same attribute convention: the CLI (or
    # any caller) sets ``mapper.telemetry_spec`` and every fan-out worker
    # writes its own shard; ``conclude`` merges them into the rollup.
    fleet_spec: Optional[TelemetrySpec] = getattr(
        mapper, "telemetry_spec", None
    )

    start = time.perf_counter()
    if hasattr(mapper, "_problem"):
        problem = mapper._problem(circuit)  # warm-cache aware
    else:
        problem = MappingProblem(circuit, mapper.coupling, mapper.latency)
    sym_counters: Dict[str, int] = {}
    mappings = enumerate_mode2_mappings(
        problem,
        try_swap_free_fast_path=mapper.try_swap_free_fast_path,
        reduce_symmetry=getattr(mapper, "reduce_symmetry", True),
        counters=sym_counters,
    )
    if trace is not None and sym_counters.get("symmetry_pruned"):
        # Orbit-mates dropped during root enumeration — the fan-out's
        # analogue of the serial prefix quotient.
        trace.prune(PRUNE_SYMMETRY, count=sym_counters["symmetry_pruned"])
    root_restricted = 0
    if getattr(mapper, "root_restriction", False):
        # Burgholzer-style candidate restriction (repro.core.bounds): a
        # root placing no dependency-free pair on an edge cannot begin an
        # optimal schedule.  The enumeration above already covers every
        # prefix-reachable mapping, so dropping a root here loses nothing
        # the serial search's kept-prefix expansion would have found.
        from ..core.bounds import root_mapping_allowed, root_restriction_pairs
        pairs = root_restriction_pairs(problem)
        if pairs is not None:
            kept = [m for m in mappings
                    if root_mapping_allowed(problem, m, pairs)]
            if kept:  # all-restricted would leave nothing to certify with
                root_restricted = len(mappings) - len(kept)
                mappings = kept
            if root_restricted and trace is not None:
                trace.prune(PRUNE_ROOT_RESTRICTION, count=root_restricted)
    workers = _default_workers() if max_workers is None else max_workers
    workers = max(1, min(workers, len(mappings)))
    _write_fleet_meta(fleet_spec, total_tasks=len(mappings),
                      workers=workers, scheduler="fanout")

    shared = SharedBound()
    incumbent: Optional[MappingResult] = None
    if mapper.seed_incumbent:
        incumbent = incumbent_result(mapper.coupling, mapper.latency, circuit)
        if incumbent is not None:
            shared.offer(incumbent.depth)
            if trace is not None:
                trace.incumbent(incumbent.depth, INCUMBENT_SEED)

    totals: Dict[str, int] = {key: 0 for key in _FANOUT_SUM_KEYS}
    totals["symmetry_pruned"] = sym_counters.get("symmetry_pruned", 0)
    totals["root_candidates_restricted"] = root_restricted
    roots_searched = 0

    def accumulate(stats: Dict) -> None:
        for key in _FANOUT_SUM_KEYS:
            value = stats.get(key)
            if value is not None:
                totals[key] += int(value)

    def aggregate_stats(**extra) -> Dict[str, float]:
        counters = {
            k: v for k, v in totals.items()
            if k not in ("nodes_expanded", "nodes_generated",
                         "filtered_equivalent", "filtered_dominated")
        }
        return base_stats(
            MAPPER_TOQM_OPTIMAL,
            nodes_expanded=totals["nodes_expanded"],
            nodes_generated=totals["nodes_generated"],
            filtered_equivalent=totals["filtered_equivalent"],
            filtered_dominated=totals["filtered_dominated"],
            seconds=time.perf_counter() - start,
            **counters,
            **{STAT_MODE2_ROOTS: len(mappings),
               "mode2_roots_searched": roots_searched,
               "mode2_workers": workers,
               STAT_KERNEL_BACKEND: resolve_backend(
                   getattr(mapper, "kernel", None)
               ).name},
            **extra,
        )

    outcomes: List[Tuple[int, bool, Optional[MappingResult], Dict,
                         Optional[str], Optional[List[Dict]]]] = []

    def absorb(outcome) -> None:
        """Record one root outcome: stats totals + its trace chunk."""
        nonlocal roots_searched
        outcomes.append(outcome)
        roots_searched += 1
        accumulate(outcome[3])
        if trace is not None and outcome[5]:
            for record in outcome[5]:
                tagged = dict(record)
                tagged["root"] = outcome[0]
                trace.emit_raw(tagged)

    if workers <= 1:
        remaining_nodes = mapper.max_nodes
        for index, mapping in enumerate(mappings):
            worker = _worker_mapper(mapper)
            worker.shared_incumbent = shared
            if remaining_nodes is not None:
                worker.max_nodes = max(0, remaining_nodes)
            if mapper.max_seconds is not None:
                worker.max_seconds = mapper.max_seconds - (
                    time.perf_counter() - start
                )
            outcome = _run_mode2_root_inproc(
                worker, circuit, mapping, index, trace_spec, fleet_spec,
            )
            absorb(outcome)
            if remaining_nodes is not None:
                remaining_nodes -= int(outcome[3].get("nodes_expanded", 0))
            reason = outcome[4]
            if reason is not None and reason != "exhausted":
                break  # genuine budget trip: stop burning the budget
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_mode2_worker,
            initargs=(shared,),
        ) as pool:
            template = _worker_mapper(mapper)
            # Never ship a warm-cache context through the pool pickle —
            # it drags every retained problem across the boundary; the
            # workers rebuild problems locally instead.
            if getattr(template, "arch_context", None) is not None:
                template.arch_context = None
            submitted_ts = time.time()
            futures = [
                pool.submit(
                    _run_mode2_root,
                    (template, circuit, mapping, index, trace_spec,
                     fleet_spec, submitted_ts),
                )
                for index, mapping in enumerate(mappings)
            ]
            for index, future in enumerate(futures):
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 - dead worker
                    outcome = (
                        index, False, None, {},
                        f"worker failed: {type(exc).__name__}: {exc}",
                        None,
                    )
                absorb(outcome)

    best: Optional[Tuple[int, MappingResult]] = None
    failures = [
        (outcome[0], outcome[4])
        for outcome in outcomes
        if not outcome[1] and outcome[4] != "exhausted"
    ]
    for outcome in outcomes:
        index, ok, result = outcome[0], outcome[1], outcome[2]
        if ok and (best is None or result.depth < best[1].depth):
            best = (index, result)

    def conclude(stats: Dict, winning_root: int, depth: Optional[int]) -> None:
        """Final coordinator telemetry: the parallel fan-out previously
        ended without any terminal ``phase="done"`` progress event, so
        subscribers could not tell a finished run from a stalled one.
        Emit it here with the aggregated counters and the winning root,
        and close the trace with the authoritative cross-root summary."""
        if tele.enabled:
            tele.publish_progress(SearchProgressEvent(
                mapper=MAPPER_TOQM_OPTIMAL,
                phase="done",
                nodes_expanded=int(stats.get("nodes_expanded", 0)),
                nodes_generated=int(stats.get("nodes_generated", 0)),
                heap_size=0,
                best_f=depth if depth is not None else -1,
                elapsed_seconds=time.perf_counter() - start,
                extra={
                    "winning_root": winning_root,
                    "mode2_roots": len(mappings),
                    "mode2_roots_searched": roots_searched,
                },
            ))
        if trace is not None:
            trace.summary(stats, scope="aggregate")
        _write_rollup(fleet_spec)

    if not failures:
        if best is not None:
            depth = best[1].depth
            stats = aggregate_stats(**{STAT_INCUMBENT_DEPTH: depth})
            conclude(stats, winning_root=best[0], depth=depth)
            return dataclasses.replace(best[1], optimal=True, stats=stats)
        if incumbent is not None:
            # Every root exhausted against the seed bound: the heuristic
            # schedule is proven time-optimal for mode 2.
            stats = aggregate_stats(
                **{STAT_INCUMBENT_DEPTH: incumbent.depth}
            )
            conclude(stats, winning_root=-1, depth=incumbent.depth)
            return dataclasses.replace(
                incumbent, optimal=True, stats=stats
            )
        stats = aggregate_stats(**{STAT_BUDGET_REASON: "exhausted"})
        conclude(stats, winning_root=-1, depth=None)
        raise SearchBudgetExceeded(
            "mode-2 fan-out found no schedule and had no incumbent",
            partial_stats=stats,
        )

    if all(reason == "deadline" for _i, reason in failures):
        # Anytime semantics: hand back the best schedule known.
        anytime = best[1] if best is not None else incumbent
        if anytime is not None:
            stats = aggregate_stats(**{
                STAT_BUDGET_REASON: "deadline",
                STAT_INCUMBENT_DEPTH: anytime.depth,
            })
            conclude(
                stats,
                winning_root=best[0] if best is not None else -1,
                depth=anytime.depth,
            )
            return dataclasses.replace(
                anytime, optimal=False, stats=stats
            )
    reasons = sorted({str(reason) for _i, reason in failures})
    stats = aggregate_stats(
        **{STAT_BUDGET_REASON: reasons[0] if len(reasons) == 1
           else "mixed"}
    )
    conclude(stats, winning_root=-1, depth=None)
    raise SearchBudgetExceeded(
        f"mode-2 fan-out budget exceeded on {len(failures)} of "
        f"{roots_searched} roots searched ({', '.join(reasons)})",
        partial_stats=stats,
    )


def _run_mode2_root_inproc(
    worker, circuit: Circuit, mapping, index: int,
    trace_spec: Optional[TraceSpec] = None,
    fleet_spec: Optional[TelemetrySpec] = None,
) -> Tuple[int, bool, Optional[MappingResult], Dict, Optional[str],
           Optional[List[Dict]]]:
    """Sequential-path twin of :func:`_run_mode2_root` (no global handle)."""
    fleet = _worker_telemetry(fleet_spec)
    telemetry, recorder = _worker_trace_telemetry(trace_spec)
    if telemetry is not None:
        worker.telemetry = telemetry
    start = time.perf_counter()
    try:
        result = worker.map(circuit, initial_mapping=list(mapping))
    except SearchBudgetExceeded as exc:
        stats = dict(exc.partial_stats)
        _emit_root_task(fleet, index, False, stats,
                        time.perf_counter() - start, None, None)
        return (index, False, None, stats,
                stats.get(STAT_BUDGET_REASON, "unknown"),
                recorder.drain() if recorder is not None else None)
    _emit_root_task(fleet, index, True, dict(result.stats),
                    time.perf_counter() - start, None, result.depth)
    return (index, True, result, dict(result.stats), None,
            recorder.drain() if recorder is not None else None)


def summarize(records: Sequence[BatchRecord]) -> Dict[str, float]:
    """Aggregate counters over a batch (for logs and JSON reports)."""
    done = [r for r in records if r.ok]
    return {
        "tasks": len(records),
        "succeeded": len(done),
        "failed": len(records) - len(done),
        "total_seconds": sum(r.seconds for r in records),
        "total_nodes_expanded": sum(
            int(r.stats.get("nodes_expanded", 0)) for r in records
        ),
    }
