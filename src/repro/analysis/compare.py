"""Side-by-side mapper comparison — the Table 3 workflow as a library call.

``compare_mappers`` routes one circuit with several mappers, verifies
every schedule (structurally, and semantically when the circuit is small
enough to simulate), and returns a report with depths, SWAP counts,
estimated fidelities and speedups — the row format of the paper's
Table 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency
from ..core.result import MappingResult
from ..obs.schema import REQUIRED_STAT_KEYS, STAT_SECONDS, stats_row
from ..verify.checker import validate_result
from .fidelity import NoiseModel, estimate_fidelity


@dataclass
class MapperComparison:
    """One mapper's outcome within a comparison."""

    label: str
    result: MappingResult
    seconds: float
    fidelity: float

    @property
    def depth(self) -> int:
        """Transformed-circuit depth in cycles."""
        return self.result.depth

    @property
    def swaps(self) -> int:
        """Number of inserted SWAP gates."""
        return self.result.num_inserted_swaps


@dataclass
class ComparisonReport:
    """Every mapper's outcome on one circuit/architecture pair."""

    circuit: Circuit
    coupling: CouplingGraph
    ideal_depth: int
    entries: List[MapperComparison] = field(default_factory=list)

    def best(self) -> MapperComparison:
        """The entry with the smallest transformed-circuit depth."""
        return min(self.entries, key=lambda e: e.depth)

    def speedups(self, reference_label: str) -> Dict[str, float]:
        """Depth ratios of every entry relative to one mapper."""
        reference = next(
            e for e in self.entries if e.label == reference_label
        )
        return {
            e.label: e.depth / reference.depth for e in self.entries
        }

    def to_table(self) -> str:
        """Formatted comparison table."""
        lines = [
            f"{'mapper':20s} {'depth':>7} {'swaps':>6} {'fidelity':>9} "
            f"{'seconds':>8}",
            f"{'(ideal)':20s} {self.ideal_depth:>7}",
        ]
        for entry in sorted(self.entries, key=lambda e: e.depth):
            lines.append(
                f"{entry.label:20s} {entry.depth:>7} {entry.swaps:>6} "
                f"{entry.fidelity:>9.4f} {entry.seconds:>8.2f}"
            )
        return "\n".join(lines)

    def normalized_stats(self) -> Dict[str, Dict[str, float]]:
        """Every entry's ``MappingResult.stats`` projected onto the
        normalized schema (:data:`~repro.obs.REQUIRED_STAT_KEYS`), keyed
        by entry label — the uniform rows the stats table renders."""
        return {
            entry.label: stats_row(entry.result.stats)
            for entry in self.entries
        }

    def stats_table(self) -> str:
        """Formatted table of the normalized search counters.

        Works across every mapper because all of them emit the shared
        stats schema; mapper-specific extras are intentionally omitted.
        Rows are sorted by label (not entry insertion order) so the
        rendering is deterministic regardless of how the report was
        assembled.
        """
        columns = [k for k in REQUIRED_STAT_KEYS if k != "mapper"]
        header = f"{'mapper':20s}" + "".join(
            f" {column:>20}" for column in columns
        )
        lines = [header]
        rows = self.normalized_stats()
        for label in sorted(rows):
            row = rows[label]
            cells = ""
            for column in columns:
                value = row.get(column)
                if value is None:
                    cells += f" {'—':>20}"
                elif column == STAT_SECONDS:
                    cells += f" {value:>20.4f}"
                else:
                    cells += f" {value:>20}"
            lines.append(f"{label:20s}{cells}")
        return "\n".join(lines)


def compare_mappers(
    circuit: Circuit,
    coupling: CouplingGraph,
    mappers: Sequence[Tuple[str, object]],
    latency: Optional[LatencyModel] = None,
    noise: NoiseModel = NoiseModel(),
    simulate_up_to: int = 10,
    max_workers: int = 1,
) -> ComparisonReport:
    """Route ``circuit`` with every mapper and verify all results.

    Args:
        circuit: The logical circuit.
        coupling: Target architecture.
        mappers: ``(label, mapper)`` pairs; each mapper needs a
            ``map(circuit)`` method returning a :class:`MappingResult`.
        latency: Latency model used for the ideal-depth column.
        noise: Noise model for the fidelity estimates.
        simulate_up_to: Run the state-vector semantic check when the
            architecture has at most this many qubits.
        max_workers: Route the mappers through
            :func:`repro.analysis.batch.map_many` with this many worker
            processes when > 1.  A mapper failure then surfaces as a
            ``RuntimeError`` naming the mapper instead of an exception
            from inside ``map()``.

    Returns:
        A verified :class:`ComparisonReport`.
    """
    if latency is None:
        latency = uniform_latency()
    report = ComparisonReport(
        circuit=circuit,
        coupling=coupling,
        ideal_depth=circuit.depth(latency),
    )
    if max_workers > 1:
        from .batch import BatchTask, map_many

        records = map_many(
            [
                BatchTask(label=label, circuit=circuit, mapper=mapper)
                for label, mapper in mappers
            ],
            max_workers=max_workers,
        )
        outcomes = [(rec.label, rec) for rec in records]
    else:
        outcomes = []
        for label, mapper in mappers:
            start = time.perf_counter()
            result = mapper.map(circuit)
            elapsed = time.perf_counter() - start
            validate_result(result)
            outcomes.append(
                (label, _InlineOutcome(result=result, seconds=elapsed))
            )

    for label, outcome in outcomes:
        result = outcome.result
        if result is None:
            raise RuntimeError(
                f"mapper {label!r} failed: {getattr(outcome, 'error', '?')}"
            )
        if coupling.num_qubits <= simulate_up_to:
            from ..verify.simulator import assert_semantically_equivalent

            try:
                assert_semantically_equivalent(result)
            except NotImplementedError:
                pass  # circuit uses gates without known matrices
        report.entries.append(
            MapperComparison(
                label=label,
                result=result,
                seconds=outcome.seconds,
                fidelity=estimate_fidelity(result, noise),
            )
        )
    return report


@dataclass
class _InlineOutcome:
    """Sequential-path stand-in for a :class:`~.batch.BatchRecord`."""

    result: MappingResult
    seconds: float
