"""Corpus-scale throughput harness: a benchmark *request stream*.

A mapping service does not see one circuit at a time — it sees a
sustained stream of requests drawn from a working set of circuits, with
the same circuits recurring as users iterate.  This module builds such a
stream from the evaluation's own benchmark families (QFT skeletons,
Wille/Table-1, OLSQ/Table-2, Table-3 large circuits), runs it through
:func:`~repro.analysis.batch.map_many`, and measures the fleet-level
number that matters for capacity planning: **circuits per minute**.

Three pieces:

* :func:`build_corpus` — a deterministic, seeded stream of
  ``(label, circuit)`` requests: ``size // repeat_factor`` distinct base
  circuits sampled from the families, each repeated ``repeat_factor``
  times, shuffled into request order.  Repetition is the point — it is
  what the per-worker architecture warm cache (see
  :mod:`repro.core.warmcache`) exists to exploit.
* :func:`run_corpus` — execute the stream under a chosen scheduler /
  warm-cache configuration and return a throughput summary (wall
  seconds, circuits/min, queue-wait fraction and warm-cache hit rate
  from the fleet rollup when telemetry is on).
* :func:`append_corpus_trajectory` — record ``corpus_fleet`` suites in
  ``BENCH_search.json`` so ``repro bench-trend --check`` gates fleet
  throughput alongside single-search node counts.

Every configuration routes identically: scheduler and warm cache change
*where and how fast* each circuit is mapped, never the mapping — the
``repro corpus --verify-identity`` path re-runs the stream sequentially
and diffs depth / swap / node counts per request.
"""

from __future__ import annotations

import datetime
import json
import random
import subprocess
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..benchcircuits import benchmark_circuit
from ..circuit.circuit import Circuit
from ..circuit.generators import qft_skeleton
from .batch import BatchTask, map_many

#: QFT skeleton sizes included in the base pool.  Sizes below 7 map in
#: single-digit milliseconds on a 20-qubit device — they benchmark
#: process-pool overhead, not mapping — so the pool starts where the
#: search itself is the cost (qft7 ~0.07 s ... qft10 ~0.8 s, heuristic
#: mapper on tokyo/IBM latency).
QFT_SIZES: Tuple[int, ...] = (7, 8, 9, 10)

#: Wille-benchmark (Table 1) names in the base pool — the rows with the
#: largest mapper overhead in the published table, so the family
#: contributes real search work rather than dispatch noise.
WILLE_NAMES: Tuple[str, ...] = (
    "4gt13_92", "4mod5-v0_19", "4mod5-v1_24",
    "alu-v3_34", "mod5d1_63", "mod5mils_65",
)

#: OLSQ-suite (Table 2) names in the base pool.
OLSQ_NAMES: Tuple[str, ...] = (
    "adder", "qaoa5", "queko_05_0", "queko_10_3", "queko_15_1",
)

#: Table-3 large-circuit names in the base pool (regenerated with
#: :data:`TABLE3_GATE_CAP` so one request stays in the low-seconds range
#: the stream needs).
TABLE3_NAMES: Tuple[str, ...] = ("qft_10", "cm82a_208", "rd53_251")

#: Gate cap applied to Table-3 circuits in the corpus.
TABLE3_GATE_CAP = 300


def _family_pools(
    max_qubits: int,
) -> List[Tuple[str, List[Tuple[str, Circuit]]]]:
    """Per-family base pools, filtered to circuits that fit the device."""
    families: List[Tuple[str, List[Tuple[str, Circuit]]]] = [
        ("qft", [(f"qft{s}", qft_skeleton(s)) for s in QFT_SIZES]),
        ("wille", [(n, benchmark_circuit(n)) for n in WILLE_NAMES]),
        ("olsq", [(n, benchmark_circuit(n)) for n in OLSQ_NAMES]),
        (
            "table3",
            [
                (n, benchmark_circuit(n, scale_gate_cap=TABLE3_GATE_CAP))
                for n in TABLE3_NAMES
            ],
        ),
    ]
    return [
        (
            family,
            [(n, c) for n, c in pool if c.num_qubits <= max_qubits],
        )
        for family, pool in families
    ]


def base_circuits(max_qubits: int = 20) -> List[Tuple[str, Circuit]]:
    """The distinct base circuits the stream samples from.

    Deterministic order (families in declaration order); circuits whose
    qubit count exceeds ``max_qubits`` are dropped so the corpus fits
    the target architecture.
    """
    return [
        pair for _, pool in _family_pools(max_qubits) for pair in pool
    ]


def build_corpus(
    size: int = 100,
    *,
    max_qubits: int = 20,
    repeat_factor: int = 10,
    seed: int = 0,
) -> List[Tuple[str, Circuit]]:
    """A seeded request stream of ``size`` ``(label, circuit)`` pairs.

    ``size // repeat_factor`` distinct base circuits (capped by the pool
    size) are chosen with ``seed``, stratified round-robin across the
    four benchmark families so every seed exercises a QFT / Wille /
    OLSQ / Table-3 mix rather than whatever an unstratified draw happens
    to hit.  The stream cycles through the chosen circuits and is then
    shuffled, so repeats of one circuit are spread through the stream
    rather than batched — the adversarial case for a warm cache.
    Labels are uniquified per occurrence (``qft8@3``) so batch records
    stay distinguishable.
    """
    if size <= 0:
        raise ValueError(f"corpus size must be positive, got {size}")
    if repeat_factor <= 0:
        raise ValueError(
            f"repeat_factor must be positive, got {repeat_factor}"
        )
    pools = [
        list(pool) for _, pool in _family_pools(max_qubits) if pool
    ]
    total = sum(len(pool) for pool in pools)
    if total == 0:
        raise ValueError(
            f"no base circuits fit max_qubits={max_qubits}"
        )
    rng = random.Random(seed)
    for pool in pools:
        rng.shuffle(pool)
    distinct = max(1, min(total, size // repeat_factor))
    chosen: List[Tuple[str, Circuit]] = []
    turn = 0
    while len(chosen) < distinct:
        pool = pools[turn % len(pools)]
        if pool:
            chosen.append(pool.pop())
        turn += 1
    stream = [chosen[i % distinct] for i in range(size)]
    rng.shuffle(stream)
    counts: Dict[str, int] = {}
    labeled: List[Tuple[str, Circuit]] = []
    for name, circuit in stream:
        counts[name] = counts.get(name, 0) + 1
        labeled.append((f"{name}@{counts[name]}", circuit))
    return labeled


def corpus_tasks(
    stream: List[Tuple[str, Circuit]],
    mapper_factory: Callable[[], object],
) -> List[BatchTask]:
    """One :class:`BatchTask` per request, each with its own mapper."""
    return [
        BatchTask(label=label, circuit=circuit, mapper=mapper_factory())
        for label, circuit in stream
    ]


def run_corpus(
    stream: List[Tuple[str, Circuit]],
    mapper_factory: Callable[[], object],
    *,
    workers: int = 4,
    scheduler: str = "stealing",
    warm_cache: bool = True,
    telemetry_dir: Optional[str] = None,
    max_nodes: Optional[int] = None,
    max_seconds: Optional[float] = None,
    run_id: Optional[str] = None,
) -> Dict:
    """Map the whole stream once; return a throughput summary.

    The summary's ``circuits_per_min`` uses the harness's own wall clock
    around :func:`map_many` (submission to last result), not the fleet
    rollup's shard-timestamp estimate — it includes scheduler and
    pickling overhead, which is exactly what a capacity plan must
    include.  ``queue_wait_frac`` and ``warm_cache_hit_rate`` come from
    the fleet rollup and are ``None`` without ``telemetry_dir``.
    """
    telemetry_spec = None
    if telemetry_dir is not None:
        from ..obs.telemetry import TelemetrySpec

        telemetry_spec = TelemetrySpec(
            directory=telemetry_dir, run_id=run_id
        )
    tasks = corpus_tasks(stream, mapper_factory)
    started = time.perf_counter()
    records = map_many(
        tasks,
        max_workers=workers,
        max_nodes=max_nodes,
        max_seconds=max_seconds,
        keep_results=False,
        telemetry_spec=telemetry_spec,
        scheduler=scheduler,
        warm_cache=warm_cache,
    )
    wall = time.perf_counter() - started
    ok = sum(1 for record in records if record.ok)
    nodes = sum(
        int((record.stats or {}).get("nodes_expanded") or 0)
        for record in records
    )
    queue_wait_frac = None
    warm_hit_rate = None
    if telemetry_spec is not None:
        from ..obs.export import fleet_rollup

        fleet = fleet_rollup(telemetry_dir).get("fleet", {})
        queue_wait_frac = fleet.get("queue_wait_frac")
        warm_hit_rate = fleet.get("warm_cache_hit_rate")
    distinct = len({label.rsplit("@", 1)[0] for label, _ in stream})
    return {
        "scheduler": scheduler,
        "warm_cache": warm_cache,
        "workers": workers,
        "circuits": len(records),
        "distinct_circuits": distinct,
        "ok": ok,
        "failed": len(records) - ok,
        "wall_seconds": wall,
        "circuits_per_min": 60.0 * len(records) / wall if wall > 0 else 0.0,
        "mapping_seconds": sum(record.seconds for record in records),
        "nodes_expanded": nodes,
        "queue_wait_frac": queue_wait_frac,
        "warm_cache_hit_rate": warm_hit_rate,
        "records": [
            {
                "label": record.label,
                "ok": record.ok,
                "depth": record.depth,
                "swaps": record.swaps,
                "seconds": record.seconds,
                "nodes_expanded": (record.stats or {}).get("nodes_expanded"),
                "error": record.error,
                "error_type": record.error_type,
            }
            for record in records
        ],
    }


def identity_mismatches(run_a: Dict, run_b: Dict) -> List[str]:
    """Per-request result differences between two :func:`run_corpus` runs.

    Compares depth, swap count and ``nodes_expanded`` label by label —
    the fields the acceptance contract pins (search results are
    deterministic, so equal counts mean the searches took identical
    paths).  Returns human-readable mismatch lines; empty means
    bit-identical.
    """
    mismatches: List[str] = []
    records_b = {record["label"]: record for record in run_b["records"]}
    for rec_a in run_a["records"]:
        rec_b = records_b.get(rec_a["label"])
        if rec_b is None:
            mismatches.append(f"{rec_a['label']}: missing from second run")
            continue
        for field in ("ok", "depth", "swaps", "nodes_expanded"):
            if rec_a[field] != rec_b[field]:
                mismatches.append(
                    f"{rec_a['label']}: {field} {rec_a[field]} != "
                    f"{rec_b[field]}"
                )
    if len(run_a["records"]) != len(run_b["records"]):
        mismatches.append(
            f"record count {len(run_a['records'])} != "
            f"{len(run_b['records'])}"
        )
    return mismatches


# ----------------------------------------------------------------------
# BENCH_search.json trajectory recording
# ----------------------------------------------------------------------

#: Schema written when the trajectory file does not exist yet (matches
#: benchmarks/bench_search_perf.py).
BENCH_SCHEMA = "repro.bench_search/2"


def corpus_suite(summary: Dict, name_suffix: str = "") -> Tuple[str, Dict]:
    """One ``corpus_fleet`` suite entry from a :func:`run_corpus` summary."""
    name = f"corpus_fleet{name_suffix}"
    suite = {
        "kind": "corpus-fleet",
        "scheduler": summary["scheduler"],
        "warm_cache": summary["warm_cache"],
        "workers": summary["workers"],
        "circuits": summary["circuits"],
        "distinct_circuits": summary.get("distinct_circuits"),
        "wall_seconds": summary["wall_seconds"],
        "circuits_per_min": summary["circuits_per_min"],
        "nodes_expanded": summary["nodes_expanded"],
    }
    if summary.get("queue_wait_frac") is not None:
        suite["queue_wait_frac"] = summary["queue_wait_frac"]
    if summary.get("warm_cache_hit_rate") is not None:
        suite["warm_cache_hit_rate"] = summary["warm_cache_hit_rate"]
    return name, suite


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 - not a git checkout
        return "unknown"


def append_corpus_trajectory(
    json_path: str,
    suites: Dict[str, Dict],
    *,
    kernel_backend: Optional[str] = None,
    run_id: Optional[str] = None,
    ledger_path: Optional[str] = None,
) -> Dict:
    """Append one trajectory entry carrying ``suites`` to ``json_path``.

    The entry mirrors ``benchmarks/bench_search_perf.py``'s shape
    (commit, UTC date, mode/pruning/kernel-backend configuration keys)
    so ``repro bench-trend`` tabulates and ``--check`` gates corpus
    suites exactly like search suites.  The existing report's other
    top-level fields (schema, baseline) are preserved; a missing file is
    created fresh.

    ``run_id`` / ``ledger_path`` make the row traceable: the full git
    SHA plus the ledger entry (config fingerprint, artifacts, host info)
    behind this aggregate lives at ``<ledger_path>/index.jsonl`` under
    ``run_id``.  Both are recorded as ``None`` when no ledger was
    configured, keeping the entry shape stable.
    """
    import os
    import platform

    from ..obs.ledger import git_sha

    if kernel_backend is None:
        from ..core.kernels import resolve_backend

        kernel_backend = resolve_backend(None).name
    try:
        with open(json_path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        if not isinstance(report, dict):
            report = {}
    except (OSError, ValueError):
        report = {}
    report.setdefault("schema", BENCH_SCHEMA)
    trajectory = report.get("trajectory")
    if not isinstance(trajectory, list):
        trajectory = []
    entry = {
        "commit": _current_commit(),
        "git_sha": git_sha(),
        "run_id": run_id,
        "ledger_path": ledger_path,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "mode": "full",
        "pruning": "on",
        "kernel_backend": kernel_backend,
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suites": suites,
    }
    trajectory.append(entry)
    report["trajectory"] = trajectory
    directory = os.path.dirname(json_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return entry
