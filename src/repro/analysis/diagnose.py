"""Offline analysis of expansion-level search traces + perf-trend checks.

Two consumers live here:

* ``repro diagnose <trace.jsonl>`` — :func:`diagnose` digests a
  :class:`~repro.obs.trace.TraceRecorder` stream into the evidence the
  pruning literature actually argues from: a per-rule **pruning
  attribution** breakdown (which rule killed how many subtrees, split by
  search phase and by progress quartile), a **heuristic-accuracy audit**
  along the optimal path (h(v) vs. true remaining depth — slack ≥ 0
  everywhere is an empirical admissibility proof, and the slack
  histogram quantifies how tight §5.1's bound runs), **queue/f-frontier
  dynamics**, and the **incumbent-tightening timeline** of the anytime
  bound.  On a complete (``mode="full"``) trace the per-record stream is
  reconciled *exactly* against the run's reported counters — any
  mismatch means the trace layer and the search disagree and is reported
  as an inconsistency.

* ``repro bench-trend --check`` — :func:`check_trend` compares the
  newest ``BENCH_search.json`` trajectory entry against the best prior
  entry of the same configuration, per suite, with nodes-expanded and
  wall-time thresholds; regressions exit nonzero so CI can gate on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.sinks import read_jsonl
from ..obs.trace import (
    EV_EXPAND,
    EV_INCUMBENT,
    EV_PRUNE,
    EV_SOLUTION,
    EV_SUMMARY,
    REASON_TO_STAT,
)

#: Stat keys a trace's per-record stream can be reconciled against.
RECONCILED_STATS = (
    "nodes_expanded",
    "pruned_by_bound",
    "filtered_equivalent",
    "filtered_dominated",
    "killed",
    "swaps_restricted",
    "symmetry_pruned",
    "pruned_by_assignment_lb",
    "pruned_by_layer_weight",
    "root_candidates_restricted",
    "closed_dominated",
)

#: BENCH_search.json schema versions :func:`check_trend` understands.
KNOWN_BENCH_SCHEMAS = ("repro.bench_search/2",)


def load_trace(path: str) -> List[Dict]:
    """Trace records from a telemetry JSONL file (other types skipped)."""
    return [
        record for record in read_jsonl(path)
        if record.get("type") == "trace"
    ]


# ----------------------------------------------------------------------
# Trace digestion
# ----------------------------------------------------------------------

def _authoritative_summary(records: Sequence[Dict]) -> Optional[Dict]:
    """The summary holding the run's true totals.

    A fan-out trace carries one per-root ``scope="search"`` summary plus
    the coordinator's ``scope="aggregate"`` total; the aggregate wins.
    """
    summaries = [r for r in records if r.get("ev") == EV_SUMMARY]
    if not summaries:
        return None
    for record in reversed(summaries):
        if record.get("scope") == "aggregate":
            return record
    return summaries[-1]


def _attribution(
    records: Sequence[Dict], total_expansions: int
) -> Dict[str, Dict]:
    """Per-reason breakdown of the recorded prune events."""
    out: Dict[str, Dict] = {}
    quarter = max(1, total_expansions // 4) if total_expansions else 1
    for record in records:
        if record.get("ev") != EV_PRUNE:
            continue
        reason = record.get("reason", "?")
        entry = out.setdefault(reason, {
            "recorded": 0,
            "stat": REASON_TO_STAT.get(reason),
            "phases": {},
            "by_quartile": [0, 0, 0, 0],
        })
        count = int(record.get("count", 1))
        entry["recorded"] += count
        phase = record.get("phase", "unattributed")
        entry["phases"][phase] = entry["phases"].get(phase, 0) + count
        if total_expansions:
            quartile = min(3, int(record.get("idx", 0)) // quarter)
            entry["by_quartile"][quartile] += count
    return out


def _heuristic_audit(records: Sequence[Dict]) -> Optional[Dict]:
    """h(v) vs. true remaining depth along the (first) optimal path.

    Walks parent ids from the recorded solution terminal back to a root
    through the expand records.  For every node on that path the true
    cost-to-go is ``depth - g(v)`` (prefix nodes sit at cycle 0, so
    their true remaining cost is the full depth); admissibility demands
    ``h(v) <= depth - g(v)``, i.e. ``slack >= 0``.
    """
    solutions = [r for r in records if r.get("ev") == EV_SOLUTION]
    if not solutions:
        return None
    # The winner: smallest depth, earliest root for determinism.
    solution = min(
        solutions,
        key=lambda r: (r.get("depth", 0), r.get("root", -1), r.get("idx", 0)),
    )
    depth = int(solution["depth"])
    root_tag = solution.get("root", -1)
    by_id: Dict[Tuple, Dict] = {
        (r.get("root", -1), r["node"]): r
        for r in records
        if r.get("ev") == EV_EXPAND and "node" in r
    }
    path: List[Dict] = []
    slack_histogram: Dict[int, int] = {}
    admissible = True
    tightness: List[float] = []
    parent = solution.get("parent", -1)
    complete_path = True
    while parent != -1:
        record = by_id.get((root_tag, parent))
        if record is None:
            complete_path = False  # evicted/sampled out or foreign chunk
            break
        g = int(record.get("cycle", 0))
        h = int(record.get("h", 0))
        true_remaining = depth - g
        slack = true_remaining - h
        slack_histogram[slack] = slack_histogram.get(slack, 0) + 1
        if slack < 0:
            admissible = False
        if true_remaining > 0:
            tightness.append(h / true_remaining)
        path.append({
            "node": record["node"],
            "cycle": g,
            "h": h,
            "true_remaining": true_remaining,
            "slack": slack,
            "phase": record.get("phase", "search"),
        })
        parent = record.get("parent", -1)
    path.reverse()
    return {
        "depth": depth,
        "root": root_tag,
        "path_nodes": len(path),
        "path_complete": complete_path,
        "admissible_on_path": admissible,
        "slack_histogram": dict(sorted(slack_histogram.items())),
        "mean_tightness": (
            round(sum(tightness) / len(tightness), 4) if tightness else None
        ),
        "path": path,
    }


def _frontier(records: Sequence[Dict]) -> Optional[Dict]:
    """Queue-size / f-frontier dynamics over the recorded expansions."""
    expands = [r for r in records if r.get("ev") == EV_EXPAND]
    if not expands:
        return None
    heaps = [int(r.get("heap", 0)) for r in expands]
    fs = [int(r.get("f", 0)) for r in expands]
    phases: Dict[str, int] = {}
    actions: Dict[str, int] = {}
    for record in expands:
        phase = record.get("phase", "search")
        phases[phase] = phases.get(phase, 0) + 1
        action = record.get("action", "?")
        actions[action] = actions.get(action, 0) + 1
    # Downsample a (idx, heap, f) series to ~32 points for rendering.
    stride = max(1, len(expands) // 32)
    series = [
        {
            "idx": r.get("idx", 0),
            "heap": int(r.get("heap", 0)),
            "f": int(r.get("f", 0)),
        }
        for r in expands[::stride]
    ]
    return {
        "recorded_expansions": len(expands),
        "heap_max": max(heaps),
        "heap_final": heaps[-1],
        "heap_mean": round(sum(heaps) / len(heaps), 1),
        "f_first": fs[0],
        "f_last": fs[-1],
        "phases": dict(sorted(phases.items())),
        "actions": dict(sorted(actions.items())),
        "series": series,
    }


def _incumbent_timeline(records: Sequence[Dict]) -> List[Dict]:
    events = [
        {
            "depth": int(r.get("depth", 0)),
            "source": r.get("source", "?"),
            "idx": r.get("idx", 0),
            "elapsed": r.get("elapsed", 0.0),
            "root": r.get("root", -1),
        }
        for r in records
        if r.get("ev") == EV_INCUMBENT
    ]
    events.sort(key=lambda e: (e["elapsed"], e["idx"]))
    return events


def diagnose(records: Sequence[Dict]) -> Dict:
    """Digest trace records into the full diagnostics report.

    Returns a JSON-serializable dict; see :func:`render_report` for the
    human rendering.  ``report["consistent"]`` is only meaningful when
    ``report["complete"]`` — an incomplete (ring/sampled) trace cannot
    reproduce exact totals from records and is not expected to.
    """
    records = list(records)
    summary = _authoritative_summary(records)
    stats = dict(summary.get("stats", {})) if summary else {}
    total_expansions = int(
        stats.get("nodes_expanded", 0)
        or (summary or {}).get("expansions", 0)
    )
    attribution = _attribution(records, total_expansions)

    # Recorded totals per stats counter (several reasons can feed one).
    recorded_counters: Dict[str, int] = {}
    for reason, entry in attribution.items():
        stat = entry["stat"]
        if stat is not None:
            recorded_counters[stat] = (
                recorded_counters.get(stat, 0) + entry["recorded"]
            )
    recorded_counters["nodes_expanded"] = sum(
        1 for r in records if r.get("ev") == EV_EXPAND
    )

    # Completeness: every contributing recorder must have been lossless.
    summaries = [r for r in records if r.get("ev") == EV_SUMMARY]
    complete = bool(summaries) and all(
        s.get("complete", False) for s in summaries
    )

    mismatches: Dict[str, Dict[str, int]] = {}
    if complete and stats:
        for key in RECONCILED_STATS:
            expected = stats.get(key)
            if expected is None:
                continue
            got = recorded_counters.get(key, 0)
            if int(expected) != got:
                mismatches[key] = {"stats": int(expected), "trace": got}

    return {
        "records": len(records),
        "complete": complete,
        "consistent": not mismatches if complete else None,
        "mismatches": mismatches,
        "stats": stats,
        "recorded_counters": dict(sorted(recorded_counters.items())),
        "attribution": dict(sorted(attribution.items())),
        "heuristic_audit": _heuristic_audit(records),
        "frontier": _frontier(records),
        "incumbent_timeline": _incumbent_timeline(records),
        "roots": sorted({
            r.get("root", -1) for r in records if "root" in r
        }),
    }


def render_report(report: Dict) -> str:
    """Human-readable rendering of a :func:`diagnose` report."""
    lines: List[str] = []
    stats = report.get("stats", {})
    lines.append(
        f"trace: {report['records']} records, "
        f"{'complete' if report['complete'] else 'partial (ring/sampled)'}"
    )
    if stats:
        cells = "  ".join(
            f"{key}={stats[key]}" for key in RECONCILED_STATS
            if key in stats
        )
        lines.append(f"run counters: {cells}")

    lines.append("")
    lines.append("pruning attribution (subtree kills per rule):")
    attribution = report.get("attribution", {})
    if not attribution:
        lines.append("  (no prune events recorded)")
    for reason, entry in attribution.items():
        phases = " ".join(
            f"{phase}={count}"
            for phase, count in sorted(entry["phases"].items())
        ) or "-"
        quartiles = "/".join(str(c) for c in entry["by_quartile"])
        stat = entry["stat"] or "-"
        lines.append(
            f"  {reason:22s} {entry['recorded']:>8}  -> {stat:20s} "
            f"phases[{phases}]  quartiles[{quartiles}]"
        )

    audit = report.get("heuristic_audit")
    lines.append("")
    if audit is None:
        lines.append("heuristic audit: no solution recorded")
    else:
        verdict = (
            "admissible" if audit["admissible_on_path"]
            else "VIOLATED (h exceeded true remaining depth!)"
        )
        lines.append(
            f"heuristic audit (optimal path, depth {audit['depth']}): "
            f"{verdict}"
        )
        lines.append(
            f"  {audit['path_nodes']} path nodes"
            f"{'' if audit['path_complete'] else ' (path truncated)'}, "
            f"mean h/true tightness "
            f"{audit['mean_tightness'] if audit['mean_tightness'] is not None else '-'}"
        )
        histogram = audit["slack_histogram"]
        if histogram:
            lines.append(
                "  slack histogram: "
                + "  ".join(f"{k}:{v}" for k, v in histogram.items())
            )

    frontier = report.get("frontier")
    lines.append("")
    if frontier is None:
        lines.append("frontier: no expand records")
    else:
        lines.append(
            f"frontier: {frontier['recorded_expansions']} recorded "
            f"expansions, heap max {frontier['heap_max']} "
            f"mean {frontier['heap_mean']}, f {frontier['f_first']} -> "
            f"{frontier['f_last']}"
        )
        lines.append(
            "  phases: "
            + "  ".join(
                f"{k}={v}" for k, v in frontier["phases"].items()
            )
        )
        lines.append(
            "  actions: "
            + "  ".join(
                f"{k}={v}" for k, v in frontier["actions"].items()
            )
        )

    timeline = report.get("incumbent_timeline", [])
    lines.append("")
    if not timeline:
        lines.append("incumbent timeline: (no incumbent events)")
    else:
        lines.append("incumbent timeline:")
        for event in timeline:
            root = f" root={event['root']}" if event.get("root", -1) != -1 \
                else ""
            lines.append(
                f"  t={event['elapsed']:<9} idx={event['idx']:<8} "
                f"depth={event['depth']} ({event['source']}){root}"
            )

    lines.append("")
    if report["complete"]:
        if report["consistent"]:
            lines.append(
                "counter reconciliation: OK — trace reproduces the run's "
                "counters exactly"
            )
        else:
            lines.append("counter reconciliation: MISMATCH")
            for key, pair in report["mismatches"].items():
                lines.append(
                    f"  {key}: stats={pair['stats']} trace={pair['trace']}"
                )
    else:
        lines.append(
            "counter reconciliation: skipped (partial trace; summary "
            "counts remain exact)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Perf-regression detection over the BENCH_search.json trajectory
# ----------------------------------------------------------------------

def check_trend(
    report: Dict,
    max_node_ratio: float = 1.05,
    max_time_ratio: float = 3.0,
    min_time_floor: float = 0.1,
    min_throughput_ratio: float = 0.67,
) -> Tuple[bool, List[str]]:
    """Compare the newest trajectory entry against its best predecessors.

    For every suite in the newest entry, looks up prior entries with the
    same ``mode`` + ``pruning`` + ``kernel_backend`` configuration (legacy
    entries without a recorded backend count as ``"pure"``) and flags:

    * ``nodes_expanded`` above ``best_prior * max_node_ratio`` — the
      search expanded more nodes than it used to on identical input (node
      counts are deterministic, so the default tolerance is tight);
    * ``wall_seconds`` above ``best_prior * max_time_ratio`` when the
      prior best is at least ``min_time_floor`` seconds (sub-100 ms
      timings are noise-dominated and never gate);
    * ``circuits_per_min`` (fleet-throughput suites, e.g.
      ``corpus_fleet`` from ``repro corpus --record``) below
      ``best_prior * min_throughput_ratio`` — batch throughput dropped
      to less than that fraction of the best recorded run.

    Returns ``(ok, messages)``; ``messages`` always explains what was
    (or could not be) compared.
    """
    trajectory = report.get("trajectory") or []
    if len(trajectory) < 2:
        return True, [
            "trend check: fewer than 2 trajectory entries — nothing to "
            "compare"
        ]
    newest = trajectory[-1]

    def _config(entry: Dict) -> Tuple:
        # Entries written before backends existed ran the pure-python
        # path, so treat a missing field as "pure" rather than refusing
        # to compare against the whole pre-backend history.
        return (
            entry.get("mode"),
            entry.get("pruning"),
            entry.get("kernel_backend", "pure"),
        )

    config = _config(newest)
    priors = [
        entry for entry in trajectory[:-1] if _config(entry) == config
    ]
    if not priors:
        return True, [
            f"trend check: no prior entries with mode={config[0]} "
            f"pruning={config[1]} kernel={config[2]} — timings from "
            "different backends are not comparable; nothing to check"
        ]

    ok = True
    messages: List[str] = []
    for suite, current in (newest.get("suites") or {}).items():
        prior_suites = [
            entry["suites"][suite] for entry in priors
            if suite in (entry.get("suites") or {})
        ]
        if not prior_suites:
            messages.append(f"{suite}: new suite, no prior entries")
            continue

        nodes = current.get("nodes_expanded")
        prior_nodes = [
            s["nodes_expanded"] for s in prior_suites
            if s.get("nodes_expanded") is not None
        ]
        if nodes is not None and prior_nodes:
            best = min(prior_nodes)
            limit = best * max_node_ratio
            if nodes > limit:
                ok = False
                messages.append(
                    f"{suite}: nodes_expanded regressed "
                    f"{best} -> {nodes} (> {max_node_ratio:.2f}x)"
                )
            else:
                messages.append(
                    f"{suite}: nodes_expanded {nodes} vs best {best} ok"
                )

        seconds = current.get("wall_seconds")
        prior_seconds = [
            s["wall_seconds"] for s in prior_suites
            if s.get("wall_seconds") is not None
        ]
        if seconds is not None and prior_seconds:
            best = min(prior_seconds)
            if best >= min_time_floor and seconds > best * max_time_ratio:
                ok = False
                messages.append(
                    f"{suite}: wall_seconds regressed "
                    f"{best:.3f}s -> {seconds:.3f}s "
                    f"(> {max_time_ratio:.1f}x)"
                )

        throughput = current.get("circuits_per_min")
        prior_throughput = [
            s["circuits_per_min"] for s in prior_suites
            if s.get("circuits_per_min") is not None
        ]
        if throughput is not None and prior_throughput:
            best = max(prior_throughput)
            if throughput < best * min_throughput_ratio:
                ok = False
                messages.append(
                    f"{suite}: circuits_per_min regressed "
                    f"{best:.1f} -> {throughput:.1f} "
                    f"(< {min_throughput_ratio:.2f}x best)"
                )
            else:
                messages.append(
                    f"{suite}: circuits_per_min {throughput:.1f} vs "
                    f"best {best:.1f} ok"
                )
    return ok, messages
