"""Decoherence-aware fidelity estimation for transformed circuits.

The paper's Section 1 motivates time-optimality through reliability: "a
qubit decoheres over time … the longer a qubit operates, the less reliable
it is.  A time-optimal solution minimizes the impact of decoherence."
This module quantifies that claim with the standard exponential model:

* each qubit decoheres as ``exp(-t_active / T)`` where ``t_active`` is the
  number of cycles between the qubit's first activation and the end of its
  last gate (idling while entangled still decoheres);
* each executed gate contributes a success factor ``1 - ε`` (two-qubit
  gates, including the CNOTs inside inserted SWAPs, dominate the error).

The absolute numbers are model-dependent; what reproduces the paper's
argument is the *ordering*: a deeper schedule of the same circuit always
scores a lower estimated fidelity, so time-optimal mapping maximizes this
estimate among schedules with equal SWAP counts, and trades depth against
SWAP count otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.result import MappingResult


@dataclass(frozen=True)
class NoiseModel:
    """A simple homogeneous noise model.

    Attributes:
        coherence_cycles: Decoherence time ``T`` in scheduler cycles.
        single_qubit_error: Error probability per 1-qubit gate.
        two_qubit_error: Error probability per 2-qubit gate (a SWAP counts
            as ``swap_cnot_count`` two-qubit gates).
        swap_cnot_count: CNOTs per inserted SWAP (3 on bidirectional
            links, Section 2.2).
    """

    coherence_cycles: float = 2000.0
    single_qubit_error: float = 0.0005
    two_qubit_error: float = 0.005
    swap_cnot_count: int = 3


def estimate_fidelity(
    result: MappingResult, noise: NoiseModel = NoiseModel()
) -> float:
    """Estimated success probability of a transformed circuit.

    Args:
        result: A verified mapping result.
        noise: Noise parameters.

    Returns:
        A value in ``(0, 1]``; higher is better.
    """
    gate_factor = 1.0
    first_use = {}
    last_use = {}
    for op in result.ops:
        if op.is_inserted_swap:
            error = 1.0 - (1.0 - noise.two_qubit_error) ** noise.swap_cnot_count
        elif len(op.physical_qubits) == 2:
            error = noise.two_qubit_error
        else:
            error = noise.single_qubit_error
        gate_factor *= 1.0 - error
        for p in op.physical_qubits:
            if p not in first_use:
                first_use[p] = op.start
            last_use[p] = max(last_use.get(p, 0), op.end)

    active_cycles = sum(
        last_use[p] - first_use[p] for p in first_use
    )
    decoherence_factor = math.exp(-active_cycles / noise.coherence_cycles)
    return gate_factor * decoherence_factor


def fidelity_gain(
    better: MappingResult,
    worse: MappingResult,
    noise: NoiseModel = NoiseModel(),
) -> float:
    """Relative fidelity improvement of one schedule over another.

    Args:
        better: Typically the time-optimal schedule.
        worse: Typically a baseline schedule of the same circuit.

    Returns:
        ``estimate(better) / estimate(worse) - 1`` (positive when the
        first schedule is more reliable).
    """
    if better.circuit is not worse.circuit and better.circuit != worse.circuit:
        raise ValueError("fidelity comparison needs the same logical circuit")
    return estimate_fidelity(better, noise) / estimate_fidelity(worse, noise) - 1.0
