"""Pattern analysis of optimal schedules (paper Section 6.1, Appendix B).

The paper's exact-analysis methodology is: solve small instances optimally,
then *generalize recurring patterns* by hand.  This module mechanizes the
observations that make that possible:

* :func:`cycle_signatures` — a structural fingerprint of each cycle;
* :func:`find_period` — detect a repeating motif in the signature stream
  (the QFT-on-LNN butterfly has period 2, the 2×N patterns period 3);
* :func:`canonicalize_swap_gate_order` — the Appendix-B commutation: a
  SWAP immediately followed by a two-qubit gate on the same physical pair
  is equivalent to the gate (operands reversed) followed by the SWAP, and
  vice versa; normalizing to gate-before-SWAP exposes recurring patterns
  hidden by arbitrary solver orderings;
* :func:`is_mirrored_layout` — checks the initial/final layout mirror
  property the paper notes for its structured QFT schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.result import MappingResult, ScheduledOp


def cycle_signatures(result: MappingResult) -> List[Tuple]:
    """Structural fingerprint per busy cycle.

    Each signature is the sorted tuple of ``(kind, physical_pair)`` for
    operations *starting* in that cycle, with empty cycles omitted.
    """
    by_start: Dict[int, List[Tuple]] = {}
    for op in result.ops:
        kind = "s" if op.is_inserted_swap else "g"
        by_start.setdefault(op.start, []).append(
            (kind, tuple(sorted(op.physical_qubits)))
        )
    return [tuple(sorted(by_start[t])) for t in sorted(by_start)]


def _kind_profile(signature: Tuple) -> Tuple:
    """Reduce a cycle signature to its op-kind multiset (shape only)."""
    return tuple(sorted(kind for kind, _pair in signature))


def find_period(
    result: MappingResult,
    max_period: int = 6,
    skip_prefix: int = 1,
    min_repeats: int = 2,
) -> Optional[int]:
    """Detect the repetition period of a schedule's cycle shapes.

    Compares the per-cycle *kind profiles* (how many gates vs SWAPs start
    each cycle is allowed to grow/shrink across repeats — it's the
    gate/SWAP alternation structure that recurs, not the op counts), so it
    looks for the smallest period ``p`` such that cycles ``i`` and
    ``i + p`` agree on which kinds are present, for all interior cycles.

    Args:
        result: Schedule to analyze.
        max_period: Largest period to try.
        skip_prefix: Irregular warm-up cycles to ignore.
        min_repeats: Minimum motif repetitions required.

    Returns:
        The smallest matching period, or ``None``.
    """
    signatures = cycle_signatures(result)[skip_prefix:]
    profiles = [frozenset(kind for kind, _ in sig) for sig in signatures]
    interior = profiles[:-1] if len(profiles) > 1 else profiles
    for period in range(1, max_period + 1):
        if len(interior) < period * min_repeats:
            continue
        if all(
            interior[i] == interior[i + period]
            for i in range(len(interior) - period)
        ):
            return period
    return None


def canonicalize_swap_gate_order(
    ops: Sequence[ScheduledOp],
) -> List[ScheduledOp]:
    """Normalize SWAP-then-gate adjacencies to gate-then-SWAP (Appendix B).

    When an inserted SWAP on a physical pair is immediately followed by a
    two-qubit gate on the same pair, the two operations commute up to
    reversing the gate's operands.  Normalizing exposes recurring motifs:
    the paper's Fig. 16 solution becomes Fig. 2(c) under this transform.

    Only the schedule *structure* is rewritten (start cycles are
    exchanged); the result is equivalent cycle-for-cycle.
    """
    ordered = sorted(ops, key=lambda o: (o.start, o.physical_qubits))
    out = list(ordered)
    changed = True
    while changed:
        changed = False
        by_pair: Dict[Tuple[int, ...], List[int]] = {}
        for index, op in enumerate(out):
            by_pair.setdefault(tuple(sorted(op.physical_qubits)), []).append(index)
        for indices in by_pair.values():
            for a, b in zip(indices, indices[1:]):
                first, second = out[a], out[b]
                if (
                    first.is_inserted_swap
                    and not second.is_inserted_swap
                    and len(second.physical_qubits) == 2
                    and first.end == second.start
                ):
                    moved_gate = ScheduledOp(
                        gate_index=second.gate_index,
                        name=second.name,
                        logical_qubits=second.logical_qubits,
                        physical_qubits=(
                            second.physical_qubits[1],
                            second.physical_qubits[0],
                        ),
                        start=first.start,
                        duration=second.duration,
                    )
                    moved_swap = ScheduledOp(
                        gate_index=None,
                        name=first.name,
                        logical_qubits=first.logical_qubits,
                        physical_qubits=first.physical_qubits,
                        start=first.start + second.duration,
                        duration=first.duration,
                    )
                    out[a], out[b] = moved_gate, moved_swap
                    changed = True
        if changed:
            out.sort(key=lambda o: (o.start, o.physical_qubits))
    return out


def is_mirrored_layout(result: MappingResult) -> bool:
    """True when the final layout is the left-right mirror of the initial.

    For LNN this means logical qubit at ``Q_i`` ends at ``Q_{n-1-i}``; on a
    2×N grid (column-major numbering) the column order reverses within
    each row.  The paper's structured QFT schedules have this property
    once the cosmetic final SWAP layer is included — with it dropped (as
    our emitters do), the check is expected to be False for them.
    """
    n = result.coupling.num_qubits
    final = result.final_mapping()
    if result.coupling.name.startswith("lnn"):
        return all(final[l] == n - 1 - result.initial_mapping[l]
                   for l in range(len(final)))
    if result.coupling.name.startswith("grid-2x"):
        cols = n // 2

        def mirror(p: int) -> int:
            """Column-reversed physical index on the 2xN grid."""
            row, col = p % 2, p // 2
            return 2 * (cols - 1 - col) + row

        return all(
            final[l] == mirror(result.initial_mapping[l])
            for l in range(len(final))
        )
    raise ValueError(f"no mirror notion for architecture {result.coupling.name}")
