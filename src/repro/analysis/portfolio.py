"""Portfolio mapping: race exact, heuristic and SABRE lanes to one depth.

The exact A* search (Section 5) proves optimality but pays for the proof;
the Section 6.2 heuristic and the SABRE baseline return *some* schedule
almost immediately.  :class:`PortfolioMapper` runs all three as lanes of
one race wired through the :class:`~repro.analysis.batch.SharedBound`
incumbent protocol the mode-2 fan-out already speaks:

* the **heuristic** and **sabre** lanes run in daemon threads; each
  validates its finished schedule (:func:`repro.verify.checker.
  validate_result`) and publishes the depth into the shared bound, which
  the exact lane polls every ``_SHARED_BOUND_POLL`` expansions — a lane
  result *immediately* tightens the exact search's f-prune;
* the **exact** lane runs in the calling thread with every
  literature-grade bound of :mod:`repro.core.bounds` switched on and the
  portfolio's anytime ``deadline`` installed.

The racy composition stays *anytime and exact*: at any deadline the best
validated lane schedule is returned (``optimal=False``), and when the
exact lane closes the portfolio returns a proven optimum.  The subtle
case is the exact lane draining its queue against a *foreign* bound — it
raises ``budget_reason="exhausted"`` because it cannot vouch for depths
it did not derive (see :mod:`repro.core.astar`).  The portfolio can: the
drained queue proves no schedule beats the final shared bound, every
shared offer came from a validated schedule the portfolio holds, so the
best held result at ``depth == shared.peek()`` *is* optimal and is
promoted to ``optimal=True``.

Stats keep the normalized schema with the exact lane's search counters
top-level (so ``repro diagnose`` and the benchmark harness read portfolio
runs like exact runs) plus per-lane depth/seconds breakdowns,
``lanes_finished`` and ``winner_lane``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.sabre import SabreMapper
from ..circuit.circuit import Circuit
from ..core.astar import OptimalMapper, SearchBudgetExceeded
from ..core.heuristic_mapper import HeuristicMapper
from ..core.result import MappingResult
from ..obs.events import SearchProgressEvent
from ..obs.schema import (
    MAPPER_PORTFOLIO,
    STAT_BUDGET_REASON,
    STAT_LANES_FINISHED,
    STAT_WINNER_LANE,
    base_stats,
)
from ..obs.telemetry import Telemetry, resolve
from ..verify.checker import validate_result
from .batch import SharedBound

#: Lane names in winner-preference order: at equal depth the exact lane's
#: schedule wins (it may carry a proof), then the paper's own heuristic,
#: then the baseline.
LANE_EXACT = "exact"
LANE_HEURISTIC = "heuristic"
LANE_SABRE = "sabre"
LANE_ORDER = (LANE_EXACT, LANE_HEURISTIC, LANE_SABRE)

#: Stats of the exact lane hoisted to the top level of the portfolio
#: stats dict, so diagnose/bench tooling reads a portfolio run exactly
#: like an exact run.  ``seconds`` stays the portfolio's own wall clock.
_EXACT_HOISTED_KEYS = (
    "nodes_expanded",
    "nodes_generated",
    "filtered_equivalent",
    "filtered_dominated",
    "killed",
    "redundant",
    "distinct_states",
    "memo_hits",
    "memo_misses",
    "pruned_by_bound",
    "pruned_by_assignment_lb",
    "pruned_by_layer_weight",
    "root_candidates_restricted",
    "closed_dominated",
    "incumbent_updates",
    "incumbent_depth",
    "swaps_restricted",
    "symmetry_pruned",
    "mode2_roots",
    "kernel_backend",
    "budget_reason",
)


class _Lane:
    """One portfolio lane: a mapper run plus its validated outcome."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.result: Optional[MappingResult] = None
        self.error: Optional[str] = None
        self.seconds: float = 0.0

    def run(self, mapper, circuit, initial_mapping, shared) -> None:
        """Map, validate, publish.  Exceptions become lane errors."""
        start = time.perf_counter()
        try:
            if initial_mapping is not None:
                result = mapper.map(circuit, initial_mapping=initial_mapping)
            else:
                result = mapper.map(circuit)
            validate_result(result)
        except Exception as exc:  # noqa: BLE001 - containment per lane
            self.seconds = time.perf_counter() - start
            self.error = f"{type(exc).__name__}: {exc}"
            return
        self.seconds = time.perf_counter() - start
        self.result = result
        shared.offer(result.depth)


class PortfolioMapper:
    """Race exact / heuristic / SABRE lanes through a shared incumbent.

    Args:
        coupling: Target architecture.
        latency: Latency model (``None`` → uniform).
        lanes: Lane names to run, a subset of ``("exact", "heuristic",
            "sabre")``.  Order is irrelevant; winner preference is fixed.
        deadline: Optional anytime wall-clock budget in seconds for the
            whole portfolio.  The exact lane receives whatever remains of
            it when it starts; at expiry the best validated lane schedule
            is returned with ``optimal=False``.
        max_nodes: Optional exact-lane node budget (raises on trip, as in
            :class:`~repro.core.astar.OptimalMapper`, unless another lane
            already holds a schedule to fall back on).
        max_seconds: Optional exact-lane wall-clock budget, same fallback.
        search_initial_mapping: Mode 2 for the exact lane when no initial
            mapping is given (the portfolio default — lanes that place
            their own qubits make little sense in mode 1).
        assignment_bound / layer_bound / root_restriction /
        closed_dominance: The literature-grade exact-lane bounds
            (:mod:`repro.core.bounds`) and the closed-entry dominance
            extension (:mod:`repro.core.filters`); all default **on**
            here — the portfolio exists to close exact runs fast — while
            staying off in ``OptimalMapper`` itself.
        seed_incumbent: Compute one heuristic seed schedule up front,
            publish its depth, and hold it as a fallback result.  The
            exact lane's own seeding is disabled in favour of this held
            seed so that *every* depth in the shared bound corresponds to
            a schedule the portfolio can actually return (the optimality
            promotion below depends on that).
        sabre_seed / sabre_passes: SABRE lane knobs.
        kernel: Kernel backend name for the search lanes.
        telemetry: Optional observability context; lane completions are
            published as ``phase="lane"`` progress events.
    """

    mapper_name = MAPPER_PORTFOLIO

    def __init__(
        self,
        coupling,
        latency=None,
        lanes: Sequence[str] = LANE_ORDER,
        deadline: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_seconds: Optional[float] = None,
        search_initial_mapping: bool = True,
        assignment_bound: bool = True,
        layer_bound: bool = True,
        root_restriction: bool = True,
        closed_dominance: bool = True,
        seed_incumbent: bool = True,
        sabre_seed: int = 0,
        sabre_passes: int = 3,
        kernel: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        unknown = [lane for lane in lanes if lane not in LANE_ORDER]
        if unknown:
            raise ValueError(
                f"unknown portfolio lane(s) {unknown}; "
                f"choose from {list(LANE_ORDER)}"
            )
        if not lanes:
            raise ValueError("portfolio needs at least one lane")
        self.coupling = coupling
        self.latency = latency
        self.lanes = tuple(dict.fromkeys(lanes))  # dedup, keep order
        self.deadline = deadline
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.search_initial_mapping = search_initial_mapping
        self.assignment_bound = assignment_bound
        self.layer_bound = layer_bound
        self.root_restriction = root_restriction
        self.closed_dominance = closed_dominance
        self.seed_incumbent = seed_incumbent
        self.sabre_seed = sabre_seed
        self.sabre_passes = sabre_passes
        self.kernel = kernel
        self.telemetry = telemetry
        #: Optional warm-cache context (installed by the batch runner);
        #: forwarded to the exact and heuristic lanes, which share its
        #: problem/memo artifacts.
        self.arch_context = None

    # ------------------------------------------------------------------
    def _remaining(self, start: float) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.001, self.deadline - (time.perf_counter() - start))

    def _exact_mapper(self, start: float) -> OptimalMapper:
        mapper = OptimalMapper(
            self.coupling,
            self.latency,
            search_initial_mapping=self.search_initial_mapping,
            max_nodes=self.max_nodes,
            max_seconds=self.max_seconds,
            deadline=self._remaining(start),
            # The portfolio holds (and shares) its own seed; the lane's
            # private seed would publish depths with no held schedule
            # behind them, breaking the exhaustion promotion.
            seed_incumbent=False,
            # Mode-2 fan-out builds a private SharedBound, which would cut
            # the lane off from the portfolio's; keep the lane serial.
            mode2_workers=None,
            assignment_bound=self.assignment_bound,
            layer_bound=self.layer_bound,
            root_restriction=self.root_restriction,
            closed_dominance=self.closed_dominance,
            kernel=self.kernel,
            telemetry=self.telemetry,
        )
        mapper.arch_context = self.arch_context
        return mapper

    def _heuristic_mapper(self) -> HeuristicMapper:
        mapper = HeuristicMapper(
            self.coupling, self.latency, kernel=self.kernel
        )
        mapper.arch_context = self.arch_context
        return mapper

    def _sabre_mapper(self, shared: SharedBound) -> SabreMapper:
        return SabreMapper(
            self.coupling,
            self.latency,
            seed=self.sabre_seed,
            passes=self.sabre_passes,
            shared_incumbent=shared,
        )

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Race the configured lanes; return the best validated schedule.

        Returns a :class:`MappingResult` with ``optimal=True`` when the
        exact lane closed (directly or by the exhaustion promotion) and
        ``optimal=False`` for deadline/budget-limited runs.  Raises
        :class:`SearchBudgetExceeded` only when *no* lane produced a
        validated schedule inside the budget.
        """
        start = time.perf_counter()
        tele = resolve(self.telemetry)
        shared = SharedBound()
        lanes: Dict[str, _Lane] = {name: _Lane(name) for name in self.lanes}
        threads: List[Tuple[str, threading.Thread]] = []

        # --- held seed: the depth floor every lane prunes against -------
        seed_lane: Optional[_Lane] = None
        if self.seed_incumbent and LANE_EXACT in lanes:
            from ..core.heuristic_mapper import incumbent_result

            seed_lane = _Lane("seed")
            seed_start = time.perf_counter()
            seed = incumbent_result(
                self.coupling, self.latency, circuit,
                initial_mapping=initial_mapping,
            )
            seed_lane.seconds = time.perf_counter() - seed_start
            if seed is not None:
                try:
                    validate_result(seed)
                except Exception as exc:  # noqa: BLE001
                    seed_lane.error = f"{type(exc).__name__}: {exc}"
                else:
                    seed_lane.result = seed
                    shared.offer(seed.depth)

        # --- side lanes: threads, daemonic so a deadline never hangs ----
        for name in self.lanes:
            if name == LANE_EXACT:
                continue
            if name == LANE_HEURISTIC:
                mapper = self._heuristic_mapper()
            else:
                mapper = self._sabre_mapper(shared)
            thread = threading.Thread(
                target=lanes[name].run,
                args=(mapper, circuit, initial_mapping, shared),
                name=f"portfolio-{name}",
                daemon=True,
            )
            threads.append((name, thread))
            thread.start()

        # --- exact lane: calling thread, shared bound installed ---------
        exact_reason: Optional[str] = None
        exact_stats: Dict = {}
        if LANE_EXACT in lanes:
            lane = lanes[LANE_EXACT]
            mapper = self._exact_mapper(start)
            mapper.shared_incumbent = shared
            lane_start = time.perf_counter()
            try:
                result = (
                    mapper.map(circuit, initial_mapping=initial_mapping)
                    if initial_mapping is not None
                    else mapper.map(circuit)
                )
                validate_result(result)
                lane.result = result
                exact_stats = dict(result.stats)
                shared.offer(result.depth)
            except SearchBudgetExceeded as exc:
                exact_stats = dict(exc.partial_stats)
                exact_reason = exact_stats.get(STAT_BUDGET_REASON, "unknown")
                lane.error = f"budget exceeded: {exc}"
            except Exception as exc:  # noqa: BLE001 - containment per lane
                lane.error = f"{type(exc).__name__}: {exc}"
            lane.seconds = time.perf_counter() - lane_start

        # --- join side lanes (bounded by what is left of the deadline) --
        for name, thread in threads:
            remaining = self._remaining(start)
            thread.join(timeout=remaining)
            if thread.is_alive():
                lanes[name].error = "deadline expired before lane finished"

        return self._conclude(
            circuit, start, tele, shared, lanes, seed_lane,
            exact_stats, exact_reason, initial_mapping,
        )

    # ------------------------------------------------------------------
    def _conclude(
        self,
        circuit: Circuit,
        start: float,
        tele: Telemetry,
        shared: SharedBound,
        lanes: Dict[str, _Lane],
        seed_lane: Optional[_Lane],
        exact_stats: Dict,
        exact_reason: Optional[str],
        initial_mapping: Optional[Sequence[int]],
    ) -> MappingResult:
        """Pick the winner, promote optimality, assemble portfolio stats."""
        exact_lane = lanes.get(LANE_EXACT)
        exact_closed = (
            exact_lane is not None
            and exact_lane.result is not None
            and exact_lane.result.optimal
        )

        candidates: List[Tuple[str, MappingResult]] = []
        for name in LANE_ORDER:
            lane = lanes.get(name)
            if lane is not None and lane.result is not None:
                candidates.append((name, lane.result))
        if seed_lane is not None and seed_lane.result is not None:
            candidates.append((seed_lane.name, seed_lane.result))
        if not candidates:
            raise SearchBudgetExceeded(
                "no portfolio lane produced a validated schedule "
                f"(lanes: {', '.join(f'{l.name}: {l.error}' for l in lanes.values())})",
                partial_stats=self._stats(
                    start, lanes, seed_lane, exact_stats,
                    winner=None, reason=exact_reason or "no_lane_finished",
                ),
            )

        # LANE_ORDER iteration makes min() prefer exact > heuristic >
        # sabre (> seed) at equal depth.
        winner_name, winner = min(candidates, key=lambda item: item[1].depth)

        # Exhaustion promotion: the exact lane drained its queue against
        # the shared bound, proving nothing beats shared.peek(); every
        # offer came from a validated schedule held above, so the best
        # held schedule at exactly that depth is optimal.  Sound only
        # when the exact lane's space covers the side lanes': mode 2
        # (superset of any placement) or a pinned shared initial mapping.
        optimal = exact_closed and winner_name == LANE_EXACT
        if (
            not optimal
            and exact_reason == "exhausted"
            and winner.depth == shared.peek()
            and (initial_mapping is not None or self.search_initial_mapping)
        ):
            optimal = True

        stats = self._stats(
            start, lanes, seed_lane, exact_stats,
            winner=winner_name,
            reason=None if optimal else exact_reason,
        )
        if tele.enabled:
            for lane in list(lanes.values()) + (
                [seed_lane] if seed_lane is not None else []
            ):
                tele.publish_progress(SearchProgressEvent(
                    mapper=self.mapper_name,
                    phase="lane",
                    nodes_expanded=int(stats.get("nodes_expanded", 0) or 0),
                    nodes_generated=int(stats.get("nodes_generated", 0) or 0),
                    heap_size=0,
                    best_f=lane.result.depth if lane.result is not None else -1,
                    elapsed_seconds=lane.seconds,
                    extra={
                        "lane": lane.name,
                        "finished": lane.result is not None,
                        "winner": lane.name == winner_name,
                    },
                ))
        return dataclasses.replace(winner, optimal=optimal, stats=stats)

    # ------------------------------------------------------------------
    def _stats(
        self,
        start: float,
        lanes: Dict[str, _Lane],
        seed_lane: Optional[_Lane],
        exact_stats: Dict,
        winner: Optional[str],
        reason: Optional[str],
    ) -> Dict:
        hoisted = {
            key: exact_stats[key]
            for key in _EXACT_HOISTED_KEYS
            if key in exact_stats
        }
        if reason is not None:
            hoisted[STAT_BUDGET_REASON] = reason
        elif STAT_BUDGET_REASON in hoisted:
            # The exact lane's own budget tag is superseded by the
            # portfolio's conclusion (e.g. exhaustion promoted to proof).
            del hoisted[STAT_BUDGET_REASON]
        all_lanes = list(lanes.values()) + (
            [seed_lane] if seed_lane is not None else []
        )
        lane_depths = {
            lane.name: lane.result.depth
            for lane in all_lanes if lane.result is not None
        }
        lane_seconds = {
            lane.name: round(lane.seconds, 6) for lane in all_lanes
        }
        lane_errors = {
            lane.name: lane.error
            for lane in all_lanes if lane.error is not None
        }
        extra: Dict = {
            STAT_LANES_FINISHED: len(lane_depths),
            STAT_WINNER_LANE: winner,
            "lane_depths": lane_depths,
            "lane_seconds": lane_seconds,
        }
        if lane_errors:
            extra["lane_errors"] = lane_errors
        run_id = resolve(self.telemetry).run_id
        if run_id is not None:
            # Correlation ID from the run ledger: the final stats join
            # back to the ledger entry even when copied out of context.
            extra["run_id"] = run_id
        return base_stats(
            self.mapper_name,
            seconds=time.perf_counter() - start,
            **hoisted,
            **extra,
        )
