"""ASCII rendering of schedules — how the paper's figures are drawn.

Two views:

* :func:`render_timeline` — one row per physical qubit, one column per
  cycle (``-G-`` computation, ``=S=`` SWAP), the view of Figs. 2(c)/16;
* :func:`render_steps` — one block per cycle showing the logical-qubit
  layout with the operations applied that cycle, the view of
  Figs. 11/12/14.
"""

from __future__ import annotations

from typing import List

from ..core.result import MappingResult


def render_timeline(result: MappingResult, max_cycles: int = 80) -> str:
    """Qubit-by-cycle ASCII timeline of a schedule.

    Args:
        result: The schedule to render.
        max_cycles: Truncate the view after this many cycles.
    """
    width = min(result.depth, max_cycles)
    rows: List[List[str]] = [
        [" . "] * width for _ in range(result.coupling.num_qubits)
    ]
    for op in result.ops:
        if op.start >= max_cycles:
            continue
        mark = "=S=" if op.is_inserted_swap else "-G-"
        for p in op.physical_qubits:
            for t in range(op.start, min(op.end, max_cycles)):
                rows[p][t] = mark
    lines = [f"Q{p:<3}" + "".join(row) for p, row in enumerate(rows)]
    header = "    " + "".join(f"{t % 100:^3}" for t in range(width))
    suffix = "" if result.depth <= max_cycles else f"\n... ({result.depth - max_cycles} more cycles)"
    return header + "\n" + "\n".join(lines) + suffix


def render_steps(result: MappingResult, max_cycles: int = 40) -> str:
    """Step-by-step layout view (the Fig. 11/12/14 presentation).

    Each block shows the cycle number, the logical qubit occupying every
    physical qubit at the *start* of the cycle, and the operations that
    begin that cycle.
    """
    num_physical = result.coupling.num_qubits
    inverse = [-1] * num_physical
    for logical, physical in enumerate(result.initial_mapping):
        inverse[physical] = logical

    events = {}
    for op in result.ops:
        events.setdefault(op.start, []).append(op)
    swap_effects = sorted(
        (op.end, op.physical_qubits)
        for op in result.ops
        if op.name == "swap" and op.is_inserted_swap
    )

    blocks: List[str] = []
    effect_index = 0
    for cycle in sorted(events):
        if cycle >= max_cycles:
            blocks.append(f"... (cycles beyond {max_cycles} omitted)")
            break
        while (
            effect_index < len(swap_effects)
            and swap_effects[effect_index][0] <= cycle
        ):
            p, q = swap_effects[effect_index][1]
            inverse[p], inverse[q] = inverse[q], inverse[p]
            effect_index += 1
        layout = " ".join(
            f"q{inverse[p]}" if inverse[p] >= 0 else "--"
            for p in range(num_physical)
        )
        ops_text = "; ".join(
            ("SWAP" if op.is_inserted_swap else op.name.upper())
            + "("
            + ",".join(f"Q{p}" for p in op.physical_qubits)
            + ")"
            for op in sorted(events[cycle], key=lambda o: o.physical_qubits)
        )
        blocks.append(f"cycle {cycle:>3} | {layout} | {ops_text}")
    return "\n".join(blocks)
