"""Cross-run analytics over the persistent run ledger.

The ledger (:mod:`repro.obs.ledger`) records what happened; this module
answers the questions the recordings exist for:

* :func:`list_runs` / :func:`render_runs_table` — what ran, when, how it
  went (``repro runs list``).
* :func:`render_run` — one run in full: config, fingerprint, stats,
  artifact pointers (``repro runs show``).
* :func:`diff_runs` — two runs counter-by-counter (nodes, prunes by
  rule, warm-cache hits, wall time) with percent deltas.  Deterministic
  search means identical configs must produce *zero* counter deltas —
  any non-zero integer delta between same-fingerprint runs is a
  behaviour change, not noise, which is why counters and timings are
  reported separately (``repro runs diff``).
* :func:`find_regressions` — scan the whole ledger for same-fingerprint
  runs whose ``nodes_expanded`` or nodes/sec drifted beyond a threshold:
  bench-trend-style gating over *all* recorded history rather than the
  curated BENCH_search.json suites (``repro runs regressions``).

Everything here consumes plain index-row dicts, so it works on a ledger
written by any version that kept the row schema — and on synthetic rows
in tests.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

#: Stats keys that are *timings* (or derived rates), never expected to
#: be bit-identical across runs; diffed separately from true counters.
_TIMING_KEYS = frozenset({
    "seconds", "wall_s", "lane_seconds", "queue_wait_s", "run_s",
    "total_seconds", "circuits_per_min", "nodes_per_sec",
})

#: Wall-clock floor below which the nodes/sec regression gate is
#: skipped: timer noise dominates millisecond runs (same convention as
#: ``check_trend`` in :mod:`repro.analysis.diagnose`).
MIN_GATE_SECONDS = 0.1

#: Default drift thresholds for :func:`find_regressions` — a run doing
#: >5% more node expansions, or sustaining <2/3 the throughput, of the
#: best same-fingerprint predecessor is flagged.
DEFAULT_MAX_NODE_RATIO = 1.05
DEFAULT_MIN_RATE_RATIO = 0.67


def list_runs(
    rows: Sequence[Dict],
    kind: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Dict]:
    """Filter/trim ledger run rows (oldest first, as the index stores
    them); ``limit`` keeps the *newest* N."""
    out = [r for r in rows if kind is None or r.get("kind") == kind]
    if limit is not None and limit >= 0:
        out = out[len(out) - min(limit, len(out)):]
    return out


def _fmt_ts(ts) -> str:
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(ts)))


def _headline(row: Dict) -> str:
    """One compact outcome cell: depth/swaps for maps, ok/total for
    batches — whatever the row's stats can support."""
    stats = row.get("stats") or {}
    depth = row.get("depth", stats.get("incumbent_depth"))
    if row.get("kind") == "map" and depth is not None:
        swaps = row.get("swaps")
        return f"depth={depth}" + (f" swaps={swaps}" if swaps is not None else "")
    tasks = stats.get("tasks")
    if tasks is not None:
        return f"ok={stats.get('succeeded', stats.get('ok', 0))}/{tasks}"
    nodes = stats.get("nodes_expanded")
    return f"nodes={nodes}" if nodes is not None else "-"


def render_runs_table(rows: Sequence[Dict]) -> str:
    """Fixed-width listing: one line per run, newest last."""
    header = (
        f"{'run_id':<25} {'kind':<9} {'status':<7} {'started':<19} "
        f"{'wall_s':>8} {'fingerprint':<16} {'outcome'}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row.get('run_id', '-')):<25} "
            f"{str(row.get('kind', '-')):<9} "
            f"{str(row.get('status', '-')):<7} "
            f"{_fmt_ts(row.get('started_ts')):<19} "
            f"{float(row.get('wall_s') or 0.0):>8.2f} "
            f"{str(row.get('fingerprint', '-')):<16} "
            f"{_headline(row)}"
        )
    if len(lines) == 2:
        lines.append("(no runs recorded)")
    return "\n".join(lines)


def render_run(row: Dict) -> str:
    """Full single-run report for ``repro runs show``."""
    lines = [
        f"run_id:      {row.get('run_id')}",
        f"kind:        {row.get('kind')}   status: {row.get('status')}",
        f"started:     {_fmt_ts(row.get('started_ts'))}   "
        f"wall: {float(row.get('wall_s') or 0.0):.3f}s",
        f"fingerprint: {row.get('fingerprint')}",
        f"git_sha:     {row.get('git_sha')}",
        f"host:        python {row.get('python_version')} / "
        f"{row.get('cpu_count')} cpus / {row.get('platform')}",
    ]
    if row.get("error"):
        lines.append(f"error:       {row['error']}")
    config = row.get("config") or {}
    if config:
        lines.append("config:")
        for key in sorted(config):
            lines.append(f"  {key} = {config[key]}")
    stats = row.get("stats") or {}
    if stats:
        lines.append("stats:")
        for key in sorted(stats):
            lines.append(f"  {key} = {stats[key]}")
    artifacts = row.get("artifacts") or {}
    if artifacts:
        lines.append("artifacts:")
        for key in sorted(artifacts):
            lines.append(f"  {key}: {artifacts[key]}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Counter-by-counter diff
# ----------------------------------------------------------------------

def _numeric_stats(row: Dict) -> Dict[str, float]:
    """The diffable slice of a row: numeric stats plus top-level wall
    time (bools and strings — mapper names, budget reasons — excluded)."""
    out: Dict[str, float] = {}
    for key, value in (row.get("stats") or {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[key] = value
    if row.get("wall_s") is not None:
        out["wall_s"] = float(row["wall_s"])
    return out


def diff_runs(row_a: Dict, row_b: Dict) -> Dict:
    """Compare two runs over the union of their numeric stats.

    Returns::

        {
          "fingerprint_match": bool,
          "counters": {key: {"a", "b", "delta", "pct"}},  # integer stats
          "timings":  {key: {"a", "b", "delta", "pct"}},  # float stats
          "counter_deltas": int,   # counters with a non-zero delta
        }

    ``pct`` is relative to run *a* (``None`` when ``a`` is zero and the
    delta is not).  Counter vs timing classification follows the value
    type and :data:`_TIMING_KEYS`, so ``nodes_expanded`` is a counter
    (exactly reproducible; any delta is a finding) while ``seconds`` is
    a timing (always noisy; reported but never counted as a delta).
    """
    stats_a = _numeric_stats(row_a)
    stats_b = _numeric_stats(row_b)
    counters: Dict[str, Dict] = {}
    timings: Dict[str, Dict] = {}
    for key in sorted(set(stats_a) | set(stats_b)):
        a = stats_a.get(key, 0)
        b = stats_b.get(key, 0)
        delta = b - a
        if a:
            pct: Optional[float] = round(100.0 * delta / a, 2)
        else:
            pct = 0.0 if not delta else None
        cell = {"a": a, "b": b, "delta": delta, "pct": pct}
        is_timing = key in _TIMING_KEYS or isinstance(a, float) or isinstance(b, float)
        (timings if is_timing else counters)[key] = cell
    return {
        "fingerprint_match": (
            row_a.get("fingerprint") == row_b.get("fingerprint")
        ),
        "counters": counters,
        "timings": timings,
        "counter_deltas": sum(
            1 for cell in counters.values() if cell["delta"]
        ),
    }


def render_diff(diff: Dict, run_a: str, run_b: str) -> str:
    """Human table for ``repro runs diff``."""
    lines = [f"diff {run_a} -> {run_b}"]
    if not diff["fingerprint_match"]:
        lines.append(
            "warning: config fingerprints differ — deltas below mix "
            "behaviour change with configuration change"
        )
    header = f"{'key':<28} {'a':>14} {'b':>14} {'delta':>12} {'pct':>9}"

    def _rows(cells: Dict[str, Dict]) -> None:
        for key, cell in cells.items():
            pct = "-" if cell["pct"] is None else f"{cell['pct']:+.1f}%"
            if isinstance(cell["a"], float) or isinstance(cell["b"], float):
                a, b = f"{cell['a']:.4f}", f"{cell['b']:.4f}"
                delta = f"{cell['delta']:+.4f}"
            else:
                a, b = str(cell["a"]), str(cell["b"])
                delta = f"{cell['delta']:+d}"
            lines.append(
                f"{key:<28} {a:>14} {b:>14} {delta:>12} {pct:>9}"
            )

    if diff["counters"]:
        lines.append("counters (deterministic — any delta is a finding):")
        lines.append(header)
        _rows(diff["counters"])
    if diff["timings"]:
        lines.append("timings (noisy — informational):")
        lines.append(header)
        _rows(diff["timings"])
    lines.append(
        f"{diff['counter_deltas']} counter delta(s)"
        + ("" if diff["counter_deltas"] else " — runs are counter-identical")
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Ledger-wide regression scan
# ----------------------------------------------------------------------

def _nodes(row: Dict) -> Optional[int]:
    stats = row.get("stats") or {}
    value = stats.get("nodes_expanded", stats.get("total_nodes_expanded"))
    return int(value) if isinstance(value, (int, float)) else None


def _seconds(row: Dict) -> Optional[float]:
    stats = row.get("stats") or {}
    value = stats.get("seconds", stats.get("total_seconds"))
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        value = row.get("wall_s")
    return float(value) if isinstance(value, (int, float)) else None


def find_regressions(
    rows: Sequence[Dict],
    max_node_ratio: float = DEFAULT_MAX_NODE_RATIO,
    min_rate_ratio: float = DEFAULT_MIN_RATE_RATIO,
    min_gate_seconds: float = MIN_GATE_SECONDS,
) -> List[Dict]:
    """Flag same-fingerprint runs that drifted past the thresholds.

    Runs are grouped by config fingerprint; within each group (in
    recorded order) every run is compared against the **best prior** run
    of that group:

    * ``nodes_expanded`` ratio above ``max_node_ratio`` — the search did
      more work for the same problem.  Node counts are deterministic, so
      this gate has no noise floor and is the primary signal.
    * nodes/sec below ``min_rate_ratio`` × the best prior rate — same
      work, slower machine-side.  Skipped when either run is shorter
      than ``min_gate_seconds`` (timer noise dominates millisecond
      runs, the same convention as ``bench-trend --check``).

    Only ``status == "ok"`` runs participate (a budget-tripped run's
    counters measure the budget, not the search).  Returns one finding
    dict per flagged run; identical repeat runs produce none.
    """
    findings: List[Dict] = []
    groups: Dict[str, List[Dict]] = {}
    for row in rows:
        if row.get("status") != "ok":
            continue
        fp = row.get("fingerprint")
        if fp:
            groups.setdefault(fp, []).append(row)
    for fp, group in groups.items():
        if len(group) < 2:
            continue
        best_nodes: Optional[int] = None
        best_rate: Optional[float] = None
        best_rate_run: Optional[str] = None
        best_nodes_run: Optional[str] = None
        for row in group:
            nodes = _nodes(row)
            seconds = _seconds(row)
            rate = (
                nodes / seconds
                if nodes is not None and seconds and seconds > 0
                else None
            )
            if nodes is not None and best_nodes is not None:
                ratio = nodes / best_nodes if best_nodes else float("inf")
                if best_nodes and ratio > max_node_ratio:
                    findings.append({
                        "run_id": row.get("run_id"),
                        "fingerprint": fp,
                        "kind": row.get("kind"),
                        "metric": "nodes_expanded",
                        "value": nodes,
                        "baseline": best_nodes,
                        "baseline_run": best_nodes_run,
                        "ratio": round(ratio, 4),
                        "threshold": max_node_ratio,
                    })
            if (
                rate is not None
                and best_rate is not None
                and seconds is not None
                and seconds >= min_gate_seconds
                and rate < min_rate_ratio * best_rate
            ):
                findings.append({
                    "run_id": row.get("run_id"),
                    "fingerprint": fp,
                    "kind": row.get("kind"),
                    "metric": "nodes_per_sec",
                    "value": round(rate, 2),
                    "baseline": round(best_rate, 2),
                    "baseline_run": best_rate_run,
                    "ratio": round(rate / best_rate, 4),
                    "threshold": min_rate_ratio,
                })
            if nodes is not None and (best_nodes is None or nodes < best_nodes):
                best_nodes = nodes
                best_nodes_run = row.get("run_id")
            if rate is not None and seconds is not None \
                    and seconds >= min_gate_seconds \
                    and (best_rate is None or rate > best_rate):
                best_rate = rate
                best_rate_run = row.get("run_id")
    return findings


def render_regressions(
    findings: Sequence[Dict],
    scanned: int,
    groups: Optional[int] = None,
) -> str:
    """Human report for ``repro runs regressions``."""
    if not findings:
        suffix = f" across {groups} fingerprint group(s)" if groups else ""
        return f"no regressions in {scanned} run(s){suffix}"
    lines = [f"{len(findings)} regression(s) in {scanned} run(s):"]
    for f in findings:
        lines.append(
            f"  {f['run_id']} [{f['fingerprint']}] {f['metric']}: "
            f"{f['value']} vs baseline {f['baseline']} "
            f"({f['baseline_run']}) — ratio {f['ratio']} "
            f"breaches {f['threshold']}"
        )
    return "\n".join(lines)


def fingerprint_groups(rows: Sequence[Dict]) -> int:
    """How many distinct fingerprints have 2+ ok runs (scannable groups)."""
    counts: Dict[str, int] = {}
    for row in rows:
        if row.get("status") == "ok" and row.get("fingerprint"):
            counts[row["fingerprint"]] = counts.get(row["fingerprint"], 0) + 1
    return sum(1 for n in counts.values() if n >= 2)


def diff_pair(rows: Sequence[Dict], run_a: Dict, run_b: Dict) -> Tuple[Dict, str]:
    """Convenience: diff two resolved rows and render in one call."""
    diff = diff_runs(run_a, run_b)
    return diff, render_diff(
        diff, str(run_a.get("run_id")), str(run_b.get("run_id"))
    )
