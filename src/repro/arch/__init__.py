"""Hardware coupling graphs and the paper's architecture library."""

from .coupling import CouplingGraph, find_swap_free_mapping
from .library import (
    architecture_names,
    by_name,
    fully_connected,
    grid,
    grid2by3,
    grid2by4,
    grid_index,
    ibm_melbourne,
    ibm_qx2,
    ibm_tokyo,
    lnn,
    rigetti_aspen4,
)

__all__ = [
    "CouplingGraph",
    "find_swap_free_mapping",
    "lnn",
    "grid",
    "grid_index",
    "grid2by3",
    "grid2by4",
    "fully_connected",
    "ibm_qx2",
    "ibm_tokyo",
    "ibm_melbourne",
    "rigetti_aspen4",
    "by_name",
    "architecture_names",
]
