"""Hardware coupling graphs.

A coupling graph (Fig. 1a / Fig. 3 of the paper) lists which physical qubit
pairs support direct two-qubit interactions.  The mapper only needs adjacency
tests, neighbor lists, all-pairs shortest-path distances (for the heuristic's
``d(a, b)``), and the longest-simple-path bound used to cap the free initial
SWAP prefix (Section 5.3).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import networkx as nx


class CouplingGraph:
    """An undirected bounded-degree graph over physical qubits ``0..n-1``.

    Args:
        num_qubits: Number of physical qubits.
        edges: Iterable of undirected edges ``(p, q)``.
        name: Optional architecture label for reports.
    """

    def __init__(
        self,
        num_qubits: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "",
    ) -> None:
        if num_qubits < 1:
            raise ValueError("architecture needs at least one physical qubit")
        self.num_qubits = num_qubits
        self.name = name
        edge_set = set()
        for p, q in edges:
            if p == q:
                raise ValueError(f"self-loop on physical qubit {p}")
            if not (0 <= p < num_qubits and 0 <= q < num_qubits):
                raise ValueError(f"edge ({p}, {q}) outside 0..{num_qubits - 1}")
            edge_set.add((min(p, q), max(p, q)))
        self.edges: Tuple[Tuple[int, int], ...] = tuple(sorted(edge_set))
        self._adjacent: FrozenSet[Tuple[int, int]] = frozenset(
            pair for edge in self.edges for pair in (edge, edge[::-1])
        )
        self._neighbors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(q for p2, q in self._adjacent if p2 == p))
            for p in range(num_qubits)
        )
        self._distance = self._all_pairs_distances()
        if num_qubits > 1 and any(
            d >= num_qubits for row in self._distance for d in row
        ):
            raise ValueError("coupling graph must be connected")

    def _all_pairs_distances(self) -> List[List[int]]:
        """BFS from every qubit; unreachable pairs get ``num_qubits``."""
        n = self.num_qubits
        dist = [[n] * n for _ in range(n)]
        for source in range(n):
            row = dist[source]
            row[source] = 0
            queue = deque([source])
            while queue:
                p = queue.popleft()
                for q in self._neighbors[p]:
                    if row[q] == n:
                        row[q] = row[p] + 1
                        queue.append(q)
        return dist

    # ------------------------------------------------------------------
    def are_adjacent(self, p: int, q: int) -> bool:
        """True if physical qubits ``p`` and ``q`` share a link."""
        return (p, q) in self._adjacent

    def neighbors(self, p: int) -> Tuple[int, ...]:
        """Physical qubits directly linked to ``p``."""
        return self._neighbors[p]

    def distance(self, p: int, q: int) -> int:
        """Shortest-path distance (number of links) between ``p`` and ``q``."""
        return self._distance[p][q]

    @property
    def distance_matrix(self) -> List[List[int]]:
        """The full all-pairs shortest-path matrix (do not mutate)."""
        return self._distance

    @property
    def diameter(self) -> int:
        """Largest shortest-path distance between any two qubits."""
        return max(max(row) for row in self._distance)

    def longest_simple_path_bound(self) -> int:
        """Upper bound on the longest simple path between any two qubits.

        Section 5.3 caps the free initial-mapping SWAP prefix at ``d`` =
        the maximum-length simple path in the architecture.  Computing it
        exactly is NP-hard in general, so for graphs beyond a size cutoff
        we return the trivially safe bound ``num_qubits - 1``; for the
        small architectures the optimal mapper targets we compute it
        exactly with a DFS.
        """
        n = self.num_qubits
        if n > 12:
            return n - 1
        best = 0
        adjacency = self._neighbors

        def extend(path_last: int, visited: int, length: int) -> None:
            nonlocal best
            best = max(best, length)
            for q in adjacency[path_last]:
                bit = 1 << q
                if not visited & bit:
                    extend(q, visited | bit, length + 1)

        for start in range(n):
            extend(start, 1 << start, 0)
        return best

    def to_networkx(self) -> "nx.Graph":
        """The coupling graph as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.edges)
        return graph

    def automorphisms(
        self, max_qubits: int = 12, max_count: int = 64
    ) -> Tuple[Tuple[int, ...], ...]:
        """Edge-preserving permutations of the physical qubits.

        Each returned tuple ``pi`` maps qubit ``p`` to ``pi[p]``; the
        identity always comes first.  Mode 2 of the optimal search uses
        these to quotient its initial-mapping space: two mappings related
        by an automorphism root isomorphic subtrees with equal optimal
        depth (latencies are per-gate, never per-position), so only one
        representative needs searching.

        Beyond ``max_qubits`` qubits (or past ``max_count`` permutations)
        enumeration stops early and a *subset* of the automorphism group
        is returned — canonicalization over any subset containing the
        identity is still sound, merely less reductive, because a
        collision under ``min`` over the subset exhibits a concrete
        automorphism between the two mappings.  The result is cached.
        """
        cached = getattr(self, "_automorphisms", None)
        if cached is not None:
            return cached
        identity = tuple(range(self.num_qubits))
        perms: List[Tuple[int, ...]] = [identity]
        if 1 < self.num_qubits <= max_qubits:
            host = self.to_networkx()
            matcher = nx.algorithms.isomorphism.GraphMatcher(host, host)
            for mapping in matcher.isomorphisms_iter():
                pi = tuple(mapping[p] for p in range(self.num_qubits))
                if pi != identity:
                    perms.append(pi)
                if len(perms) >= max_count:
                    break
        result = tuple(perms)
        self._automorphisms = result
        return result

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CouplingGraph{label}: {self.num_qubits} qubits, "
            f"{len(self.edges)} edges>"
        )


def find_swap_free_mapping(
    interaction_edges: Sequence[Tuple[int, int]],
    coupling: CouplingGraph,
    num_logical: int,
) -> "Dict[int, int] | None":
    """Find a logical→physical assignment satisfying *all* interactions.

    This is the fast path the paper uses before Table 2 runs: "we first
    tried to find an initial mapping that could satisfy all CNOTs in the
    circuit without swaps".  It is a subgraph-monomorphism query: embed
    the circuit's interaction graph into the coupling graph.

    Args:
        interaction_edges: Distinct logical-qubit pairs that interact.
        coupling: The hardware graph.
        num_logical: Number of logical qubits (isolated ones allowed).

    Returns:
        A dict mapping every logical qubit to a distinct physical qubit,
        or ``None`` if no swap-free mapping exists.
    """
    if num_logical > coupling.num_qubits:
        return None
    pattern = nx.Graph()
    pattern.add_nodes_from(range(num_logical))
    pattern.add_edges_from(interaction_edges)
    host = coupling.to_networkx()
    matcher = nx.algorithms.isomorphism.GraphMatcher(host, pattern)
    for mapping in matcher.subgraph_monomorphisms_iter():
        # networkx yields host→pattern; invert to logical→physical.
        inverted = {logical: physical for physical, logical in mapping.items()}
        used = set(inverted.values())
        spare = [p for p in range(coupling.num_qubits) if p not in used]
        for logical in range(num_logical):
            if logical not in inverted:
                inverted[logical] = spare.pop()
        return inverted
    return None
