"""The architectures used in the paper's evaluation.

All are reconstructed from their published edge lists:

* ``lnn(n)`` — linear nearest neighbor (Sections 3, 6.1.1, Fig. 2a).
* ``grid(rows, cols)`` — rectangular lattice; ``grid(2, N)`` is the paper's
  2×N architecture (Fig. 3).  ``grid2by3`` / ``grid2by4`` are the Table-2
  instances.
* ``ibm_qx2()`` — IBM QX2 "bowtie" (Table 1).
* ``ibm_tokyo()`` — IBM Q20 Tokyo (Table 3).
* ``rigetti_aspen4()`` — the 16-qubit two-octagon Aspen-4 (Table 2).
* ``ibm_melbourne()`` — the 2×7-grid-like Melbourne device (Fig. 3).
* ``fully_connected(n)`` — the ideal architecture (for ideal cycle counts).
"""

from __future__ import annotations

from typing import Tuple

from .coupling import CouplingGraph


def lnn(num_qubits: int) -> CouplingGraph:
    """Linear nearest-neighbor chain of ``num_qubits`` physical qubits."""
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    return CouplingGraph(num_qubits, edges, name=f"lnn-{num_qubits}")


def grid(rows: int, cols: int) -> CouplingGraph:
    """A ``rows × cols`` lattice.

    Physical index of the qubit at row ``i``, column ``j`` is
    ``rows * j + i`` (column-major), matching the paper's initial placement
    ``q_{2j+i} → Q_{i,j}`` for the 2×N QFT analysis.
    """
    edges = []
    for j in range(cols):
        for i in range(rows):
            p = rows * j + i
            if i + 1 < rows:
                edges.append((p, p + 1))
            if j + 1 < cols:
                edges.append((p, p + rows))
    return CouplingGraph(rows * cols, edges, name=f"grid-{rows}x{cols}")


def grid_index(rows: int, i: int, j: int) -> int:
    """Physical index of grid position (row ``i``, column ``j``)."""
    return rows * j + i


def grid2by3() -> CouplingGraph:
    """The Table-2 ``grid2by3`` architecture."""
    g = grid(2, 3)
    g.name = "grid2by3"
    return g


def grid2by4() -> CouplingGraph:
    """The Table-2 ``grid2by4`` architecture."""
    g = grid(2, 4)
    g.name = "grid2by4"
    return g


def fully_connected(num_qubits: int) -> CouplingGraph:
    """The ideal all-to-all architecture (defines the *ideal cycle*)."""
    edges = [
        (p, q) for p in range(num_qubits) for q in range(p + 1, num_qubits)
    ]
    return CouplingGraph(num_qubits, edges, name=f"full-{num_qubits}")


def ibm_qx2() -> CouplingGraph:
    """IBM QX2 (Yorktown): 5 qubits in a bowtie, used in Table 1."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]
    return CouplingGraph(5, edges, name="ibmqx2")


def ibm_tokyo() -> CouplingGraph:
    """IBM Q20 Tokyo: 4×5 lattice with alternating diagonals (Table 3)."""
    edges = []
    for row in range(4):
        for col in range(5):
            p = 5 * row + col
            if col + 1 < 5:
                edges.append((p, p + 1))
            if row + 1 < 4:
                edges.append((p, p + 5))
    edges += [
        (1, 7), (2, 6), (3, 9), (4, 8),
        (5, 11), (6, 10), (7, 13), (8, 12),
        (11, 17), (12, 16), (13, 19), (14, 18),
    ]
    return CouplingGraph(20, edges, name="ibm-q20-tokyo")


def ibm_melbourne(columns: int = 7) -> CouplingGraph:
    """Melbourne-style 2×N ladder (the paper's Fig. 3 example)."""
    g = grid(2, columns)
    g.name = f"melbourne-2x{columns}"
    return g


def rigetti_aspen4() -> CouplingGraph:
    """Rigetti Aspen-4: two octagon rings joined by two links (Table 2)."""
    edges = []
    for base in (0, 8):
        edges += [(base + k, base + (k + 1) % 8) for k in range(8)]
    edges += [(1, 14), (2, 13)]
    return CouplingGraph(16, edges, name="aspen-4")


_BY_NAME = {
    "ibmqx2": ibm_qx2,
    "grid2by3": grid2by3,
    "grid2by4": grid2by4,
    "aspen-4": rigetti_aspen4,
    "ibm-q20-tokyo": ibm_tokyo,
    "tokyo": ibm_tokyo,
    "melbourne": ibm_melbourne,
}


def by_name(name: str) -> CouplingGraph:
    """Look up an architecture by the name used in the paper's tables.

    Also accepts ``lnn-N``, ``gridRxC`` and ``full-N`` parametric names.
    """
    key = name.lower()
    if key in _BY_NAME:
        return _BY_NAME[key]()
    if key.startswith("lnn-"):
        return lnn(int(key.split("-", 1)[1]))
    if key.startswith("full-"):
        return fully_connected(int(key.split("-", 1)[1]))
    if key.startswith("grid") and "x" in key:
        dims = key[4:].lstrip("-")
        rows, cols = dims.split("x")
        return grid(int(rows), int(cols))
    raise KeyError(f"unknown architecture {name!r}")


def architecture_names() -> Tuple[str, ...]:
    """Names accepted by :func:`by_name` (fixed architectures only)."""
    return tuple(sorted(_BY_NAME))
