"""Baseline mappers the paper compares against (Tables 2 and 3)."""

from .olsq_style import OlsqStyleMapper
from .sabre import SabreMapper
from .trivial import TrivialMapper
from .zulehner import ZulehnerMapper

__all__ = [
    "SabreMapper",
    "ZulehnerMapper",
    "OlsqStyleMapper",
    "TrivialMapper",
]
