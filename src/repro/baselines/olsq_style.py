"""OLSQ-style exact baseline (Tan & Cong, ICCAD 2020) for the Table 2 comparison.

OLSQ formulates depth-optimal layout synthesis as a constraint-satisfaction
problem: variables give each gate a time coordinate and each qubit a mapping
per time step; the solver is asked for a solution within a depth bound ``T``
that starts at the DAG's weighted longest path and grows until satisfiable.

The original uses an SMT solver (z3), which is unavailable offline, so this
baseline executes the *same formulation* — exhaustive exploration of the
transition model under an iteratively-deepened depth bound, with no
distance-aware guidance (the search is bounded only by the remaining
critical path, which is exactly the information OLSQ's encoding exposes to
its solver) and no comparative filtering.  Like OLSQ it is exact; like OLSQ
its runtime blows up with the gap between the ideal and optimal depth —
which is the Table 2 shape the paper reports (TOQM 9–1500× faster at equal
depths).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel
from ..core.astar import OptimalMapper, SearchBudgetExceeded
from ..core.result import MappingResult
from ..obs.schema import MAPPER_OLSQ_STYLE, STAT_MAPPER
from ..obs.telemetry import Telemetry


class OlsqStyleMapper:
    """Depth-bounded exact solver in the style of OLSQ.

    Args:
        coupling: Target architecture.
        latency: Latency model (Table 2 uses 1-cycle gates, 3-cycle SWAPs).
        search_initial_mapping: Solve for the initial mapping too (OLSQ
            always does; disable to fix it for controlled experiments).
        max_nodes: Node budget per depth bound before giving up.
        max_seconds: Wall-clock budget for the whole solve.
        telemetry: Optional observability context, forwarded to the inner
            exact search (spans/metrics/events carry this mapper's name
            in the result stats).
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_OLSQ_STYLE

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        search_initial_mapping: bool = True,
        max_nodes: Optional[int] = None,
        max_seconds: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency
        self.search_initial_mapping = search_initial_mapping
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.telemetry = telemetry

    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Solve for a depth-optimal transformed circuit, OLSQ-style.

        Args:
            circuit: Logical circuit.
            initial_mapping: Fix the initial mapping (mode used only for
                controlled comparisons; OLSQ normally chooses it).

        Returns:
            A provably depth-optimal :class:`MappingResult` whose stats are
            labelled ``mapper == "olsq-style"``.

        Raises:
            SearchBudgetExceeded: If the budget runs out first (its
                ``partial_stats`` are relabelled to this mapper).
        """
        inner = OptimalMapper(
            self.coupling,
            latency=self.latency,
            search_initial_mapping=self.search_initial_mapping,
            # OLSQ has no subgraph-isomorphism shortcut — the initial
            # mapping is just more variables in the encoding — so the
            # stand-in must not use TOQM's embedding fast path either.
            try_swap_free_fast_path=False,
            max_nodes=self.max_nodes,
            max_seconds=self.max_seconds,
            informed=False,  # critical-path bound only, like the encoding
            dominance=False,  # plain CSP enumeration: no comparative filter
            telemetry=self.telemetry,
        )
        try:
            result = inner.map(circuit, initial_mapping=initial_mapping)
        except SearchBudgetExceeded as exc:
            if exc.partial_stats:
                exc.partial_stats[STAT_MAPPER] = self.mapper_name
            raise
        result.stats[STAT_MAPPER] = self.mapper_name
        return result
