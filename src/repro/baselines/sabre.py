"""SABRE qubit mapper (Li, Ding, Xie — ASPLOS 2019), a Table-3 baseline.

A faithful reimplementation of the SWAP-based bidirectional heuristic
search: a front layer of unresolved two-qubit gates, a distance-sum cost
over the front layer plus a weighted *extended set* look-ahead, a decay
factor discouraging repeated movement of the same qubit, and the
forward–backward–forward traversal that refines the initial mapping.

The routed gate sequence is converted to cycles with the same ASAP
scheduler used for every mapper, so the comparison against TOQM's
practical mode matches the paper's Table 3 protocol.
"""

from __future__ import annotations

import random
import time as _time
from typing import List, Optional, Sequence, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.dag import DependencyGraph
from ..circuit.latency import LatencyModel, uniform_latency
from ..core.result import MappingResult
from ..obs.events import SearchProgressEvent
from ..obs.schema import MAPPER_SABRE, base_stats
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracer import SPAN_SEARCH
from ..verify.scheduler import result_from_routed_ops


class SabreMapper:
    """SABRE heuristic router.

    Args:
        coupling: Target architecture.
        latency: Latency model used when converting to cycles.
        extended_set_size: Look-ahead window size (paper uses ~20).
        extended_set_weight: Weight ``W`` of the look-ahead term.
        decay_delta: Decay increment per SWAP on a qubit.
        decay_reset_interval: SWAPs between decay resets.
        seed: Seed for the random initial mapping.
        passes: Number of traversal passes for initial-mapping refinement;
            3 reproduces the original forward–backward–forward scheme.
        telemetry: Optional observability context.  SABRE has no node
            expansion in the A* sense; the normalized counters map
            ``nodes_expanded`` to SWAP decisions taken and
            ``nodes_generated`` to candidate SWAPs scored.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_SABRE

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        decay_reset_interval: int = 5,
        seed: int = 0,
        passes: int = 3,
        telemetry: Optional[Telemetry] = None,
        shared_incumbent=None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.extended_set_size = extended_set_size
        self.extended_set_weight = extended_set_weight
        self.decay_delta = decay_delta
        self.decay_reset_interval = decay_reset_interval
        self.seed = seed
        self.passes = passes
        self.telemetry = telemetry
        #: Optional cross-lane incumbent (``SharedBound``-like object with
        #: an ``offer(depth)`` method); every finished routing publishes
        #: its depth so a racing exact search can tighten its pruning.
        self.shared_incumbent = shared_incumbent

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Route ``circuit`` and return a cycle-accurate result.

        Args:
            circuit: Logical circuit.
            initial_mapping: Optional starting mapping; otherwise a seeded
                random mapping refined by bidirectional passes is used.
        """
        tele = resolve(self.telemetry)
        start_clock = _time.perf_counter()
        counters = {"expanded": 0, "generated": 0}
        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=circuit.name or "<unnamed>",
            gates=len(circuit),
            arch=self.coupling.name,
        ):
            if initial_mapping is None:
                rng = random.Random(self.seed)
                physical = list(range(self.coupling.num_qubits))
                rng.shuffle(physical)
                mapping = physical[: circuit.num_qubits]
                reverse = circuit.reversed()
                for traversal in range(max(0, self.passes - 1)):
                    target = reverse if traversal % 2 == 0 else circuit
                    with tele.tracer.span("pass", index=traversal):
                        _, final = self._route(
                            target, mapping, tele, counters, start_clock
                        )
                    mapping = list(final)
            else:
                mapping = list(initial_mapping)

            with tele.tracer.span("pass", index="final"):
                routed, _final = self._route(
                    circuit, mapping, tele, counters, start_clock
                )
        if tele.enabled:
            tele.emit_metrics_snapshot(label="search_complete")
        result = result_from_routed_ops(
            circuit,
            self.coupling,
            self.latency,
            mapping,
            routed,
            stats=base_stats(
                self.mapper_name,
                nodes_expanded=counters["expanded"],
                nodes_generated=counters["generated"],
                seconds=_time.perf_counter() - start_clock,
                passes=self.passes,
            ),
        )
        if self.shared_incumbent is not None:
            self.shared_incumbent.offer(result.depth)
        return result

    # ------------------------------------------------------------------
    def _route(
        self,
        circuit: Circuit,
        initial_mapping: Sequence[int],
        tele: Optional[Telemetry] = None,
        counters: Optional[dict] = None,
        start_clock: float = 0.0,
    ) -> Tuple[List, Tuple[int, ...]]:
        """One SABRE traversal; returns (routed ops, final mapping)."""
        tele = resolve(tele)
        counters = counters if counters is not None else {
            "expanded": 0, "generated": 0,
        }
        if tele.enabled:
            m_expanded = tele.metrics.counter("search.nodes_expanded")
            m_generated = tele.metrics.counter("search.nodes_generated")
        dag = DependencyGraph(circuit)
        num_physical = self.coupling.num_qubits
        dist = self.coupling.distance_matrix

        pos: List[int] = list(initial_mapping)
        inv: List[int] = [-1] * num_physical
        for logical, physical in enumerate(pos):
            inv[physical] = logical

        unresolved_preds = [len(p) for p in dag.preds]
        front: Set[int] = {i for i, n in enumerate(unresolved_preds) if n == 0}
        routed: List = []
        decay = [1.0] * num_physical
        swaps_since_reset = 0

        def execute(gate_index: int) -> None:
            gate = circuit[gate_index]
            routed.append(
                ("g", gate_index, tuple(pos[q] for q in gate.qubits))
            )
            front.discard(gate_index)
            for succ in dag.succs[gate_index]:
                unresolved_preds[succ] -= 1
                if unresolved_preds[succ] == 0:
                    front.add(succ)

        def executable_now() -> List[int]:
            ready = []
            for gate_index in front:
                gate = circuit[gate_index]
                if len(gate.qubits) == 1:
                    ready.append(gate_index)
                else:
                    p1, p2 = (pos[q] for q in gate.qubits)
                    if dist[p1][p2] == 1:
                        ready.append(gate_index)
            return sorted(ready)

        def extended_set() -> List[int]:
            layer = sorted(front)
            out: List[int] = []
            while layer and len(out) < self.extended_set_size:
                nxt: List[int] = []
                for gate_index in layer:
                    for succ in dag.succs[gate_index]:
                        if len(out) < self.extended_set_size:
                            out.append(succ)
                            nxt.append(succ)
                layer = nxt
            return out

        def score(swap: Tuple[int, int]) -> float:
            p, q = swap
            trial = dict()
            lp, lq = inv[p], inv[q]
            if lp >= 0:
                trial[lp] = q
            if lq >= 0:
                trial[lq] = p

            def where(logical: int) -> int:
                return trial.get(logical, pos[logical])

            front_2q = [
                g for g in front if len(circuit[g].qubits) == 2
            ]
            base = sum(
                dist[where(circuit[g].qubits[0])][where(circuit[g].qubits[1])]
                for g in front_2q
            ) / max(1, len(front_2q))
            ext = extended_set()
            ext_2q = [g for g in ext if len(circuit[g].qubits) == 2]
            look = 0.0
            if ext_2q:
                look = sum(
                    dist[where(circuit[g].qubits[0])][where(circuit[g].qubits[1])]
                    for g in ext_2q
                ) / len(ext_2q)
            return max(decay[p], decay[q]) * (
                base + self.extended_set_weight * look
            )

        stall_guard = 0
        while front:
            ready = executable_now()
            if ready:
                for gate_index in ready:
                    execute(gate_index)
                decay = [1.0] * num_physical
                stall_guard = 0
                continue

            # Blocked: choose the best-scoring SWAP near the front layer.
            candidate_edges: Set[Tuple[int, int]] = set()
            for gate_index in front:
                for logical in circuit[gate_index].qubits:
                    p = pos[logical]
                    for neighbor in self.coupling.neighbors(p):
                        candidate_edges.add((min(p, neighbor), max(p, neighbor)))
            best = min(sorted(candidate_edges), key=score)
            counters["expanded"] += 1
            counters["generated"] += len(candidate_edges)
            if tele.enabled:
                m_expanded.inc()
                m_generated.inc(len(candidate_edges))
                if counters["expanded"] % tele.progress_every == 0:
                    tele.publish_progress(
                        SearchProgressEvent(
                            mapper="sabre",
                            phase="search",
                            nodes_expanded=counters["expanded"],
                            nodes_generated=counters["generated"],
                            heap_size=len(front),
                            best_f=0,
                            elapsed_seconds=(
                                _time.perf_counter() - start_clock
                            ),
                            extra={"routed_ops": len(routed)},
                        )
                    )
            p, q = best
            routed.append(("s", p, q))
            lp, lq = inv[p], inv[q]
            inv[p], inv[q] = lq, lp
            if lp >= 0:
                pos[lp] = q
            if lq >= 0:
                pos[lq] = p
            decay[p] += self.decay_delta
            decay[q] += self.decay_delta
            swaps_since_reset += 1
            if swaps_since_reset >= self.decay_reset_interval:
                decay = [1.0] * num_physical
                swaps_since_reset = 0
            stall_guard += 1
            if stall_guard > 10 * self.coupling.num_qubits ** 2:
                raise RuntimeError("SABRE live-locked; decay too weak")
        return routed, tuple(pos)
