"""Naive shortest-path router — a floor baseline and test oracle.

Processes gates in program order; whenever a two-qubit gate's operands are
not adjacent, SWAPs one operand along a shortest path until they are.  No
look-ahead, no parallelism awareness.  Every real mapper should beat it,
which the integration tests assert.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency
from ..core.result import MappingResult
from ..obs.schema import MAPPER_TRIVIAL, base_stats
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracer import SPAN_SEARCH
from ..verify.scheduler import result_from_routed_ops


class TrivialMapper:
    """Shortest-path SWAP insertion with no optimization.

    Args:
        coupling: Target architecture.
        latency: Latency model for the cycle conversion.
        telemetry: Optional observability context.  There is no search;
            the normalized counters map ``nodes_expanded`` to gates
            processed and ``nodes_generated`` to SWAPs inserted.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_TRIVIAL

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.telemetry = telemetry

    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Route ``circuit`` gate by gate.

        Args:
            circuit: Logical circuit.
            initial_mapping: Starting mapping (identity when omitted).
        """
        tele = resolve(self.telemetry)
        start_clock = _time.perf_counter()
        if initial_mapping is None:
            initial_mapping = list(range(circuit.num_qubits))
        pos = list(initial_mapping)
        inv: List[int] = [-1] * self.coupling.num_qubits
        for logical, physical in enumerate(pos):
            inv[physical] = logical
        dist = self.coupling.distance_matrix
        routed: List = []
        swaps = 0

        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=circuit.name or "<unnamed>",
            gates=len(circuit),
            arch=self.coupling.name,
        ):
            for index, gate in enumerate(circuit):
                if gate.is_two_qubit:
                    a, b = gate.qubits
                    while dist[pos[a]][pos[b]] > 1:
                        p = pos[a]
                        step = min(
                            self.coupling.neighbors(p),
                            key=lambda r: dist[r][pos[b]],
                        )
                        routed.append(("s", min(p, step), max(p, step)))
                        swaps += 1
                        other = inv[step]
                        inv[p], inv[step] = other, a
                        pos[a] = step
                        if other >= 0:
                            pos[other] = p
                routed.append(("g", index, tuple(pos[q] for q in gate.qubits)))
        if tele.enabled:
            tele.metrics.counter("search.nodes_expanded").inc(len(circuit))
            tele.metrics.counter("search.nodes_generated").inc(swaps)
            tele.emit_metrics_snapshot(label="search_complete")

        return result_from_routed_ops(
            circuit,
            self.coupling,
            self.latency,
            initial_mapping,
            routed,
            stats=base_stats(
                self.mapper_name,
                nodes_expanded=len(circuit),
                nodes_generated=swaps,
                seconds=_time.perf_counter() - start_clock,
                swaps=swaps,
            ),
        )
