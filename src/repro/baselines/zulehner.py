"""Layered A* mapper after Zulehner, Paler & Wille (DATE 2018) — Table 3 baseline.

The circuit is partitioned into layers of concurrently-executable gates;
for each layer an A* search over mappings finds a minimal sequence of SWAPs
making every two-qubit gate in the layer coupling-compliant, with a small
look-ahead bonus toward the next layer for tie-breaking.  This is the
*gate-optimal, layer-local* strategy the paper contrasts with time-optimal
mapping: it minimizes inserted SWAPs per layer but is oblivious to the
overall circuit depth.

Candidate SWAPs are restricted to edges touching qubits active in the
current layer (as in the original implementation) and a node budget guards
against pathological layers; when it trips, the layer's gates are routed
and emitted one at a time along shortest paths.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency
from ..core.result import MappingResult
from ..obs.events import SearchProgressEvent
from ..obs.schema import MAPPER_ZULEHNER, base_stats
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracer import SPAN_SEARCH
from ..verify.scheduler import result_from_routed_ops


class ZulehnerMapper:
    """Layer-by-layer A* SWAP minimizer.

    Args:
        coupling: Target architecture.
        latency: Latency model for the cycle conversion.
        lookahead_weight: Weight of the next layer in the layer cost.
        max_nodes_per_layer: A* budget per layer before falling back to
            sequential per-gate shortest-path routing.
        telemetry: Optional observability context.  Normalized counters
            aggregate the per-layer A* searches: ``nodes_expanded`` /
            ``nodes_generated`` sum mapping states expanded/pushed across
            all layers.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_ZULEHNER

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        lookahead_weight: float = 0.3,
        max_nodes_per_layer: int = 20000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.lookahead_weight = lookahead_weight
        self.max_nodes_per_layer = max_nodes_per_layer
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Route ``circuit`` layer by layer.

        Args:
            circuit: Logical circuit.
            initial_mapping: Starting mapping (identity when omitted — the
                original tool similarly starts from a fixed assignment).
        """
        tele = resolve(self.telemetry)
        start_clock = _time.perf_counter()
        if initial_mapping is None:
            initial_mapping = list(range(circuit.num_qubits))
        pos = list(initial_mapping)
        inv = [-1] * self.coupling.num_qubits
        for logical, physical in enumerate(pos):
            inv[physical] = logical

        layers = circuit.parallel_layers()
        routed: List = []
        total_layer_swaps = 0
        counters = {"expanded": 0, "generated": 0, "fallback_layers": 0}
        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=circuit.name or "<unnamed>",
            gates=len(circuit),
            arch=self.coupling.name,
            layers=len(layers),
        ):
            for layer_index, layer in enumerate(layers):
                two_qubit_pairs = [
                    circuit[g].qubits for g in layer if circuit[g].is_two_qubit
                ]
                next_pairs: List[Tuple[int, int]] = []
                if layer_index + 1 < len(layers):
                    next_pairs = [
                        circuit[g].qubits
                        for g in layers[layer_index + 1]
                        if circuit[g].is_two_qubit
                    ]
                with tele.tracer.span(
                    "layer", index=layer_index, pairs=len(two_qubit_pairs)
                ):
                    swaps = (
                        self._solve_layer(
                            pos, two_qubit_pairs, next_pairs, counters
                        )
                        if two_qubit_pairs
                        else []
                    )
                if swaps is not None:
                    total_layer_swaps += len(swaps)
                    for p, q in swaps:
                        routed.append(("s", p, q))
                        self._apply_swap(pos, inv, p, q)
                    for g in sorted(layer):
                        gate = circuit[g]
                        routed.append(
                            ("g", g, tuple(pos[q] for q in gate.qubits))
                        )
                else:
                    # A* budget exhausted: route and emit the layer's gates
                    # one at a time.  Once a gate is emitted its operands need
                    # not stay adjacent, so sequential shortest-path routing
                    # always succeeds (layer gates touch disjoint qubits).
                    counters["fallback_layers"] += 1
                    total_layer_swaps += self._route_layer_sequentially(
                        circuit, layer, pos, inv, routed
                    )
                if tele.enabled:
                    tele.metrics.counter("search.layers_solved").inc()
                    tele.publish_progress(
                        SearchProgressEvent(
                            mapper=self.mapper_name,
                            phase="search",
                            nodes_expanded=counters["expanded"],
                            nodes_generated=counters["generated"],
                            heap_size=0,
                            best_f=0,
                            elapsed_seconds=(
                                _time.perf_counter() - start_clock
                            ),
                            extra={
                                "layer": layer_index,
                                "layer_swaps": total_layer_swaps,
                            },
                        )
                    )
        if tele.enabled:
            tele.metrics.counter("search.nodes_expanded").inc(
                counters["expanded"]
            )
            tele.metrics.counter("search.nodes_generated").inc(
                counters["generated"]
            )
            tele.emit_metrics_snapshot(label="search_complete")

        return result_from_routed_ops(
            circuit,
            self.coupling,
            self.latency,
            initial_mapping,
            routed,
            stats=base_stats(
                self.mapper_name,
                nodes_expanded=counters["expanded"],
                nodes_generated=counters["generated"],
                seconds=_time.perf_counter() - start_clock,
                layer_swaps=total_layer_swaps,
                fallback_layers=counters["fallback_layers"],
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_swap(pos: List[int], inv: List[int], p: int, q: int) -> None:
        lp, lq = inv[p], inv[q]
        inv[p], inv[q] = lq, lp
        if lp >= 0:
            pos[lp] = q
        if lq >= 0:
            pos[lq] = p

    def _route_layer_sequentially(
        self,
        circuit: Circuit,
        layer: Sequence[int],
        pos: List[int],
        inv: List[int],
        routed: List,
    ) -> int:
        """Fallback routing: satisfy and emit each layer gate in turn."""
        dist = self.coupling.distance_matrix
        swaps_added = 0
        for g in sorted(layer):
            gate = circuit[g]
            if gate.is_two_qubit:
                a, b = gate.qubits
                while dist[pos[a]][pos[b]] > 1:
                    step = self._next_hop(pos[a], pos[b], frozen=set())
                    p = pos[a]
                    routed.append(("s", min(p, step), max(p, step)))
                    self._apply_swap(pos, inv, p, step)
                    swaps_added += 1
            routed.append(("g", g, tuple(pos[q] for q in gate.qubits)))
        return swaps_added

    # ------------------------------------------------------------------
    def _layer_cost(
        self, pos: Sequence[int], pairs: Sequence[Tuple[int, int]]
    ) -> int:
        dist = self.coupling.distance_matrix
        return sum(dist[pos[a]][pos[b]] - 1 for a, b in pairs)

    def _solve_layer(
        self,
        pos: Sequence[int],
        pairs: Sequence[Tuple[int, int]],
        next_pairs: Sequence[Tuple[int, int]],
        counters: Optional[Dict[str, int]] = None,
    ) -> Optional[List[Tuple[int, int]]]:
        """Minimal SWAP sequence making every pair in ``pairs`` adjacent.

        Returns ``None`` when the per-layer A* node budget runs out; the
        caller then falls back to sequential routing.  When ``counters``
        is given, its ``expanded`` / ``generated`` entries accumulate this
        layer's A* work.
        """
        start = tuple(pos)
        if self._layer_cost(start, pairs) == 0:
            return []

        active_logicals = {q for pair in pairs for q in pair}
        dist = self.coupling.distance_matrix

        def heuristic(state: Tuple[int, ...]) -> int:
            # Each SWAP reduces the total remaining distance by at most 2
            # (it can sit on the shortest path of at most two layer pairs),
            # so half the distance sum (rounded up) is admissible.
            remaining = self._layer_cost(state, pairs)
            return (remaining + 1) // 2

        def lookahead(state: Tuple[int, ...]) -> float:
            if not next_pairs:
                return 0.0
            return self.lookahead_weight * sum(
                dist[state[a]][state[b]] - 1 for a, b in next_pairs
            )

        counter = itertools.count()
        heap = [(heuristic(start) + lookahead(start), 0, next(counter), start, ())]
        best_g: Dict[Tuple[int, ...], int] = {start: 0}
        expanded = 0
        generated = 0

        def flush_counters() -> None:
            if counters is not None:
                counters["expanded"] += expanded
                counters["generated"] += generated

        while heap:
            _f, g, _tick, state, swaps = heapq.heappop(heap)
            if self._layer_cost(state, pairs) == 0:
                flush_counters()
                return list(swaps)
            if best_g.get(state, g) < g:
                continue
            expanded += 1
            if expanded > self.max_nodes_per_layer:
                break
            occupied = {state[q] for q in active_logicals}
            for p, q in self.coupling.edges:
                if p not in occupied and q not in occupied:
                    continue
                new_state = list(state)
                moved = False
                for logical, physical in enumerate(state):
                    if physical == p:
                        new_state[logical] = q
                        moved = True
                    elif physical == q:
                        new_state[logical] = p
                        moved = True
                if not moved:
                    continue
                candidate = tuple(new_state)
                new_g = g + 1
                if best_g.get(candidate, 10 ** 9) <= new_g:
                    continue
                best_g[candidate] = new_g
                generated += 1
                heapq.heappush(
                    heap,
                    (
                        new_g + heuristic(candidate) + lookahead(candidate),
                        new_g,
                        next(counter),
                        candidate,
                        swaps + ((p, q),),
                    ),
                )
        flush_counters()
        return None  # budget exhausted; caller routes sequentially

    def _next_hop(self, source: int, target: int, frozen: set) -> int:
        """First hop of a shortest path source→target, avoiding ``frozen``.

        Falls back to an unrestricted shortest-path hop when freezing
        disconnects the two endpoints.
        """
        from collections import deque

        parent = {source: source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor in self.coupling.neighbors(node):
                if neighbor in parent:
                    continue
                if neighbor in frozen and neighbor != target:
                    continue
                parent[neighbor] = node
                if neighbor == target:
                    queue.clear()
                    break
                queue.append(neighbor)
        hop = target
        if target in parent:
            while parent[hop] != source:
                hop = parent[hop]
            if hop == target:
                # Adjacent already handled by caller; step to the qubit
                # right before the target instead of onto it.
                hop = parent[target]
                if hop == source:
                    dist = self.coupling.distance_matrix
                    return min(
                        self.coupling.neighbors(source),
                        key=lambda r: dist[r][target],
                    )
            return hop
        dist = self.coupling.distance_matrix
        return min(
            self.coupling.neighbors(source),
            key=lambda r: dist[r][target],
        )
