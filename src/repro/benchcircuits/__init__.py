"""Benchmark circuit suites for Tables 1-3 (see DESIGN.md section 5)."""

from .large import TABLE3, LargeRow, large_circuit, qft10_decomposed, table3_row
from .olsq_suite import (
    TABLE2,
    OlsqRow,
    olsq_architecture,
    olsq_circuit,
    table2_rows,
)
from .registry import benchmark_circuit, benchmark_names
from .synthesis import calibrated_circuit, serial_random_circuit
from .wille import TABLE1, WilleRow, table1_row, wille_circuit

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "WilleRow",
    "OlsqRow",
    "LargeRow",
    "wille_circuit",
    "olsq_circuit",
    "olsq_architecture",
    "large_circuit",
    "qft10_decomposed",
    "table1_row",
    "table2_rows",
    "table3_row",
    "benchmark_circuit",
    "benchmark_names",
    "calibrated_circuit",
    "serial_random_circuit",
]
