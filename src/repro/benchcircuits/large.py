"""Table 3: the large RevLib/Qiskit/ScaffCC benchmarks on IBM Q20 Tokyo.

Published rows (name, qubits, gate count, ideal cycle, SABRE / Zulehner /
TOQM cycles) transcribed from the paper's Table 3.  Latencies: 1-qubit
gates 1 cycle, CX 2 cycles, SWAP 6 cycles.

``qft_10`` is regenerated exactly: the 10-qubit QFT with each controlled-
phase decomposed into (CX, RZ, CX, RZ), which reproduces the published 200
gates.  Every other row is a calibrated synthetic stand-in.

Because the mappers here are pure Python (the paper's are C++), rows are
generated at a scaled-down gate count by default — ``scale_gate_cap``
truncates to at most that many gates, scaling the ideal-cycle calibration
target proportionally — so the whole table runs in minutes.  Pass
``scale_gate_cap=None`` for the published sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuit.circuit import Circuit
from ..circuit.latency import TABLE3_LATENCY
from .synthesis import calibrated_circuit


@dataclass(frozen=True)
class LargeRow:
    """One row of the paper's Table 3."""

    name: str
    num_qubits: int
    gate_count: int
    ideal_cycle: int
    sabre_cycle: int
    zulehner_cycle: int
    toqm_cycle: int

    @property
    def speedup_vs_sabre(self) -> float:
        """Published TOQM speedup over SABRE."""
        return self.sabre_cycle / self.toqm_cycle

    @property
    def speedup_vs_zulehner(self) -> float:
        """Published TOQM speedup over Zulehner."""
        return self.zulehner_cycle / self.toqm_cycle


#: The paper's Table 3, transcribed verbatim.
TABLE3: List[LargeRow] = [
    LargeRow("cm82a_208", 8, 650, 571, 752, 1011, 759),
    LargeRow("rd53_251", 8, 1291, 1203, 1961, 1956, 1779),
    LargeRow("urf2_277", 8, 20112, 19698, 40533, 36500, 31090),
    LargeRow("urf1_278", 9, 54766, 53256, 105984, 95763, 83226),
    LargeRow("hwb8_113", 9, 69380, 64758, 119930, 115767, 93357),
    LargeRow("urf1_149", 9, 184864, 172518, 335230, 303697, 264752),
    LargeRow("qft_10", 10, 200, 97, 226, 193, 181),
    LargeRow("rd73_252", 10, 5321, 4829, 9194, 8431, 7267),
    LargeRow("sqn_258", 10, 10223, 9176, 18055, 16552, 13845),
    LargeRow("z4_268", 11, 3073, 2756, 5250, 5117, 4271),
    LargeRow("life_238", 11, 22445, 20867, 39340, 37944, 33366),
    LargeRow("9symml", 11, 34881, 32084, 63339, 56413, 48606),
    LargeRow("sqrt8_260", 12, 3009, 2779, 5645, 4831, 4457),
    LargeRow("cycle10_2", 12, 6050, 5662, 10972, 10659, 9605),
    LargeRow("rd84_253", 12, 13658, 12176, 24860, 23357, 18225),
    LargeRow("adr4_197", 13, 3439, 3088, 5732, 6005, 4704),
    LargeRow("root_255", 13, 17159, 14799, 29511, 27269, 23841),
    LargeRow("dist_223", 13, 38046, 32968, 66791, 62879, 54905),
    LargeRow("cm42a_207", 14, 1776, 1574, 2473, 2857, 2186),
    LargeRow("pm1_249", 14, 1776, 1574, 2591, 2857, 2186),
    LargeRow("cm85a_209", 14, 11414, 10630, 19540, 18393, 16204),
    LargeRow("square_root", 15, 7630, 6367, 12374, 11922, 9311),
    LargeRow("ham15_107", 15, 8763, 8092, 15388, 13767, 12341),
    LargeRow("dc2_222", 15, 9462, 8759, 16947, 15266, 12945),
    LargeRow("inc_237", 16, 10619, 9790, 18250, 17610, 14804),
    LargeRow("mlp4_245", 16, 18852, 17258, 31836, 30285, 27214),
]

_BY_NAME: Dict[str, LargeRow] = {row.name: row for row in TABLE3}


def table3_row(name: str) -> LargeRow:
    """Look up a Table 3 row by benchmark name."""
    return _BY_NAME[name]


def qft10_decomposed() -> Circuit:
    """The 10-qubit QFT with CP gates decomposed to CX/RZ.

    10 Hadamards + 45 controlled-phase gates at 4 gates each = 190 gates,
    within 5% of the 200 the paper reports (whose count likely includes
    the final measurements); the ideal cycle count (95 vs the published
    97) matches to the same tolerance.  Unlike the synthetic stand-ins,
    the *structure* here is the genuine QFT dependency pattern.
    """
    import math

    circuit = Circuit(10, name="qft_10")
    n = 10
    for i in range(n):
        circuit.h(i)
        for j in range(i + 1, n):
            angle = math.pi / (2 ** (j - i))
            circuit.cx(j, i)
            circuit.rz(i, -angle / 2)
            circuit.cx(j, i)
            circuit.rz(i, angle / 2)
    return circuit


def large_circuit(name: str, scale_gate_cap: Optional[int] = 3000) -> Circuit:
    """Regenerate a Table 3 benchmark, optionally scaled down.

    Args:
        name: Row name.
        scale_gate_cap: Maximum gate count; rows above it are regenerated
            at this size with the ideal-cycle calibration target scaled by
            the same factor.  ``None`` reproduces the published size.
    """
    row = _BY_NAME[name]
    if name == "qft_10":
        return qft10_decomposed()
    gates = row.gate_count
    ideal = row.ideal_cycle
    if scale_gate_cap is not None and gates > scale_gate_cap:
        factor = scale_gate_cap / gates
        gates = scale_gate_cap
        ideal = max(1, int(round(ideal * factor)))
    return calibrated_circuit(
        name,
        row.num_qubits,
        gates,
        ideal,
        latency=TABLE3_LATENCY,
        cx_fraction=0.5,
    )
