"""Table 2: the OLSQ comparison suite.

Published rows (name, architecture, ideal cycle, OLSQ cycle/overhead, TOQM
cycle/overhead) transcribed from the paper's Table 2.  Latencies: every
gate 1 cycle, SWAP 3 cycles.

Circuits: the ``queko_*`` rows are regenerated with our QUEKO-style
generator on Aspen-4 (known-optimal-depth semantics preserved exactly —
``queko_DD_S`` means depth DD, seed S); the remaining rows are calibrated
synthetic stand-ins matching the published qubit counts and ideal cycles
(the OLSQ artifact's exact gate lists are unavailable offline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..arch.library import by_name, rigetti_aspen4
from ..circuit.circuit import Circuit
from ..circuit.generators import queko_circuit
from ..circuit.latency import OLSQ_LATENCY
from .synthesis import calibrated_circuit


@dataclass(frozen=True)
class OlsqRow:
    """One row of the paper's Table 2."""

    name: str
    arch: str
    num_qubits: int
    ideal_cycle: int
    olsq_cycle: int
    olsq_overhead_s: float
    toqm_cycle: int
    toqm_overhead_s: float


#: The paper's Table 2, transcribed verbatim (qubit counts from the
#: benchmark definitions: 4gt13_92/4mod5/mod5mils are 5-qubit RevLib
#: circuits, adder is the 4-qubit OLSQ adder, or is 3 qubits, qaoa5 is 5).
TABLE2: List[OlsqRow] = [
    OlsqRow("4gt13_92", "ibmqx2", 5, 38, 38, 145.74, 38, 0.01),
    OlsqRow("4mod5-v1_22", "grid2by3", 5, 12, 20, 90.20, 20, 0.64),
    OlsqRow("4mod5-v1_22", "grid2by4", 5, 12, 20, 151.28, 20, 17.35),
    OlsqRow("4mod5-v1_22", "ibmqx2", 5, 12, 15, 21.60, 15, 0.03),
    OlsqRow("adder", "grid2by3", 4, 11, 11, 10.95, 11, 0.03),
    OlsqRow("adder", "grid2by4", 4, 11, 11, 13.45, 11, 0.01),
    OlsqRow("adder", "ibmqx2", 4, 11, 15, 39.71, 15, 0.06),
    OlsqRow("mod5mils_65", "ibmqx2", 5, 21, 24, 87.76, 24, 0.05),
    OlsqRow("or", "ibmqx2", 3, 8, 8, 3.55, 8, 0.01),
    OlsqRow("qaoa5", "ibmqx2", 5, 14, 14, 10.41, 14, 0.01),
    OlsqRow("queko_05_0", "aspen-4", 16, 5, 5, 68.89, 5, 0.01),
    OlsqRow("queko_10_3", "aspen-4", 16, 10, 10, 592.91, 10, 1.02),
    OlsqRow("queko_15_1", "aspen-4", 16, 15, 15, 4912.35, 15, 26.70),
]


def table2_rows(name: str) -> List[OlsqRow]:
    """All Table 2 rows for a benchmark name (one per architecture)."""
    rows = [row for row in TABLE2 if row.name == name]
    if not rows:
        raise KeyError(f"unknown Table 2 benchmark {name!r}")
    return rows


#: Rows whose published optimal depth equals the ideal depth are circuits
#: that *embed* into (a subgraph of) the target architecture and run
#: swap-free.  To preserve that property the stand-in is generated
#: QUEKO-style on the named host graph at the published depth.
_EMBEDDABLE_HOSTS = {
    "4gt13_92": "lnn-5",   # 38 == 38 on ibmqx2 (lnn-5 embeds into qx2)
    "adder": "grid2x2",    # 11 == 11 on grid2by3/grid2by4 (C4 ⊄ qx2 ⇒ 15)
    "or": "lnn-3",         # 8 == 8 on ibmqx2
    "qaoa5": "lnn-5",      # 14 == 14 on ibmqx2
}

#: Per-benchmark seeds for the embeddable stand-ins.
_EMBED_SEEDS = {"4gt13_92": 2, "adder": 1, "or": 0, "qaoa5": 4}


def olsq_circuit(name: str) -> Circuit:
    """Regenerate the named Table 2 benchmark circuit."""
    if name.startswith("queko_"):
        _, depth_text, seed_text = name.split("_")
        circuit = queko_circuit(
            rigetti_aspen4(),
            depth=int(depth_text),
            seed=int(seed_text),
            two_qubit_density=0.25,
            one_qubit_density=0.15,
        )
        circuit.name = name
        return circuit
    if name in _EMBEDDABLE_HOSTS:
        row = table2_rows(name)[0]
        host = by_name(_EMBEDDABLE_HOSTS[name])
        circuit = queko_circuit(
            host,
            depth=row.ideal_cycle,
            seed=_EMBED_SEEDS.get(name, 0),
            two_qubit_density=0.5,
            one_qubit_density=0.3,
        )
        circuit.name = name
        return circuit
    row = table2_rows(name)[0]
    best = None
    for density in (0.55, 0.45, 0.35, 0.3, 0.25):
        gate_count = max(6, int(row.ideal_cycle * row.num_qubits * density))
        candidate = calibrated_circuit(
            name,
            row.num_qubits,
            gate_count,
            row.ideal_cycle,
            latency=OLSQ_LATENCY,
            cx_fraction=0.55,
        )
        gap = abs(candidate.depth(OLSQ_LATENCY) - row.ideal_cycle)
        if best is None or gap < best[0]:
            best = (gap, candidate)
        if gap == 0:
            break
    return best[1]


def olsq_architecture(row: OlsqRow):
    """The coupling graph a Table 2 row runs on."""
    return by_name(row.arch)


OLSQ_BENCHMARK_NAMES: Dict[str, None] = dict.fromkeys(r.name for r in TABLE2)
