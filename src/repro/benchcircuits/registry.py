"""Unified lookup of every benchmark circuit used in the evaluation."""

from __future__ import annotations

from typing import List, Optional

from ..circuit.circuit import Circuit
from .large import TABLE3, large_circuit
from .olsq_suite import TABLE2, olsq_circuit
from .wille import TABLE1, wille_circuit


def benchmark_names() -> List[str]:
    """All benchmark names across Tables 1–3 (deduplicated, sorted)."""
    names = {row.name for row in TABLE1}
    names.update(row.name for row in TABLE2)
    names.update(row.name for row in TABLE3)
    return sorted(names)


def benchmark_circuit(name: str, scale_gate_cap: Optional[int] = 3000) -> Circuit:
    """Regenerate any named benchmark from Tables 1–3.

    Table 1 takes precedence on name collisions (e.g. ``4gt13_92`` and
    ``mod5mils_65`` appear in both Tables 1 and 2 — same circuit either
    way).

    Args:
        name: Benchmark name as printed in the paper.
        scale_gate_cap: Table 3 scaling cap (see ``large_circuit``).
    """
    if any(row.name == name for row in TABLE1):
        return wille_circuit(name)
    if any(row.name == name for row in TABLE2):
        return olsq_circuit(name)
    if any(row.name == name for row in TABLE3):
        return large_circuit(name, scale_gate_cap=scale_gate_cap)
    raise KeyError(f"unknown benchmark {name!r}")
