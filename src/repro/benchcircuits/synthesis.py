"""Calibrated synthetic stand-ins for the paper's benchmark suites.

The RevLib/Qiskit/ScaffCC circuit files used in Tables 1 and 3 are not
redistributable and unavailable offline, so each named row is regenerated
as a deterministic synthetic circuit that matches the row's *published*
qubit count, gate count, and (approximately) ideal cycle count.  Reversible
-logic benchmarks are strikingly serial — their ideal depth is usually over
85% of a full serialization — so the generator exposes a *seriality* knob
(probability that a gate reuses the previously touched qubit) and a CX
fraction, and :func:`calibrated_circuit` binary-searches seriality until
the ideal cycle count under the target latency model lands on the published
value.  See DESIGN.md §5 for why this preserves the comparison's shape.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional

from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency


def _seed_from_name(name: str) -> int:
    """Stable 32-bit seed derived from a benchmark name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def serial_random_circuit(
    num_qubits: int,
    num_gates: int,
    cx_fraction: float,
    seriality: float,
    seed: int,
    allowed_pairs: Optional[list] = None,
) -> Circuit:
    """Random circuit with tunable dependency-chain density.

    Args:
        num_qubits: Logical qubit count.
        num_gates: Total gates.
        cx_fraction: Probability a gate is a CNOT.
        seriality: Probability a gate reuses the most recently used qubit,
            lengthening the critical path (reversible-logic style).
        seed: Deterministic RNG seed.
        allowed_pairs: When given, CNOTs are drawn only from these qubit
            pairs — used to regenerate benchmarks whose published optimal
            cycle equals the ideal cycle (their interaction graph embeds
            into the target architecture, so the stand-in's must too).
    """
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"synth_{num_qubits}_{num_gates}")
    last_qubit = rng.randrange(num_qubits)
    one_qubit_names = ("t", "h", "x", "rz")
    pair_by_qubit = None
    if allowed_pairs is not None:
        pair_by_qubit = {q: [] for q in range(num_qubits)}
        for a, b in allowed_pairs:
            pair_by_qubit[a].append(b)
            pair_by_qubit[b].append(a)
    for _ in range(num_gates):
        chain = rng.random() < seriality
        anchor = last_qubit if chain else rng.randrange(num_qubits)
        if num_qubits >= 2 and rng.random() < cx_fraction:
            if pair_by_qubit is not None:
                partners = pair_by_qubit[anchor]
                if not partners:
                    a, b = allowed_pairs[rng.randrange(len(allowed_pairs))]
                    anchor, other = a, b
                else:
                    other = partners[rng.randrange(len(partners))]
            else:
                other = rng.randrange(num_qubits - 1)
                if other >= anchor:
                    other += 1
            if rng.random() < 0.5:
                circuit.cx(anchor, other)
            else:
                circuit.cx(other, anchor)
            last_qubit = other if rng.random() < 0.4 else anchor
        else:
            name = one_qubit_names[rng.randrange(len(one_qubit_names))]
            if name == "rz":
                circuit.rz(anchor, rng.uniform(0, 2 * math.pi))
            else:
                circuit.add(name, anchor)
            last_qubit = anchor
    return circuit


def calibrated_circuit(
    name: str,
    num_qubits: int,
    num_gates: int,
    ideal_cycles: int,
    latency: Optional[LatencyModel] = None,
    cx_fraction: float = 0.5,
    allowed_pairs: Optional[list] = None,
) -> Circuit:
    """Synthesize a named stand-in hitting a published ideal cycle count.

    Binary-searches the seriality knob (12 iterations) so the circuit's
    all-to-all depth under ``latency`` is as close as possible to
    ``ideal_cycles``.  Fully deterministic per name.

    Args:
        name: Benchmark row name (drives the seed).
        num_qubits: Published qubit count.
        num_gates: Published (possibly scaled) gate count.
        ideal_cycles: Published (possibly scaled) ideal cycle count.
        latency: Latency model the published ideal refers to.
        cx_fraction: CNOT fraction of the mix.
        allowed_pairs: Restrict CNOTs to these pairs (embeddable rows).

    Returns:
        The synthesized circuit, named ``name``.
    """
    if latency is None:
        latency = uniform_latency()
    seed = _seed_from_name(name)

    def search(fraction: float):
        def build(seriality: float) -> Circuit:
            return serial_random_circuit(
                num_qubits, num_gates, fraction, seriality, seed,
                allowed_pairs=allowed_pairs,
            )

        low, high = 0.0, 1.0
        best = build(1.0)
        best_gap = abs(best.depth(latency) - ideal_cycles)
        for _ in range(12):
            mid = (low + high) / 2
            candidate = build(mid)
            depth = candidate.depth(latency)
            gap = abs(depth - ideal_cycles)
            if gap < best_gap:
                best, best_gap = candidate, gap
            if depth < ideal_cycles:
                low = mid
            else:
                high = mid
        return best, best_gap

    # A heavy CX mix can put the depth *floor* (total qubit-cycles /
    # num_qubits) above the target; retry with lighter mixes if needed.
    best, best_gap = search(cx_fraction)
    tolerance = max(2, ideal_cycles // 20)
    for fallback in (0.4, 0.3, 0.25):
        if best_gap <= tolerance or fallback >= cx_fraction:
            break
        candidate, gap = search(fallback)
        if gap < best_gap:
            best, best_gap = candidate, gap
    best.name = name
    return best
