"""Circuit intermediate representation: gates, circuits, DAGs, latencies."""

from .circuit import Circuit
from .dag import DependencyGraph
from .decompose import (
    decompose_cu1,
    decompose_cz,
    decompose_swaps,
    decompose_to_basis,
)
from .gate import Gate, single, swap, two
from .latency import (
    IBM_LATENCY,
    OLSQ_LATENCY,
    QFT_LATENCY,
    TABLE1_LATENCY,
    TABLE3_LATENCY,
    LatencyModel,
    uniform_latency,
)
from .qasm import QasmError, load_qasm_file, parse_qasm, to_qasm

__all__ = [
    "decompose_swaps",
    "decompose_cu1",
    "decompose_cz",
    "decompose_to_basis",
    "Circuit",
    "DependencyGraph",
    "Gate",
    "single",
    "two",
    "swap",
    "LatencyModel",
    "uniform_latency",
    "QFT_LATENCY",
    "OLSQ_LATENCY",
    "IBM_LATENCY",
    "TABLE1_LATENCY",
    "TABLE3_LATENCY",
    "QasmError",
    "parse_qasm",
    "to_qasm",
    "load_qasm_file",
]
