"""The logical circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuit.gate.Gate`
objects over ``num_qubits`` logical qubits.  List order is program order; the
dependency structure the mapper actually schedules against is the per-qubit
chain DAG built by :mod:`repro.circuit.dag`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gate import Gate, SWAP_NAME
from .latency import LatencyModel, uniform_latency


class Circuit:
    """An ordered sequence of gates over a fixed set of logical qubits.

    Args:
        num_qubits: Number of logical qubits (indices ``0..num_qubits-1``).
        gates: Optional initial gate sequence.
        name: Optional human-readable label (used in benchmark reports).
    """

    def __init__(
        self,
        num_qubits: int,
        gates: Optional[Iterable[Gate]] = None,
        name: str = "",
    ) -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append ``gate``, validating its qubit indices.  Returns self."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"gate {gate} uses qubit {q} outside 0..{self.num_qubits - 1}"
                )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "Circuit":
        """Append a gate by name and qubits.  Returns self for chaining."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    def h(self, q: int) -> "Circuit":
        """Append a Hadamard gate."""
        return self.add("h", q)

    def x(self, q: int) -> "Circuit":
        """Append a Pauli-X gate."""
        return self.add("x", q)

    def t(self, q: int) -> "Circuit":
        """Append a T gate."""
        return self.add("t", q)

    def rz(self, q: int, angle: float) -> "Circuit":
        """Append an RZ rotation."""
        return self.add("rz", q, params=(angle,))

    def cx(self, control: int, target: int) -> "Circuit":
        """Append a CNOT gate."""
        return self.add("cx", control, target)

    def cz(self, q0: int, q1: int) -> "Circuit":
        """Append a controlled-Z gate."""
        return self.add("cz", q0, q1)

    def gt(self, q0: int, q1: int) -> "Circuit":
        """Append the paper's generic two-qubit gate (Section 3)."""
        return self.add("gt", q0, q1)

    def swap(self, q0: int, q1: int) -> "Circuit":
        """Append an explicit SWAP gate."""
        return self.add(SWAP_NAME, q0, q1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits and self._gates == other._gates
        )

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names, like Qiskit's ``count_ops``."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the ones coupling constrains)."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def two_qubit_gates(self) -> List[Gate]:
        """All two-qubit gates in program order."""
        return [g for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> List[int]:
        """Sorted list of qubits touched by at least one gate."""
        seen = set()
        for gate in self._gates:
            seen.update(gate.qubits)
        return sorted(seen)

    def interaction_graph(self) -> List[Tuple[int, int]]:
        """Distinct unordered qubit pairs joined by a two-qubit gate."""
        edges = set()
        for gate in self._gates:
            if gate.is_two_qubit:
                a, b = gate.qubits
                edges.add((min(a, b), max(a, b)))
        return sorted(edges)

    # ------------------------------------------------------------------
    # Depth
    # ------------------------------------------------------------------
    def depth(self, latency: Optional[LatencyModel] = None) -> int:
        """Circuit depth in cycles on an ideal all-to-all architecture.

        This is the paper's *ideal cycle* column: the length of the weighted
        critical path through the per-qubit dependency chains, i.e. the time
        an ASAP schedule takes when every pair of qubits is connected.

        Args:
            latency: Latency model; defaults to 1 cycle per gate.
        """
        if latency is None:
            latency = uniform_latency()
        ready = [0] * self.num_qubits
        for gate in self._gates:
            start = max(ready[q] for q in gate.qubits)
            finish = start + latency.gate_latency(gate)
            for q in gate.qubits:
                ready[q] = finish
        return max(ready, default=0)

    def parallel_layers(self) -> List[List[int]]:
        """Greedy ASAP partition of gate indices into unit-depth layers.

        Layer ``k`` holds the gates whose unit-latency ASAP start time is
        ``k``.  Used by the Zulehner baseline and by tests of the layered
        QFT representation (Fig. 10).
        """
        ready = [0] * self.num_qubits
        layers: List[List[int]] = []
        for index, gate in enumerate(self._gates):
            start = max(ready[q] for q in gate.qubits)
            for q in gate.qubits:
                ready[q] = start + 1
            while len(layers) <= start:
                layers.append([])
            layers[start].append(index)
        return layers

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def without_single_qubit_gates(self) -> "Circuit":
        """Copy with single-qubit gates dropped (two-qubit skeleton)."""
        return Circuit(
            self.num_qubits,
            (g for g in self._gates if g.is_two_qubit),
            name=self.name,
        )

    def reversed(self) -> "Circuit":
        """Copy with the gate order reversed (used by SABRE's refinement)."""
        return Circuit(self.num_qubits, reversed(self._gates), name=self.name)

    def relabeled(self, permutation: Sequence[int]) -> "Circuit":
        """Copy with qubit ``q`` renamed to ``permutation[q]``.

        Args:
            permutation: A permutation of ``0..num_qubits-1``.
        """
        if sorted(permutation) != list(range(self.num_qubits)):
            raise ValueError("relabeling must be a permutation of all qubits")
        return Circuit(
            self.num_qubits,
            (g.on(*(permutation[q] for q in g.qubits)) for g in self._gates),
            name=self.name,
        )

    def copy(self) -> "Circuit":
        """Shallow copy (gates are immutable, so this is a full copy)."""
        return Circuit(self.num_qubits, self._gates, name=self.name)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Circuit{label}: {self.num_qubits} qubits, "
            f"{len(self._gates)} gates>"
        )
