"""Per-qubit dependency chains — the circuit's scheduling DAG.

Because every gate touches at most two qubits and gates on the same qubit
must execute in program order, the dependency graph of a circuit (Fig. 7 of
the paper) is fully described by, for each gate, its *predecessor on each
operand qubit*.  This module precomputes those chains once per circuit; the
search core and the heuristic both consume them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .circuit import Circuit


class DependencyGraph:
    """Predecessor/successor structure of a circuit.

    Attributes:
        circuit: The underlying circuit.
        qubit_gates: For each logical qubit, the gate indices touching it,
            in program order.
        position: ``position[gate][qubit]`` is the index of ``gate`` within
            ``qubit_gates[qubit]``.
        preds: For each gate, the tuple of distinct immediate predecessor
            gate indices (one per operand qubit, deduplicated).
        succs: For each gate, the tuple of distinct immediate successors.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        n = circuit.num_qubits
        self.qubit_gates: List[List[int]] = [[] for _ in range(n)]
        self.position: List[Dict[int, int]] = []
        preds: List[Tuple[int, ...]] = []
        succ_sets: List[List[int]] = [[] for _ in range(len(circuit))]
        last_on_qubit: List[Optional[int]] = [None] * n

        for index, gate in enumerate(circuit):
            pos: Dict[int, int] = {}
            gate_preds = []
            for q in gate.qubits:
                pos[q] = len(self.qubit_gates[q])
                self.qubit_gates[q].append(index)
                prev = last_on_qubit[q]
                if prev is not None:
                    gate_preds.append(prev)
                    succ_sets[prev].append(index)
                last_on_qubit[q] = index
            self.position.append(pos)
            # Deduplicate (a 2q gate can share both qubits with its pred).
            preds.append(tuple(dict.fromkeys(gate_preds)))

        self.preds: Tuple[Tuple[int, ...], ...] = tuple(preds)
        self.succs: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(dict.fromkeys(s)) for s in succ_sets
        )

    def pred_on_qubit(self, gate_index: int, qubit: int) -> Optional[int]:
        """The previous gate on ``qubit`` before ``gate_index``, if any."""
        pos = self.position[gate_index].get(qubit)
        if pos is None:
            raise ValueError(f"gate {gate_index} does not act on qubit {qubit}")
        if pos == 0:
            return None
        return self.qubit_gates[qubit][pos - 1]

    def roots(self) -> List[int]:
        """Gates with no predecessors (the initial frontier)."""
        return [i for i, p in enumerate(self.preds) if not p]

    def critical_path_length(self, latencies: List[int]) -> int:
        """Weighted longest path through the DAG.

        Equals :meth:`Circuit.depth` under the same latencies; also the
        depth lower bound OLSQ starts its iterative deepening from.

        Args:
            latencies: Per-gate latency, indexed by gate index.
        """
        finish = [0] * len(self.preds)
        best = 0
        for index in range(len(self.preds)):
            start = max((finish[p] for p in self.preds[index]), default=0)
            finish[index] = start + latencies[index]
            best = max(best, finish[index])
        return best

    def topological_order(self) -> List[int]:
        """Gate indices in a valid topological order (= program order)."""
        return list(range(len(self.preds)))
