"""Gate decomposition passes.

The paper's cost model treats SWAP latency as a parameter precisely
because a SWAP is *implemented* as three CNOTs on bidirectional links
(Section 2.2), and its QFT convention absorbs single-qubit gates into
generic two-qubit gates.  These passes make those conventions executable:

* :func:`decompose_swaps` — SWAP → CX·CX·CX (the 6-cycle latency used in
  Tables 1 and 3 is exactly 3 × the 2-cycle CX);
* :func:`decompose_cu1` — controlled-phase → {RZ, CX} (how the Table 3
  ``qft_10`` row reaches its published gate count);
* :func:`decompose_to_basis` — both, iterated to a CX + 1-qubit basis.

All passes are semantics-preserving; the test suite verifies them with
the state-vector simulator.
"""

from __future__ import annotations

from typing import FrozenSet

from .circuit import Circuit
from .gate import Gate

#: Gates :func:`decompose_to_basis` accepts as already elementary.
BASIS_GATES: FrozenSet[str] = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz",
     "u1", "cx"}
)


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Replace every SWAP gate with three alternating CNOTs."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.is_swap:
            a, b = gate.qubits
            out.cx(a, b).cx(b, a).cx(a, b)
        else:
            out.append(gate)
    return out


def decompose_cu1(circuit: Circuit) -> Circuit:
    """Replace controlled-phase gates with the standard {U1, CX} identity.

    ``cu1(θ) a,b ≡ u1(θ/2) a · cx a,b · u1(−θ/2) b · cx a,b · u1(θ/2) b``
    — an exact identity (U1 = diag(1, e^{iθ}) carries no global phase,
    unlike RZ, so the simulator check needs no phase slack).
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "cu1":
            (theta,) = gate.params
            a, b = gate.qubits
            out.add("u1", a, params=(theta / 2,))
            out.cx(a, b)
            out.add("u1", b, params=(-theta / 2,))
            out.cx(a, b)
            out.add("u1", b, params=(theta / 2,))
        else:
            out.append(gate)
    return out


def decompose_cz(circuit: Circuit) -> Circuit:
    """Replace CZ (and the paper's generic ``gt``) with H·CX·H."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name in ("cz", "gt"):
            a, b = gate.qubits
            out.h(b)
            out.cx(a, b)
            out.h(b)
        else:
            out.append(gate)
    return out


def decompose_to_basis(circuit: Circuit) -> Circuit:
    """Lower a circuit to the CX + single-qubit basis.

    Applies the SWAP, CU1 and CZ/GT decompositions; raises if an unknown
    multi-qubit gate remains.
    """
    lowered = decompose_cz(decompose_cu1(decompose_swaps(circuit)))
    for gate in lowered:
        if gate.name not in BASIS_GATES:
            raise ValueError(
                f"no decomposition rule for gate {gate.name!r}"
            )
    return lowered


def swap_cx_overhead(circuit: Circuit) -> int:
    """Extra gates the SWAP decomposition adds (each SWAP becomes 3 CX)."""
    return 2 * sum(1 for g in circuit if g.is_swap)
