"""Gate primitives for the logical-circuit intermediate representation.

The paper (Section 2.1) distinguishes only two classes of elementary gates:
single-qubit gates and two-qubit gates.  Everything the mapper needs to know
about a gate is its name (used for latency lookup and QASM round-tripping),
the logical qubits it touches, and optional real-valued parameters.

Gates are immutable.  Within a :class:`~repro.circuit.circuit.Circuit` a gate
is identified by its index, so two textually identical gates at different
positions are distinct scheduling objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Canonical name used for inserted SWAP gates throughout the library.
SWAP_NAME = "swap"

#: Names the QASM writer treats as having a standard-library definition.
STANDARD_GATE_NAMES = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
        "rx", "ry", "rz", "u1", "u2", "u3",
        "cx", "cz", "cy", "ch", "cu1", "cu3", "crz",
        "swap", "gt",
    }
)


@dataclass(frozen=True)
class Gate:
    """One quantum gate applied to an ordered tuple of logical qubits.

    Attributes:
        name: Lower-case gate mnemonic, e.g. ``"h"``, ``"cx"``, ``"swap"``,
            or the paper's generic two-qubit gate ``"gt"``.
        qubits: The logical qubit indices the gate acts on, in operand order
            (control before target for controlled gates).
        params: Optional rotation angles or phases, kept only so circuits
            survive a QASM round trip; the mapper itself never reads them.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("a gate must act on at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} repeats a qubit: {self.qubits}")
        if len(self.qubits) > 2:
            raise ValueError(
                f"gate {self.name} acts on {len(self.qubits)} qubits; the "
                "mapping model only supports 1- and 2-qubit gates "
                "(decompose wider gates first)"
            )

    @property
    def num_qubits(self) -> int:
        """Number of distinct qubits the gate acts on (1 or 2)."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit gates, which are subject to coupling checks."""
        return len(self.qubits) == 2

    @property
    def is_swap(self) -> bool:
        """True if this gate is a SWAP (by canonical name)."""
        return self.name == SWAP_NAME

    def on(self, *qubits: int) -> "Gate":
        """Return a copy of this gate applied to different qubits."""
        return Gate(self.name, tuple(qubits), self.params)

    def __str__(self) -> str:
        args = ", ".join(f"q{q}" for q in self.qubits)
        if self.params:
            ps = ", ".join(f"{p:g}" for p in self.params)
            return f"{self.name}({ps}) {args}"
        return f"{self.name} {args}"


def single(name: str, qubit: int, *params: float) -> Gate:
    """Convenience constructor for a single-qubit gate."""
    return Gate(name, (qubit,), tuple(params))


def two(name: str, q0: int, q1: int, *params: float) -> Gate:
    """Convenience constructor for a two-qubit gate."""
    return Gate(name, (q0, q1), tuple(params))


def swap(q0: int, q1: int) -> Gate:
    """Convenience constructor for a SWAP gate."""
    return Gate(SWAP_NAME, (q0, q1))
