"""Workload generators used throughout the evaluation.

* :func:`qft_skeleton` — the paper's QFT convention (Section 3): ``n``
  qubits, ``n(n-1)/2`` generic two-qubit ``gt`` gates, single-qubit gates
  absorbed.  ``layered=True`` emits the parallel-layer ordering of Fig. 10
  (2n−3 layers); otherwise the sequential ordering of Fig. 2(b).
* :func:`qft_full` — a concrete QFT with Hadamards and controlled-phase
  gates, for QASM round-trip and ideal-depth tests.
* :func:`queko_circuit` — QUEKO-style benchmarks with *known optimal depth*
  (Tan & Cong), used by Table 2: a circuit scheduled directly on the target
  architecture at a chosen depth, then scrambled by a hidden permutation.
* :func:`random_circuit` — seeded random circuits with a tunable two-qubit
  fraction and interaction locality; the substrate for the synthetic
  stand-ins of the RevLib/Qiskit/ScaffCC suites (see DESIGN.md §5).
* :func:`ghz_circuit`, :func:`linear_entangler` — small structured examples.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ..arch.coupling import CouplingGraph
from .circuit import Circuit


def qft_skeleton(num_qubits: int, layered: bool = True) -> Circuit:
    """QFT skeleton circuit of generic two-qubit gates (paper Section 3).

    Args:
        num_qubits: Number of logical qubits ``n``; emits ``n(n-1)/2`` GT
            gates, one per unordered qubit pair.
        layered: If True, order gates by the affine loop of Fig. 10(b)
            (parallel layers ``k = 1 .. 2n-3``); if False, use the
            triangular ordering of Fig. 2(b).  Both have the same gate set;
            the layered form exposes the parallelism the optimal schedules
            exploit.
    """
    if num_qubits < 2:
        raise ValueError("QFT needs at least two qubits")
    circuit = Circuit(num_qubits, name=f"qft_{num_qubits}")
    n = num_qubits
    if layered:
        for k in range(1, 2 * n - 2):
            for i in range(0, (k + 1) // 2):
                if 0 <= i < n and i < k - i < n:
                    circuit.gt(i, k - i)
    else:
        for i in range(n):
            for j in range(i + 1, n):
                circuit.gt(i, j)
    return circuit


def qft_full(num_qubits: int) -> Circuit:
    """Textbook QFT with Hadamards and controlled-phase (cu1) gates."""
    circuit = Circuit(num_qubits, name=f"qft_full_{num_qubits}")
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            circuit.add("cu1", j, i, params=(math.pi / (2 ** (j - i)),))
    return circuit


def ghz_circuit(num_qubits: int) -> Circuit:
    """GHZ-state preparation: one Hadamard and a CNOT chain."""
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def linear_entangler(num_qubits: int, rounds: int = 1) -> Circuit:
    """Alternating even/odd nearest-neighbor CNOT brick pattern."""
    circuit = Circuit(num_qubits, name=f"entangler_{num_qubits}x{rounds}")
    for layer in range(2 * rounds):
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return circuit


def random_circuit(
    num_qubits: int,
    num_gates: int,
    two_qubit_fraction: float = 0.6,
    seed: int = 0,
    locality: float = 0.0,
) -> Circuit:
    """A seeded random circuit.

    Args:
        num_qubits: Number of logical qubits.
        num_gates: Total gate count.
        two_qubit_fraction: Probability each gate is a CNOT.
        seed: RNG seed (results are deterministic per seed).
        locality: In ``[0, 1)``; probability that a CNOT reuses a qubit
            pair that has interacted before, mimicking the clustered
            interaction patterns of reversible-logic benchmarks.
    """
    if num_qubits < 2 and two_qubit_fraction > 0:
        raise ValueError("two-qubit gates need at least two qubits")
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}_{num_gates}_s{seed}")
    previous_pairs: List[Tuple[int, int]] = []
    one_qubit_names = ("h", "t", "x", "rz")
    for _ in range(num_gates):
        if rng.random() < two_qubit_fraction:
            if previous_pairs and rng.random() < locality:
                control, target = rng.choice(previous_pairs)
                if rng.random() < 0.5:
                    control, target = target, control
            else:
                control, target = rng.sample(range(num_qubits), 2)
                previous_pairs.append((control, target))
            circuit.cx(control, target)
        else:
            name = rng.choice(one_qubit_names)
            q = rng.randrange(num_qubits)
            if name == "rz":
                circuit.rz(q, rng.uniform(0, 2 * math.pi))
            else:
                circuit.add(name, q)
    return circuit


def queko_circuit(
    coupling: CouplingGraph,
    depth: int,
    seed: int = 0,
    two_qubit_density: float = 0.3,
    one_qubit_density: float = 0.1,
    scramble: bool = True,
) -> Circuit:
    """A QUEKO-style benchmark with known optimal depth.

    Construction (after Tan & Cong): first lay a *backbone* — a chain of
    gates, one per cycle, each sharing a qubit with its predecessor — which
    forces the unit-latency depth to be at least ``depth``; then fill each
    cycle with additional disjoint coupling-edge CNOTs and idle-qubit
    single-qubit gates up to the requested densities.  Every two-qubit gate
    lies on a coupling edge, so under the hidden identity mapping the
    circuit runs in exactly ``depth`` cycles with zero SWAPs.  Finally the
    qubit labels are scrambled by a random permutation, which a mapper must
    rediscover.

    Args:
        coupling: Target architecture the circuit is built on.
        depth: The known optimal depth (unit gate latency).
        seed: RNG seed.
        two_qubit_density: Fraction of qubits engaged in CNOTs per cycle.
        one_qubit_density: Fraction of qubits given 1-qubit gates per cycle.
        scramble: Apply the hidden relabeling (disable for debugging).

    Returns:
        The benchmark circuit; ``circuit.depth()`` equals ``depth``.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rng = random.Random(seed)
    n = coupling.num_qubits
    cycles: List[List[Tuple[str, Tuple[int, ...]]]] = [[] for _ in range(depth)]
    used: List[set] = [set() for _ in range(depth)]

    # Backbone: a dependency chain through all cycles.
    edge = rng.choice(coupling.edges)
    cycles[0].append(("cx", edge))
    used[0].update(edge)
    previous_edge = edge
    for t in range(1, depth):
        pivot = rng.choice(previous_edge)
        neighbors = [q for q in coupling.neighbors(pivot)]
        other = rng.choice(neighbors)
        edge = (pivot, other)
        cycles[t].append(("cx", edge))
        used[t].update(edge)
        previous_edge = edge

    # Fill with disjoint CNOTs and single-qubit gates per density.
    target_cx_qubits = max(2, int(two_qubit_density * n))
    for t in range(depth):
        candidates = list(coupling.edges)
        rng.shuffle(candidates)
        for p, q in candidates:
            if len(used[t]) >= target_cx_qubits:
                break
            if p in used[t] or q in used[t]:
                continue
            cycles[t].append(("cx", (p, q)))
            used[t].update((p, q))
        idle = [q for q in range(n) if q not in used[t]]
        rng.shuffle(idle)
        for q in idle[: int(one_qubit_density * n)]:
            cycles[t].append(("h", (q,)))
            used[t].add(q)

    circuit = Circuit(n, name=f"queko_{depth:02d}_{seed}")
    for t in range(depth):
        for name, qubits in cycles[t]:
            circuit.add(name, *qubits)

    if scramble:
        permutation = list(range(n))
        rng.shuffle(permutation)
        circuit = circuit.relabeled(permutation)
        circuit.name = f"queko_{depth:02d}_{seed}"
    return circuit
