"""Latency models: how many cycles each gate (and a SWAP) takes.

The paper deliberately leaves gate latencies as *parameters* of the model
(Section 2.2: "we set the latency of a SWAP as a parameter in our model") and
uses three concrete assignments in the evaluation:

* **QFT analysis (Section 3, 6.1.1)** — every generic two-qubit gate and
  every SWAP takes one cycle (each "step" in Figs. 11/12/14 is one cycle).
* **Table 1 (Wille benchmarks on IBM QX2)** — SWAP latency 6, CX latency 2,
  single-qubit latency 1.
* **Table 2 (OLSQ comparison)** — every gate 1 cycle, SWAP 3 cycles.
* **Table 3 (large benchmarks on IBM Q20 Tokyo)** — single-qubit 1 cycle,
  CX 2 cycles, SWAP 6 cycles (3 CX on bidirectional links).

All latencies are positive integers; a zero-latency gate would break the
cycle-based search model (each transition must increase cost, Theorem 5.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from .gate import Gate


class LatencyModel:
    """Maps gates to integer cycle counts.

    Lookup precedence for a gate ``g``:

    1. an exact entry for ``g.name`` in ``table``;
    2. ``swap_cycles`` if the gate is a SWAP;
    3. ``two_qubit_cycles`` / ``single_qubit_cycles`` by operand count.

    Args:
        single_qubit_cycles: Default latency of 1-qubit gates.
        two_qubit_cycles: Default latency of 2-qubit gates.
        swap_cycles: Latency of a SWAP gate.
        table: Optional per-name overrides, e.g. ``{"cx": 2}``.
    """

    def __init__(
        self,
        single_qubit_cycles: int = 1,
        two_qubit_cycles: int = 1,
        swap_cycles: int = 3,
        table: Optional[Dict[str, int]] = None,
    ) -> None:
        for label, value in (
            ("single_qubit_cycles", single_qubit_cycles),
            ("two_qubit_cycles", two_qubit_cycles),
            ("swap_cycles", swap_cycles),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{label} must be a positive integer, got {value!r}")
        self.single_qubit_cycles = single_qubit_cycles
        self.two_qubit_cycles = two_qubit_cycles
        self.swap_cycles = swap_cycles
        self.table = dict(table or {})
        for name, value in self.table.items():
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"latency for {name!r} must be a positive integer")

    def gate_latency(self, gate: Gate) -> int:
        """Latency in cycles of ``gate`` under this model."""
        if gate.name in self.table:
            return self.table[gate.name]
        if gate.is_swap:
            return self.swap_cycles
        if gate.is_two_qubit:
            return self.two_qubit_cycles
        return self.single_qubit_cycles

    def swap_latency(self) -> int:
        """Latency in cycles of an inserted SWAP gate."""
        return self.table.get("swap", self.swap_cycles)

    def __repr__(self) -> str:
        return (
            f"LatencyModel(1q={self.single_qubit_cycles}, "
            f"2q={self.two_qubit_cycles}, swap={self.swap_cycles}, "
            f"table={self.table})"
        )


def uniform_latency(gate_cycles: int = 1, swap_cycles: int = 1) -> LatencyModel:
    """Every gate takes ``gate_cycles``; a SWAP takes ``swap_cycles``."""
    return LatencyModel(
        single_qubit_cycles=gate_cycles,
        two_qubit_cycles=gate_cycles,
        swap_cycles=swap_cycles,
    )


#: Latency used for the QFT exact analysis (Section 6.1.1): every step —
#: whether a generic two-qubit gate or a SWAP — is one cycle.
QFT_LATENCY = uniform_latency(gate_cycles=1, swap_cycles=1)

#: Latency used in Table 2 (OLSQ comparison): gates 1 cycle, SWAP 3 cycles.
OLSQ_LATENCY = uniform_latency(gate_cycles=1, swap_cycles=3)

#: Latency used in Tables 1 and 3: single-qubit 1, CX 2, SWAP 6.
IBM_LATENCY = LatencyModel(
    single_qubit_cycles=1,
    two_qubit_cycles=2,
    swap_cycles=6,
)

#: Alias making benchmark code self-describing.
TABLE1_LATENCY = IBM_LATENCY
TABLE3_LATENCY = IBM_LATENCY
