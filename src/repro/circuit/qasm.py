"""A small OpenQASM 2.0 reader/writer.

Supports the subset needed for the paper's benchmark suites (RevLib dumps,
Qiskit exports): a single ``qreg`` (or several, flattened in declaration
order), standard-library gates with optional parenthesised parameters,
``barrier`` and ``measure`` statements (ignored for mapping purposes), and
comments.  Parameters are parsed as Python arithmetic with ``pi`` available.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .circuit import Circuit
from .gate import Gate

_QREG_RE = re.compile(r"qreg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")
_ARG_RE = re.compile(r"([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(r"^([A-Za-z_][\w]*)\s*(\(([^)]*)\))?\s*(.*)$")


class QasmError(ValueError):
    """Raised when the input is not parseable OpenQASM 2.0."""


def _eval_param(text: str) -> float:
    """Evaluate a parameter expression such as ``pi/4`` or ``-3*pi/8``."""
    cleaned = text.strip()
    if not re.fullmatch(r"[\d\.eE\+\-\*/\(\)\s]*(pi[\d\.eE\+\-\*/\(\)\s]*)*", cleaned):
        raise QasmError(f"unsupported parameter expression: {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {"pi": math.pi}))
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter {text!r}") from exc


def parse_qasm(text: str, name: str = "") -> Circuit:
    """Parse OpenQASM 2.0 source into a :class:`Circuit`.

    Multiple ``qreg`` declarations are flattened into one logical qubit
    space in declaration order.  ``measure``, ``barrier``, ``creg``,
    ``include`` and ``OPENQASM`` lines are accepted and skipped.

    Args:
        text: The QASM source.
        name: Optional circuit name for the result.
    """
    # Strip comments, then split on ';'.
    text = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in text.split(";") if s.strip()]

    reg_offset: Dict[str, int] = {}
    total_qubits = 0
    gates: List[Gate] = []

    def resolve(arg: str) -> int:
        match = _ARG_RE.fullmatch(arg.strip())
        if not match:
            raise QasmError(f"cannot parse qubit argument {arg!r}")
        reg, idx = match.group(1), int(match.group(2))
        if reg not in reg_offset:
            raise QasmError(f"unknown register {reg!r}")
        return reg_offset[reg] + idx

    for statement in statements:
        lowered = statement.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        qreg = _QREG_RE.fullmatch(statement)
        if qreg:
            reg_offset[qreg.group(1)] = total_qubits
            total_qubits += int(qreg.group(2))
            continue
        if _CREG_RE.fullmatch(statement):
            continue
        if lowered.startswith("barrier") or lowered.startswith("measure"):
            continue
        match = _GATE_RE.match(statement)
        if not match:
            raise QasmError(f"cannot parse statement {statement!r}")
        gname, _, params_text, args_text = match.groups()
        params: Tuple[float, ...] = ()
        if params_text:
            params = tuple(_eval_param(p) for p in params_text.split(","))
        qubits = tuple(resolve(a) for a in args_text.split(",") if a.strip())
        if not qubits:
            raise QasmError(f"gate statement without qubits: {statement!r}")
        gates.append(Gate(gname.lower(), qubits, params))

    if total_qubits == 0:
        raise QasmError("no qreg declaration found")
    return Circuit(total_qubits, gates, name=name)


def to_qasm(circuit: Circuit, register: str = "q") -> str:
    """Serialize a circuit as OpenQASM 2.0 text.

    The paper's generic two-qubit gate ``gt`` is emitted as a ``cz`` with a
    preceding comment so the output is loadable by standard tools.

    Args:
        circuit: Circuit to serialize.
        register: Quantum register name to use.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register}[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        name = gate.name
        if name == "gt":
            lines.append("// generic two-qubit gate (paper's GT), emitted as cz")
            name = "cz"
        args = ",".join(f"{register}[{q}]" for q in gate.qubits)
        if gate.params:
            params = ",".join(f"{p:.12g}" for p in gate.params)
            lines.append(f"{name}({params}) {args};")
        else:
            lines.append(f"{name} {args};")
    return "\n".join(lines) + "\n"


def load_qasm_file(path: str) -> Circuit:
    """Read a ``.qasm`` file from disk and parse it."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_qasm(text, name=path)
