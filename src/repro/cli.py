"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``map`` — route a circuit (QASM file or built-in benchmark) onto an
  architecture with a chosen mapper and print the verified schedule;
* ``diagnose`` — analyze an expansion-level search trace recorded with
  ``map --search-trace``: pruning attribution, heuristic-accuracy
  audit, frontier dynamics, incumbent timeline;
* ``obs-report`` — render a telemetry JSONL file or a fleet shard
  directory (``map-batch --telemetry-dir``) as a human summary table
  or Prometheus text exposition format;
* ``corpus`` — corpus-scale throughput sweep: map a seeded benchmark
  request stream across the worker pool and report circuits/min
  (optionally vs the static-chunk cold-cache baseline, with the
  ``corpus_fleet`` suite recorded for ``bench-trend --check``);
* ``benchmarks`` — list the regenerable benchmark names;
* ``bench-trend`` — tabulate the recorded search-perf trajectory
  (``benchmarks/results/BENCH_search.json``); ``--check`` turns it
  into a CI perf-regression gate;
* ``runs`` — query the persistent run ledger (``--ledger-dir`` /
  ``$REPRO_LEDGER_DIR``): ``list`` / ``show`` / counter-by-counter
  ``diff`` / ledger-wide ``regressions`` scan / ``gc --keep N``;
* ``top`` — live fleet monitor over a ``--telemetry-dir``: per-worker
  throughput, queue depth, warm-cache hit rate, incumbent timeline;
* ``archs`` — list the built-in architectures.

Examples::

    python -m repro map --circuit qft:6 --arch lnn-6 --mapper optimal \
        --latency qft
    python -m repro map --circuit examples.qasm --arch tokyo \
        --mapper heuristic --latency ibm
    python -m repro map --circuit bench:adder --arch grid2by3 \
        --mapper optimal --latency olsq --search-initial
    python -m repro map --circuit qft:5 --arch lnn-5 \
        --trace --metrics-out telemetry.jsonl --progress
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .arch import architecture_names, by_name
from .baselines import (
    OlsqStyleMapper,
    SabreMapper,
    TrivialMapper,
    ZulehnerMapper,
)
from .benchcircuits import benchmark_circuit, benchmark_names
from .circuit import (
    Circuit,
    IBM_LATENCY,
    OLSQ_LATENCY,
    QFT_LATENCY,
    LatencyModel,
    load_qasm_file,
    to_qasm,
    uniform_latency,
)
from .circuit.generators import qft_skeleton, random_circuit
from .core import HeuristicMapper, OptimalMapper, SearchBudgetExceeded
from .obs import JsonlSink, Telemetry, TraceRecorder
from .verify import validate_result

_LATENCIES = {
    "unit": uniform_latency(1, 3),
    "qft": QFT_LATENCY,
    "olsq": OLSQ_LATENCY,
    "ibm": IBM_LATENCY,
}


def _load_circuit(spec: str) -> Circuit:
    """Resolve a circuit spec: ``qft:N``, ``random:N:G[:SEED]``,
    ``bench:NAME``, or a ``.qasm`` path."""
    if spec.startswith("qft:"):
        return qft_skeleton(int(spec.split(":", 1)[1]))
    if spec.startswith("random:"):
        parts = spec.split(":")[1:]
        n, gates = int(parts[0]), int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
        return random_circuit(n, gates, seed=seed)
    if spec.startswith("bench:"):
        return benchmark_circuit(spec.split(":", 1)[1])
    return load_qasm_file(spec)


#: The four literature-grade pruning levers shared by ``optimal`` and
#: ``portfolio``: mapper keyword → CLI attribute.  Tri-state flags
#: (``--X`` / ``--no-X`` / absent), so each mapper keeps its own default
#: (all off for ``optimal``, all on for ``portfolio``) unless overridden.
_BOUND_FLAGS = {
    "assignment_bound": "assignment_bound",
    "layer_bound": "layer_bound",
    "root_restriction": "root_restriction",
    "closed_dominance": "closed_dominance",
}


def _bound_kwargs(args, default: bool) -> dict:
    kwargs = {}
    for keyword, attr in _BOUND_FLAGS.items():
        value = getattr(args, attr, None)
        kwargs[keyword] = default if value is None else value
    return kwargs


def _build_mapper(name: str, coupling, latency: LatencyModel, args,
                  telemetry: Optional[Telemetry] = None):
    if name == "optimal":
        # map-batch shares this builder but lacks the bound-and-prune
        # flags; fall back to the library defaults there.
        return OptimalMapper(
            coupling,
            latency,
            search_initial_mapping=args.search_initial,
            max_nodes=getattr(args, "max_nodes", None),
            max_seconds=args.budget,
            deadline=getattr(args, "deadline", None),
            prune_swaps=not getattr(args, "no_prune_swaps", False),
            seed_incumbent=not getattr(args, "no_seed_incumbent", False),
            reduce_symmetry=not getattr(
                args, "no_symmetry_reduction", False
            ),
            mode2_workers=getattr(args, "mode2_workers", None),
            telemetry=telemetry,
            kernel=getattr(args, "kernel", None),
            **_bound_kwargs(args, default=False),
        )
    if name == "portfolio":
        from .analysis.portfolio import PortfolioMapper

        lanes = [
            lane.strip()
            for lane in getattr(
                args, "portfolio_lanes", "exact,heuristic,sabre"
            ).split(",")
            if lane.strip()
        ]
        # The exhaustion promotion needs the exact lane's space to cover
        # the side lanes' placements, so the portfolio always runs mode 2
        # (--search-initial is implied).
        return PortfolioMapper(
            coupling,
            latency,
            lanes=lanes,
            deadline=getattr(args, "deadline", None),
            max_nodes=getattr(args, "max_nodes", None),
            max_seconds=args.budget,
            sabre_seed=args.seed,
            telemetry=telemetry,
            kernel=getattr(args, "kernel", None),
            **_bound_kwargs(args, default=True),
        )
    if name == "heuristic":
        return HeuristicMapper(
            coupling, latency, telemetry=telemetry,
            kernel=getattr(args, "kernel", None),
        )
    if name == "sabre":
        return SabreMapper(
            coupling, latency, seed=args.seed, telemetry=telemetry
        )
    if name == "zulehner":
        return ZulehnerMapper(coupling, latency, telemetry=telemetry)
    if name == "olsq":
        return OlsqStyleMapper(
            coupling, latency, max_seconds=args.budget, telemetry=telemetry
        )
    if name == "trivial":
        return TrivialMapper(coupling, latency, telemetry=telemetry)
    raise KeyError(name)


def _open_ledger_run(args, kind: str, config: dict):
    """Open a run-ledger entry when a ledger is configured; else None.

    The ledger activates only when ``--ledger-dir`` is given or
    ``$REPRO_LEDGER_DIR`` is set — never by default, so ordinary
    invocations (and the test suite) write nothing outside the paths
    they were asked to.  A ledger that cannot be opened degrades to a
    stderr warning rather than failing the mapping run itself.
    """
    import os

    from .obs.ledger import LEDGER_ENV, RunLedger

    root = getattr(args, "ledger_dir", None) or os.environ.get(LEDGER_ENV)
    if not root:
        return None
    try:
        return RunLedger(root).open_run(kind, config)
    except OSError as exc:
        print(f"warning: run ledger disabled: {exc}", file=sys.stderr)
        return None


def _finish_ledger_run(run, status: str = "ok", stats=None, error=None,
                       extra=None) -> None:
    """Record the run's index row and tell the user where (stderr, so
    stdout stays exactly the mapping report scripts already parse)."""
    if run is None:
        return
    run.finish(status, stats=stats, error=error, extra=extra)
    print(
        f"recorded run {run.run_id} in ledger {run.ledger.root}",
        file=sys.stderr,
    )


def _build_telemetry(args, run_id: Optional[str] = None) -> Optional[Telemetry]:
    """Telemetry context for ``map``; None when no flag asks for one.

    Span/metrics/progress flags instrument the search itself
    (``hot_path=True`` — the mapper runs its instrumented branch);
    ``--sample-resources`` / ``--profile`` alone attach only the
    flight recorder, leaving the search on the uninstrumented fast
    path.
    """
    search_trace_path = getattr(args, "search_trace", None)
    hot_path = bool(
        args.trace or args.metrics_out or args.progress or search_trace_path
    )
    flight_recorder = bool(
        getattr(args, "sample_resources", False)
        or getattr(args, "profile", False)
    )
    if not (hot_path or flight_recorder):
        return None
    if args.metrics_out:
        try:  # fail now, not mid-search when the sink lazily opens
            open(args.metrics_out, "w", encoding="utf-8").close()
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write --metrics-out {args.metrics_out}: {exc}"
            )
        sink = JsonlSink(args.metrics_out)
    else:
        sink = None
    search_trace = None
    if search_trace_path:
        try:
            open(search_trace_path, "w", encoding="utf-8").close()
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write --search-trace "
                f"{search_trace_path}: {exc}"
            )
        search_trace = TraceRecorder(
            sink=JsonlSink(search_trace_path),
            mode=args.search_trace_mode,
            ring_size=args.search_trace_ring,
            sample_every=args.search_trace_sample,
        )
    telemetry = Telemetry(
        trace=args.trace,
        sink=sink,
        progress_every=args.progress_every,
        search_trace=search_trace,
        sample_resources=getattr(args, "sample_resources", False),
        resource_interval=getattr(args, "resource_interval", 0.05),
        profile=getattr(args, "profile", False),
        profile_interval=getattr(args, "profile_interval", 0.005),
        profile_collapsed=getattr(args, "profile_out", None),
        hot_path=hot_path,
        run_id=run_id,
    )
    if args.progress:
        telemetry.progress.subscribe(
            lambda event: print(event, file=sys.stderr)
        )
    return telemetry


def _finish_telemetry(args, telemetry: Optional[Telemetry]) -> None:
    """Flush one ``map`` run's telemetry and report where it went."""
    if telemetry is None:
        return
    record = telemetry.finish() or {}
    if getattr(args, "sample_resources", False) and "resources" in record:
        res = record["resources"]
        peak = res.get("peak_rss_bytes") or 0
        print(
            f"resources: peak_rss={peak / (1024 * 1024):.1f}MiB "
            f"cpu_user={res.get('cpu_user_s', 0.0)}s "
            f"cpu_sys={res.get('cpu_sys_s', 0.0)}s "
            f"gc_windows={res.get('gc_windows', 0)} "
            f"gc_suspended={res.get('gc_suspended_s', 0.0)}s",
            file=sys.stderr,
        )
    if getattr(args, "profile", False) and telemetry.profiler is not None:
        print(telemetry.profiler.render_table(), file=sys.stderr)
        if getattr(args, "profile_out", None):
            print(f"wrote collapsed stacks to {args.profile_out}",
                  file=sys.stderr)
    if args.metrics_out:
        print(f"wrote telemetry to {args.metrics_out}")
    if getattr(args, "search_trace", None):
        print(f"wrote search trace to {args.search_trace}")


def _print_stats(stats: dict) -> None:
    cells = "  ".join(
        f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
        for key, value in stats.items()
    )
    print(f"stats    : {cells}")


def _map_run_config(args, circuit, coupling, latency) -> dict:
    """The reproducible configuration of one ``map`` invocation.

    Circuit and (coupling, latency) structure are captured as content
    digests — the same fingerprints the warm cache keys on — so two
    runs group together exactly when they solved the same problem with
    the same mapper and flags, regardless of file paths or spec
    spelling (``qft:5`` vs an equivalent QASM file).
    """
    from .core.warmcache import arch_fingerprint, circuit_fingerprint

    config = {
        "command": "map",
        "circuit": args.circuit,
        "circuit_sha": circuit_fingerprint(circuit)[:16],
        "arch": args.arch,
        "arch_sha": arch_fingerprint(coupling, latency)[:16],
        "latency": args.latency,
        "mapper": args.mapper,
        "kernel": getattr(args, "kernel", None),
        "search_initial": bool(getattr(args, "search_initial", False)),
        "seed": getattr(args, "seed", 0),
        "budget": args.budget,
        "deadline": getattr(args, "deadline", None),
        "max_nodes": getattr(args, "max_nodes", None),
        "mode2_workers": getattr(args, "mode2_workers", None),
        "prune_swaps": not getattr(args, "no_prune_swaps", False),
        "seed_incumbent": not getattr(args, "no_seed_incumbent", False),
        "symmetry_reduction": not getattr(
            args, "no_symmetry_reduction", False
        ),
    }
    for keyword, attr in _BOUND_FLAGS.items():
        config[keyword] = getattr(args, attr, None)
    if args.mapper == "portfolio":
        config["portfolio_lanes"] = getattr(args, "portfolio_lanes", None)
    return config


def _register_map_artifacts(args, run) -> None:
    """Point the run's index row at every output file the flags named."""
    if run is None:
        return
    for name, attr in (
        ("metrics", "metrics_out"),
        ("search_trace", "search_trace"),
        ("qasm", "qasm_out"),
        ("profile", "profile_out"),
        ("telemetry_dir", "telemetry_dir"),
    ):
        path = getattr(args, attr, None)
        if path:
            run.add_artifact(name, path)


def _cmd_map(args) -> int:
    circuit = _load_circuit(args.circuit)
    coupling = by_name(args.arch)
    latency = _LATENCIES[args.latency]
    run = _open_ledger_run(
        args, "map", _map_run_config(args, circuit, coupling, latency)
    )
    run_id = run.run_id if run is not None else None
    telemetry = _build_telemetry(args, run_id=run_id)
    mapper = _build_mapper(args.mapper, coupling, latency, args, telemetry)
    if getattr(args, "telemetry_dir", None):
        # Fleet telemetry for the mode-2 fan-out workers: each worker
        # process writes its own shard under this directory and the
        # coordinator merges them (see repro.obs.export).  The run_id
        # rides along as the correlation ID stamped into every shard.
        from .obs.telemetry import TelemetrySpec

        mapper.telemetry_spec = TelemetrySpec(
            directory=args.telemetry_dir, run_id=run_id
        )
    try:
        result = mapper.map(circuit)
    except SearchBudgetExceeded as exc:
        print(f"search budget exceeded: {exc}", file=sys.stderr)
        if exc.partial_stats:
            _print_stats(exc.partial_stats)
        if telemetry is not None and args.trace:
            print(telemetry.tracer.render_tree())
        _finish_telemetry(args, telemetry)
        _register_map_artifacts(args, run)
        _finish_ledger_run(
            run, "budget", stats=exc.partial_stats, error=str(exc)
        )
        return 2
    validate_result(result)
    print(result.describe(max_ops=args.max_ops))
    if telemetry is not None:
        _print_stats(result.stats)
    if args.timeline:
        from .analysis.render import render_timeline

        print()
        print(render_timeline(result))
    if args.trace and telemetry is not None:
        print()
        print(telemetry.tracer.render_tree())
    if args.qasm_out:
        with open(args.qasm_out, "w", encoding="utf-8") as handle:
            handle.write(to_qasm(result.to_physical_circuit()))
        print(f"\nwrote transformed circuit to {args.qasm_out}")
    _finish_telemetry(args, telemetry)
    _register_map_artifacts(args, run)
    _finish_ledger_run(
        run,
        "ok",
        stats=result.stats,
        extra={
            "depth": result.depth,
            "swaps": result.num_inserted_swaps,
            "optimal": result.optimal,
        },
    )
    return 0


def _record_from_json(payload: dict):
    """Rehydrate a ``--json-out`` record dict into a ``BatchRecord``.

    Used by ``map-batch --resume`` so already-mapped circuits render in
    the table and re-serialize without re-running.
    """
    from .analysis.batch import BatchRecord

    return BatchRecord(
        label=payload.get("label", "?"),
        ok=bool(payload.get("ok")),
        seconds=payload.get("seconds") or 0.0,
        depth=payload.get("depth"),
        swaps=payload.get("swaps"),
        stats=payload.get("stats") or {},
        error=payload.get("error"),
        peak_rss_bytes=payload.get("peak_rss_bytes"),
        error_type=payload.get("error_type"),
        traceback=payload.get("traceback"),
    )


def _cmd_map_batch(args) -> int:
    import glob as _glob
    import json
    import os

    from .analysis.batch import BatchTask, map_many, summarize
    from .obs.schema import (
        REQUIRED_STAT_KEYS,
        STAT_KERNEL_BACKEND,
        STAT_SECONDS,
        stats_row,
    )

    coupling = by_name(args.arch)
    latency = _LATENCIES[args.latency]
    paths = sorted(
        _glob.glob(os.path.join(args.dir, args.glob))
    )
    if not paths:
        print(
            f"error: no files match {args.glob!r} in {args.dir}",
            file=sys.stderr,
        )
        return 1

    done = {}
    if args.resume:
        if not args.json_out:
            print(
                "error: --resume needs --json-out (it is the record of "
                "what already ran)",
                file=sys.stderr,
            )
            return 1
        if os.path.exists(args.json_out):
            try:
                with open(args.json_out, "r", encoding="utf-8") as handle:
                    prior = json.load(handle)
            except ValueError as exc:
                print(
                    f"error: --resume: {args.json_out} is not valid JSON: "
                    f"{exc}",
                    file=sys.stderr,
                )
                return 1
            done = {
                rec.get("label"): rec
                for rec in prior.get("records") or []
                if rec.get("ok")  # failed circuits re-run on resume
            }

    tasks = []
    resumed = []
    for path in paths:
        label = os.path.splitext(os.path.basename(path))[0]
        if label in done:
            resumed.append(_record_from_json(done[label]))
            continue
        try:
            circuit = load_qasm_file(path)
        except Exception as exc:
            print(f"error: cannot load {path}: {exc}", file=sys.stderr)
            return 1
        tasks.append(
            BatchTask(
                label=label,
                circuit=circuit,
                mapper=_build_mapper(args.mapper, coupling, latency, args),
            )
        )
    if args.resume and resumed:
        print(
            f"resume: {len(resumed)}/{len(paths)} circuits already mapped "
            f"in {args.json_out}; running the remaining {len(tasks)}"
        )

    import hashlib

    labels = [os.path.splitext(os.path.basename(p))[0] for p in paths]
    run = _open_ledger_run(args, "map-batch", {
        "command": "map-batch",
        "dir": os.path.abspath(args.dir),
        "glob": args.glob,
        "circuits": len(paths),
        "labels_sha": hashlib.sha256(
            "|".join(labels).encode()
        ).hexdigest()[:16],
        "arch": args.arch,
        "latency": args.latency,
        "mapper": args.mapper,
        "kernel": getattr(args, "kernel", None),
        "search_initial": bool(args.search_initial),
        "seed": args.seed,
        "workers": args.workers,
        "scheduler": args.scheduler,
        "warm_cache": not args.no_warm_cache,
        "max_nodes": args.max_nodes,
        "budget": args.budget,
    })
    if run is not None and not args.telemetry_dir:
        # A ledgered batch always gets fleet telemetry: default the
        # shard directory into the run's own artifact directory so the
        # run_id lands in every worker shard and the fleet.json rollup.
        args.telemetry_dir = run.artifact_path("fleet")

    telemetry_spec = None
    if args.telemetry_dir:
        from .obs.telemetry import TelemetrySpec

        telemetry_spec = TelemetrySpec(
            directory=args.telemetry_dir,
            run_id=run.run_id if run is not None else None,
        )

    records = map_many(
        tasks,
        max_workers=args.workers,
        max_nodes=args.max_nodes,
        max_seconds=args.budget,
        keep_results=False,
        telemetry_spec=telemetry_spec,
        scheduler=args.scheduler,
        warm_cache=not args.no_warm_cache,
    )
    if resumed:
        # Re-interleave resumed records into path order for the report.
        fresh = {rec.label: rec for rec in records}
        kept = {rec.label: rec for rec in resumed}
        records = []
        for path in paths:
            label = os.path.splitext(os.path.basename(path))[0]
            record = fresh.get(label) or kept.get(label)
            if record is not None:
                records.append(record)

    columns = [k for k in REQUIRED_STAT_KEYS if k != "mapper"]
    header = f"{'circuit':24s} {'ok':>3} {'depth':>6} {'swaps':>6}" + "".join(
        f" {column:>20}" for column in columns
    )
    print(header)
    for rec in records:
        row = stats_row(rec.stats)
        cells = ""
        for column in columns:
            value = row.get(column)
            if value is None:
                cells += f" {'—':>20}"
            elif column == STAT_SECONDS:
                cells += f" {value:>20.4f}"
            else:
                cells += f" {value:>20}"
        depth = "—" if rec.depth is None else rec.depth
        swaps = "—" if rec.swaps is None else rec.swaps
        print(
            f"{rec.label:24s} {'yes' if rec.ok else 'NO':>3} {depth:>6} "
            f"{swaps:>6}{cells}"
        )
        if rec.error:
            print(f"{'':24s}  ^ {rec.error}")
    totals = summarize(records)
    print(
        f"\n{totals['succeeded']}/{totals['tasks']} mapped, "
        f"{totals['total_nodes_expanded']} nodes expanded, "
        f"{totals['total_seconds']:.2f}s total mapping time"
    )
    if telemetry_spec is not None:
        from .obs.export import FLEET_ROLLUP_NAME

        print(
            f"wrote worker telemetry shards and {FLEET_ROLLUP_NAME} to "
            f"{args.telemetry_dir} (render with `repro obs-report`)"
        )

    if args.json_out:
        payload = {
            "summary": totals,
            "records": [
                {
                    "label": rec.label,
                    "ok": rec.ok,
                    "depth": rec.depth,
                    "swaps": rec.swaps,
                    "seconds": rec.seconds,
                    "wall_time_s": rec.seconds,
                    "peak_rss_bytes": rec.peak_rss_bytes,
                    "error": rec.error,
                    "error_type": rec.error_type,
                    "traceback": rec.traceback,
                    "stats": stats_row(
                        rec.stats,
                        REQUIRED_STAT_KEYS + (STAT_KERNEL_BACKEND,),
                    ) if rec.stats else None,
                }
                for rec in records
            ],
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote batch report to {args.json_out}")
    if run is not None:
        if args.telemetry_dir:
            run.add_artifact("telemetry_dir", args.telemetry_dir)
        if args.json_out:
            run.add_artifact("batch_report", args.json_out)
    ok = all(rec.ok for rec in records)
    _finish_ledger_run(run, "ok" if ok else "partial", stats=totals)
    return 0 if ok else 2


def _cmd_corpus(args) -> int:
    """Corpus-scale throughput sweep: a seeded benchmark request stream."""
    import json

    from .analysis.corpus import (
        append_corpus_trajectory,
        build_corpus,
        corpus_suite,
        identity_mismatches,
        run_corpus,
    )

    coupling = by_name(args.arch)
    latency = _LATENCIES[args.latency]

    def mapper_factory():
        return _build_mapper(args.mapper, coupling, latency, args)

    try:
        stream = build_corpus(
            args.size,
            max_qubits=coupling.num_qubits,
            repeat_factor=args.repeat_factor,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    distinct = len({label.rsplit("@", 1)[0] for label, _ in stream})
    print(
        f"corpus: {len(stream)} requests over {distinct} distinct "
        f"circuits (repeat factor {args.repeat_factor}, seed "
        f"{args.seed}), arch={args.arch} latency={args.latency} "
        f"mapper={args.mapper}"
    )

    warm = not args.no_warm_cache
    from .core.warmcache import arch_fingerprint

    run = _open_ledger_run(args, "corpus", {
        "command": "corpus",
        "size": args.size,
        "repeat_factor": args.repeat_factor,
        "seed": args.seed,
        "arch": args.arch,
        "arch_sha": arch_fingerprint(coupling, latency)[:16],
        "latency": args.latency,
        "mapper": args.mapper,
        "kernel": getattr(args, "kernel", None),
        "workers": args.workers,
        "scheduler": args.scheduler,
        "warm_cache": warm,
        "max_nodes": args.max_nodes,
        "budget": args.budget,
    })
    if run is not None and not args.telemetry_dir:
        args.telemetry_dir = run.artifact_path("fleet")
    main_label = (
        f"{args.scheduler}+{'warm' if warm else 'cold'}"
    )
    summary = run_corpus(
        stream,
        mapper_factory,
        workers=args.workers,
        scheduler=args.scheduler,
        warm_cache=warm,
        telemetry_dir=args.telemetry_dir,
        max_nodes=args.max_nodes,
        max_seconds=args.budget,
        run_id=run.run_id if run is not None else None,
    )

    def _report(label: str, run: dict) -> None:
        extras = ""
        if run.get("queue_wait_frac") is not None:
            extras += f", queue-wait {run['queue_wait_frac']:.1%}"
        if run.get("warm_cache_hit_rate") is not None:
            extras += f", warm-hit {run['warm_cache_hit_rate']:.1%}"
        print(
            f"{label:14s}: {run['ok']}/{run['circuits']} ok, "
            f"{run['wall_seconds']:.1f}s wall, "
            f"{run['circuits_per_min']:.1f} circuits/min{extras}"
        )

    _report(main_label, summary)
    for rec in summary["records"]:
        if not rec["ok"]:
            print(f"  FAILED {rec['label']}: {rec['error']}")

    suites = {corpus_suite(summary)[0]: corpus_suite(summary)[1]}
    baseline = None
    if args.baseline:
        baseline = run_corpus(
            stream,
            mapper_factory,
            workers=args.workers,
            scheduler="static",
            warm_cache=False,
            telemetry_dir=None,  # keep baseline shards out of the rollup
            max_nodes=args.max_nodes,
            max_seconds=args.budget,
        )
        _report("static+cold", baseline)
        if baseline["circuits_per_min"] > 0:
            speedup = (
                summary["circuits_per_min"] / baseline["circuits_per_min"]
            )
            print(f"{'speedup':14s}: {speedup:.2f}x circuits/min")
            suites[corpus_suite(summary)[0]]["speedup_vs_static"] = round(
                speedup, 4
            )
        name, suite = corpus_suite(baseline, "_static_baseline")
        suites[name] = suite

    identity_failed = False
    if args.verify_identity:
        reference = run_corpus(
            stream,
            mapper_factory,
            workers=1,
            scheduler=args.scheduler,
            warm_cache=warm,
            max_nodes=args.max_nodes,
            max_seconds=args.budget,
        )
        mismatches = identity_mismatches(summary, reference)
        if baseline is not None:
            mismatches += identity_mismatches(baseline, reference)
        if mismatches:
            identity_failed = True
            print(
                f"{'identity':14s}: MISMATCH vs sequential reference",
                file=sys.stderr,
            )
            for line in mismatches[:20]:
                print(f"  {line}", file=sys.stderr)
        else:
            checked = "all configurations" if baseline else main_label
            print(
                f"{'identity':14s}: OK — {checked} bit-identical to the "
                f"sequential reference"
            )

    if args.record:
        entry = append_corpus_trajectory(
            args.bench_json,
            suites,
            run_id=run.run_id if run is not None else None,
            ledger_path=run.ledger.root if run is not None else None,
        )
        print(
            f"recorded corpus_fleet trajectory entry "
            f"(commit {entry['commit']}) in {args.bench_json}"
        )
        if run is not None:
            run.add_artifact("bench_json", args.bench_json)
    if args.json_out:
        payload = {"corpus": summary}
        if baseline is not None:
            payload["static_baseline"] = baseline
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote corpus report to {args.json_out}")
        if run is not None:
            run.add_artifact("corpus_report", args.json_out)
    if run is not None:
        if args.telemetry_dir:
            run.add_artifact("telemetry_dir", args.telemetry_dir)
        # The diffable slice only: numeric throughput facts, no record
        # list, no strings (scheduler/warm live in the config already).
        stats = {
            key: value for key, value in summary.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if identity_failed:
            status = "error"
        else:
            status = "ok" if summary["failed"] == 0 else "partial"
        _finish_ledger_run(
            run, status, stats=stats,
            error="identity mismatch" if identity_failed else None,
        )
    if identity_failed:
        return 1
    return 0 if summary["failed"] == 0 else 2


def _cmd_obs_report(args) -> int:
    """Render telemetry: one run's JSONL or a fleet shard directory."""
    import os

    from .obs.export import (
        fleet_rollup,
        fleet_to_prometheus,
        list_shards,
        render_fleet_table,
        render_run_summary,
        run_to_prometheus,
        summarize_run,
    )
    from .obs.sinks import read_jsonl

    if os.path.isdir(args.path):
        if not list_shards(args.path):
            print(
                f"error: no worker-*.jsonl shards in {args.path} — record "
                "some with `repro map-batch ... --telemetry-dir <dir>`",
                file=sys.stderr,
            )
            return 1
        rollup = fleet_rollup(args.path)
        output = (
            fleet_to_prometheus(rollup) if args.format == "prom"
            else render_fleet_table(rollup)
        )
    else:
        try:
            records = read_jsonl(args.path)
        except OSError as exc:
            print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not records:
            print(
                f"error: no telemetry records in {args.path} — record some "
                "with `repro map ... --metrics-out <path>`",
                file=sys.stderr,
            )
            return 1
        summary = summarize_run(records)
        output = (
            run_to_prometheus(summary) if args.format == "prom"
            else render_run_summary(summary, top_n=args.top)
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output if output.endswith("\n") else output + "\n")
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(output)
    return 0


def _cmd_benchmarks(_args) -> int:
    for name in benchmark_names():
        print(name)
    return 0


def _cmd_diagnose(args) -> int:
    """Analyze a search trace recorded with ``map --search-trace``."""
    import json

    from .analysis.diagnose import diagnose, load_trace, render_report

    try:
        records = load_trace(args.trace_file)
    except OSError as exc:
        print(f"error: cannot read {args.trace_file}: {exc}",
              file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(
            f"error: no trace records in {args.trace_file} — record one "
            "with `repro map ... --search-trace <path>`",
            file=sys.stderr,
        )
        return 1
    report = diagnose(records)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
    print(render_report(report))
    if report["complete"] and not report["consistent"]:
        print(
            "error: complete trace does not reproduce the run's "
            "counters — trace layer and search disagree",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_trend(args) -> int:
    """Tabulate the perf trajectory recorded in ``BENCH_search.json``."""
    import json

    try:
        with open(args.json, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        print(
            f"error: cannot read {args.json}: {exc}\n"
            "run benchmarks/bench_search_perf.py to record a trajectory",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:
        print(f"error: {args.json} is not valid JSON: {exc}",
              file=sys.stderr)
        return 1
    from .analysis.diagnose import KNOWN_BENCH_SCHEMAS, check_trend

    schema = report.get("schema") if isinstance(report, dict) else None
    if schema not in KNOWN_BENCH_SCHEMAS:
        known = ", ".join(KNOWN_BENCH_SCHEMAS)
        print(
            f"error: {args.json} has unknown schema {schema!r} "
            f"(expected one of: {known})\n"
            "re-record it with benchmarks/bench_search_perf.py",
            file=sys.stderr,
        )
        return 1
    trajectory = report.get("trajectory") or []
    if not trajectory:
        print(f"no trajectory entries in {args.json} — run "
              "benchmarks/bench_search_perf.py to record one")
        return 1

    suite_names: list = []
    for entry in trajectory:
        for name in entry.get("suites") or {}:
            if name not in suite_names:
                suite_names.append(name)

    for name in suite_names:
        print(f"{name}:")
        print(f"  {'commit':9s} {'date':21s} {'mode':5s} {'prune':5s} "
              f"{'depth':>5s} {'nodes_expanded':>14s} {'nodes/sec':>12s}")
        for entry in trajectory:
            suite = (entry.get("suites") or {}).get(name)
            if suite is None:
                continue
            depth = suite.get("depth")
            rate = suite.get("nodes_per_sec")
            print(
                f"  {str(entry.get('commit', '?')):9s} "
                f"{str(entry.get('date', '?')):21s} "
                f"{str(entry.get('mode', '?')):5s} "
                f"{str(entry.get('pruning', '?')):5s} "
                f"{'—' if depth is None else depth:>5} "
                f"{suite.get('nodes_expanded', '—'):>14} "
                f"{'—' if rate is None else format(rate, ',.0f'):>12}"
            )
        print()
    print(f"{len(trajectory)} trajectory entries in {args.json}")
    if args.check:
        ok, messages = check_trend(
            report,
            max_node_ratio=args.max_node_ratio,
            max_time_ratio=args.max_time_ratio,
            min_throughput_ratio=args.min_throughput_ratio,
        )
        print()
        for message in messages:
            print(f"  {message}")
        if not ok:
            print("trend check: REGRESSION detected", file=sys.stderr)
            return 1
        print("trend check: ok")
    return 0


def _cmd_runs(args) -> int:
    """Query the persistent run ledger: list/show/diff/regressions/gc."""
    import json

    from .analysis import runs as runs_analysis
    from .obs.ledger import RunLedger

    ledger = RunLedger(args.ledger_dir)
    cmd = args.runs_command
    if cmd == "list":
        rows = runs_analysis.list_runs(
            ledger.runs(), kind=args.kind, limit=args.limit
        )
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(runs_analysis.render_runs_table(rows))
        return 0
    if cmd == "show":
        try:
            row = ledger.get(args.run_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(row, indent=2))
        else:
            print(runs_analysis.render_run(row))
        return 0
    if cmd == "diff":
        try:
            row_a = ledger.get(args.run_a)
            row_b = ledger.get(args.run_b)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        diff, rendered = runs_analysis.diff_pair(
            ledger.runs(), row_a, row_b
        )
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(rendered)
        if args.fail_on_delta and diff["counter_deltas"]:
            return 1
        return 0
    if cmd == "regressions":
        rows = ledger.runs()
        findings = runs_analysis.find_regressions(
            rows,
            max_node_ratio=args.max_node_ratio,
            min_rate_ratio=args.min_rate_ratio,
        )
        scanned = sum(1 for r in rows if r.get("status") == "ok")
        if args.json:
            print(json.dumps(findings, indent=2))
        else:
            print(runs_analysis.render_regressions(
                findings, scanned,
                groups=runs_analysis.fingerprint_groups(rows),
            ))
        return 1 if findings else 0
    if cmd == "gc":
        try:
            pruned = ledger.gc(args.keep)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        noun = "directory" if len(pruned) == 1 else "directories"
        print(
            f"pruned {len(pruned)} run artifact {noun} from "
            f"{ledger.root} (index rows kept)"
        )
        for name in pruned:
            print(f"  {name}")
        return 0
    print(f"error: unknown runs command {cmd!r}", file=sys.stderr)
    return 1


def _cmd_top(args) -> int:
    """Live fleet monitor over a telemetry shard directory."""
    import os

    from .obs.monitor import FleetMonitor

    if not os.path.isdir(args.directory):
        print(
            f"error: {args.directory} is not a directory — point repro top "
            "at the --telemetry-dir of a running map-batch/corpus",
            file=sys.stderr,
        )
        return 1
    FleetMonitor(args.directory).watch(
        interval=args.interval,
        iterations=1 if args.once else None,
        duration=args.duration,
        clear=args.clear,
    )
    return 0


def _cmd_archs(_args) -> int:
    for name in architecture_names():
        arch = by_name(name)
        print(f"{name:16s} {arch.num_qubits:>3} qubits, {len(arch.edges):>3} edges")
    print("parametric     : lnn-N, gridRxC, full-N")
    return 0


def _add_ledger_flag(cmd) -> None:
    cmd.add_argument(
        "--ledger-dir", default=None, metavar="DIR",
        help="record this run in the persistent run ledger under DIR "
             "(default: $REPRO_LEDGER_DIR when set; no ledger otherwise)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Time-Optimal Qubit Mapping (ASPLOS 2021)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    map_cmd = sub.add_parser("map", help="route a circuit onto hardware")
    map_cmd.add_argument(
        "--circuit", required=True,
        help="qft:N | random:N:G[:SEED] | bench:NAME | path/to/file.qasm",
    )
    map_cmd.add_argument("--arch", required=True, help="architecture name")
    map_cmd.add_argument(
        "--mapper",
        default="optimal",
        choices=["optimal", "heuristic", "sabre", "zulehner", "olsq",
                 "trivial", "portfolio"],
    )
    map_cmd.add_argument(
        "--latency", default="unit", choices=sorted(_LATENCIES)
    )
    map_cmd.add_argument(
        "--search-initial", action="store_true",
        help="optimal mode 2: search the initial mapping too",
    )
    map_cmd.add_argument("--budget", type=float, default=None,
                         help="optimal-search wall-clock budget (s)")
    map_cmd.add_argument(
        "--deadline", type=float, default=None,
        help="anytime budget (s): return the best incumbent schedule "
             "(optimal=False) instead of raising when it expires",
    )
    map_cmd.add_argument(
        "--no-prune-swaps", action="store_true",
        help="disable the loss-free active-SWAP candidate restriction "
             "(ablation)",
    )
    map_cmd.add_argument(
        "--no-seed-incumbent", action="store_true",
        help="do not seed the exact search's upper bound with a "
             "heuristic run (ablation)",
    )
    map_cmd.add_argument(
        "--no-symmetry-reduction", action="store_true",
        help="do not deduplicate mode-2 initial mappings up to "
             "coupling-graph automorphism (ablation)",
    )
    map_cmd.add_argument(
        "--assignment-bound", action=argparse.BooleanOptionalAction,
        default=None,
        help="assignment-relaxation lower bound on suffix work "
             "(default: off for optimal, on for portfolio)",
    )
    map_cmd.add_argument(
        "--layer-bound", action=argparse.BooleanOptionalAction,
        default=None,
        help="layer-weight capacity lower bound "
             "(default: off for optimal, on for portfolio)",
    )
    map_cmd.add_argument(
        "--root-restriction", action=argparse.BooleanOptionalAction,
        default=None,
        help="mode-2 root restriction: skip real-schedule roots placing "
             "no ready 2-qubit gate on an edge "
             "(default: off for optimal, on for portfolio)",
    )
    map_cmd.add_argument(
        "--closed-dominance", action=argparse.BooleanOptionalAction,
        default=None,
        help="let closed filter entries dominate non-descendant "
             "newcomers (default: off for optimal, on for portfolio)",
    )
    map_cmd.add_argument(
        "--portfolio-lanes", default="exact,heuristic,sabre",
        metavar="LANES",
        help="comma-separated portfolio lanes "
             "(subset of exact,heuristic,sabre)",
    )
    map_cmd.add_argument(
        "--max-nodes", type=int, default=None,
        help="node budget for the exact search / exact portfolio lane",
    )
    map_cmd.add_argument(
        "--mode2-workers", type=int, default=None,
        help="optimal mode 2: fan prefix-root mappings out across this "
             "many worker processes (1 = sequential fan-out)",
    )
    map_cmd.add_argument(
        "--kernel", default=None,
        choices=["pure", "vector", "compiled"],
        help="kernel backend for the search hot path (default: best "
             "available — compiled > vector > pure)",
    )
    map_cmd.add_argument("--seed", type=int, default=0)
    map_cmd.add_argument("--max-ops", type=int, default=60)
    map_cmd.add_argument("--timeline", action="store_true",
                         help="print an ASCII qubit/cycle timeline")
    map_cmd.add_argument("--qasm-out", default=None,
                         help="write the transformed circuit as QASM")
    map_cmd.add_argument("--trace", action="store_true",
                         help="record search spans; print the span tree")
    map_cmd.add_argument("--metrics-out", default=None,
                         help="write telemetry (spans, progress events, "
                              "metrics snapshots) as JSONL")
    map_cmd.add_argument("--progress", action="store_true",
                         help="print live search-progress events to stderr")
    map_cmd.add_argument("--progress-every", type=int, default=500,
                         help="expansions between progress events")
    map_cmd.add_argument(
        "--search-trace", default=None, metavar="PATH",
        help="record an expansion-level search trace (JSONL) for "
             "`repro diagnose`",
    )
    map_cmd.add_argument(
        "--search-trace-mode", default="full",
        choices=["full", "ring", "sample"],
        help="trace capture mode: full stream, last-N ring buffer, or "
             "every-Nth sampling (counts stay exact in all modes)",
    )
    map_cmd.add_argument(
        "--search-trace-ring", type=int, default=65536, metavar="N",
        help="ring mode: number of records to keep",
    )
    map_cmd.add_argument(
        "--search-trace-sample", type=int, default=64, metavar="N",
        help="sample mode: record every Nth expand/prune event",
    )
    map_cmd.add_argument(
        "--sample-resources", action="store_true",
        help="flight recorder: sample RSS/CPU/GC in the background "
             "(records go to --metrics-out when set)",
    )
    map_cmd.add_argument(
        "--resource-interval", type=float, default=0.05, metavar="S",
        help="seconds between resource samples",
    )
    map_cmd.add_argument(
        "--profile", action="store_true",
        help="flight recorder: sampling wall-clock profiler with span "
             "and kernel-backend attribution (table on stderr)",
    )
    map_cmd.add_argument(
        "--profile-interval", type=float, default=0.005, metavar="S",
        help="seconds between profiler stack samples",
    )
    map_cmd.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write collapsed stacks (folded format) for flamegraph "
             "tooling",
    )
    map_cmd.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="mode-2 fan-out: per-worker telemetry shards + fleet.json "
             "rollup under DIR",
    )
    _add_ledger_flag(map_cmd)
    map_cmd.set_defaults(func=_cmd_map)

    batch_cmd = sub.add_parser(
        "map-batch",
        help="route a directory of QASM files across a process pool",
    )
    batch_cmd.add_argument(
        "--dir", required=True, help="directory of circuit files"
    )
    batch_cmd.add_argument(
        "--glob", default="*.qasm", help="filename pattern inside --dir"
    )
    batch_cmd.add_argument("--arch", required=True, help="architecture name")
    batch_cmd.add_argument(
        "--mapper",
        default="heuristic",
        choices=["optimal", "heuristic", "sabre", "zulehner", "olsq",
                 "trivial", "portfolio"],
    )
    batch_cmd.add_argument(
        "--portfolio-lanes", default="exact,heuristic,sabre",
        metavar="LANES",
        help="comma-separated lanes for --mapper portfolio",
    )
    batch_cmd.add_argument(
        "--deadline", type=float, default=None,
        help="per-circuit anytime budget (s) for --mapper portfolio",
    )
    batch_cmd.add_argument(
        "--latency", default="unit", choices=sorted(_LATENCIES)
    )
    batch_cmd.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count; 1 = in-process)",
    )
    batch_cmd.add_argument(
        "--max-nodes", type=int, default=None,
        help="per-circuit node budget for the exact search",
    )
    batch_cmd.add_argument("--budget", type=float, default=None,
                           help="per-circuit wall-clock budget (s)")
    batch_cmd.add_argument(
        "--search-initial", action="store_true",
        help="optimal mode 2: search the initial mapping too",
    )
    batch_cmd.add_argument(
        "--kernel", default=None,
        choices=["pure", "vector", "compiled"],
        help="kernel backend for the search hot path (default: best "
             "available — compiled > vector > pure)",
    )
    batch_cmd.add_argument("--seed", type=int, default=0)
    batch_cmd.add_argument("--json-out", default=None,
                           help="write the per-circuit report as JSON")
    batch_cmd.add_argument(
        "--resume", action="store_true",
        help="skip circuits already mapped successfully in the existing "
             "--json-out report; failed circuits re-run",
    )
    batch_cmd.add_argument(
        "--scheduler", default="stealing",
        choices=["stealing", "static"],
        help="work distribution: per-task work-stealing leases (default) "
             "or legacy up-front chunking",
    )
    batch_cmd.add_argument(
        "--no-warm-cache", action="store_true",
        help="disable the per-worker architecture warm cache (shared "
             "distance/automorphism/heuristic-memo artifacts)",
    )
    batch_cmd.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="fleet telemetry: per-worker JSONL shards (resource samples "
             "+ per-task records) and a fleet.json rollup under DIR "
             "(default with --ledger-dir: the run's fleet/ artifact dir)",
    )
    _add_ledger_flag(batch_cmd)
    batch_cmd.set_defaults(func=_cmd_map_batch)

    corpus_cmd = sub.add_parser(
        "corpus",
        help="corpus-scale throughput sweep over a benchmark "
             "request stream",
    )
    corpus_cmd.add_argument(
        "--size", type=int, default=100,
        help="number of mapping requests in the stream",
    )
    corpus_cmd.add_argument(
        "--repeat-factor", type=int, default=10,
        help="average occurrences of each distinct circuit in the stream",
    )
    corpus_cmd.add_argument("--seed", type=int, default=0)
    corpus_cmd.add_argument(
        "--arch", default="tokyo", help="architecture name"
    )
    corpus_cmd.add_argument(
        "--latency", default="ibm", choices=sorted(_LATENCIES)
    )
    corpus_cmd.add_argument(
        "--mapper",
        default="heuristic",
        choices=["optimal", "heuristic", "sabre", "zulehner", "olsq",
                 "trivial", "portfolio"],
    )
    corpus_cmd.add_argument(
        "--portfolio-lanes", default="exact,heuristic,sabre",
        metavar="LANES",
        help="comma-separated lanes for --mapper portfolio",
    )
    corpus_cmd.add_argument(
        "--deadline", type=float, default=None,
        help="per-circuit anytime budget (s) for --mapper portfolio",
    )
    corpus_cmd.add_argument(
        "--workers", type=int, default=4,
        help="worker-process pool size (1 = in-process)",
    )
    corpus_cmd.add_argument(
        "--scheduler", default="stealing",
        choices=["stealing", "static"],
        help="work distribution for the main run",
    )
    corpus_cmd.add_argument(
        "--no-warm-cache", action="store_true",
        help="disable the per-worker architecture warm cache",
    )
    corpus_cmd.add_argument(
        "--baseline", action="store_true",
        help="also run the static-chunk cold-cache baseline and report "
             "the circuits/min speedup",
    )
    corpus_cmd.add_argument(
        "--verify-identity", action="store_true",
        help="re-run the stream sequentially (workers=1) and fail on "
             "any depth/swap/node-count difference",
    )
    corpus_cmd.add_argument(
        "--max-nodes", type=int, default=None,
        help="per-circuit node budget for the exact search",
    )
    corpus_cmd.add_argument("--budget", type=float, default=None,
                            help="per-circuit wall-clock budget (s)")
    corpus_cmd.add_argument(
        "--kernel", default=None,
        choices=["pure", "vector", "compiled"],
        help="kernel backend for the search hot path",
    )
    corpus_cmd.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="fleet telemetry shards + fleet.json for the main run "
             "(queue-wait fraction and warm-cache hit rate come from "
             "here)",
    )
    corpus_cmd.add_argument(
        "--record", action="store_true",
        help="append corpus_fleet suites to the bench trajectory "
             "(--bench-json) for bench-trend gating",
    )
    corpus_cmd.add_argument(
        "--bench-json", default="benchmarks/results/BENCH_search.json",
        help="trajectory file --record appends to",
    )
    corpus_cmd.add_argument("--json-out", default=None,
                            help="write the full corpus report as JSON")
    _add_ledger_flag(corpus_cmd)
    corpus_cmd.set_defaults(func=_cmd_corpus, search_initial=False)

    obs_cmd = sub.add_parser(
        "obs-report",
        help="summarize telemetry JSONL or a fleet shard directory",
    )
    obs_cmd.add_argument(
        "path",
        help="telemetry JSONL file (map --metrics-out) or shard "
             "directory (map-batch --telemetry-dir)",
    )
    obs_cmd.add_argument(
        "--format", default="table", choices=["table", "prom"],
        help="human table or Prometheus text exposition format",
    )
    obs_cmd.add_argument(
        "--top", type=int, default=10,
        help="rows per profiler attribution table",
    )
    obs_cmd.add_argument(
        "--out", default=None,
        help="write the report to a file instead of stdout",
    )
    obs_cmd.set_defaults(func=_cmd_obs_report)

    bench_cmd = sub.add_parser("benchmarks", help="list benchmark names")
    bench_cmd.set_defaults(func=_cmd_benchmarks)

    diag_cmd = sub.add_parser(
        "diagnose",
        help="analyze a search trace recorded with map --search-trace",
    )
    diag_cmd.add_argument(
        "trace_file", help="JSONL trace from map --search-trace"
    )
    diag_cmd.add_argument(
        "--json-out", default=None,
        help="also write the full diagnostics report as JSON",
    )
    diag_cmd.set_defaults(func=_cmd_diagnose)

    trend_cmd = sub.add_parser(
        "bench-trend",
        help="tabulate the recorded search-perf trajectory",
    )
    trend_cmd.add_argument(
        "--json", default="benchmarks/results/BENCH_search.json",
        help="path to the bench_search_perf.py report",
    )
    trend_cmd.add_argument(
        "--check", action="store_true",
        help="compare the newest trajectory entry against prior entries "
             "of the same configuration; exit 1 on regression",
    )
    trend_cmd.add_argument(
        "--max-node-ratio", type=float, default=1.05,
        help="--check: fail when nodes_expanded exceeds this multiple "
             "of the best prior entry",
    )
    trend_cmd.add_argument(
        "--max-time-ratio", type=float, default=3.0,
        help="--check: fail when wall_seconds exceeds this multiple of "
             "the best prior entry (priors under 0.1s never gate)",
    )
    trend_cmd.add_argument(
        "--min-throughput-ratio", type=float, default=0.67,
        help="--check: fail when a fleet suite's circuits_per_min drops "
             "below this fraction of the best prior entry",
    )
    trend_cmd.set_defaults(func=_cmd_bench_trend)

    runs_cmd = sub.add_parser(
        "runs", help="query the persistent run ledger",
    )
    runs_sub = runs_cmd.add_subparsers(dest="runs_command", required=True)

    def _runs_common(cmd):
        _add_ledger_flag(cmd)
        cmd.add_argument(
            "--json", action="store_true",
            help="machine-readable JSON instead of the table",
        )

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    _runs_common(runs_list)
    runs_list.add_argument(
        "--kind", default=None,
        choices=["map", "map-batch", "corpus", "bench"],
        help="only runs of this kind",
    )
    runs_list.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the newest N runs",
    )
    runs_list.set_defaults(func=_cmd_runs)

    runs_show = runs_sub.add_parser(
        "show", help="one run in full: config, stats, artifacts",
    )
    _runs_common(runs_show)
    runs_show.add_argument("run_id", help="run id (unique prefix accepted)")
    runs_show.set_defaults(func=_cmd_runs)

    runs_diff = runs_sub.add_parser(
        "diff", help="two runs counter-by-counter with percent deltas",
    )
    _runs_common(runs_diff)
    runs_diff.add_argument("run_a", help="baseline run id (prefix ok)")
    runs_diff.add_argument("run_b", help="comparison run id (prefix ok)")
    runs_diff.add_argument(
        "--fail-on-delta", action="store_true",
        help="exit 1 when any deterministic counter differs "
             "(timings never count)",
    )
    runs_diff.set_defaults(func=_cmd_runs)

    runs_reg = runs_sub.add_parser(
        "regressions",
        help="scan same-fingerprint runs for node-count or nodes/sec "
             "drift; exit 1 when any is found",
    )
    _runs_common(runs_reg)
    runs_reg.add_argument(
        "--max-node-ratio", type=float, default=1.05,
        help="flag runs expanding more than this multiple of the best "
             "same-fingerprint predecessor's nodes",
    )
    runs_reg.add_argument(
        "--min-rate-ratio", type=float, default=0.67,
        help="flag runs below this fraction of the best predecessor's "
             "nodes/sec (runs under 0.1s never gate)",
    )
    runs_reg.set_defaults(func=_cmd_runs)

    runs_gc = runs_sub.add_parser(
        "gc",
        help="remove artifact directories of all but the newest N runs "
             "(index rows are kept — history stays diffable)",
    )
    _add_ledger_flag(runs_gc)
    runs_gc.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="number of newest runs whose artifacts survive",
    )
    runs_gc.set_defaults(func=_cmd_runs)

    top_cmd = sub.add_parser(
        "top",
        help="live fleet monitor: per-worker throughput, queue depth, "
             "warm-cache hit rate, incumbent timeline",
    )
    top_cmd.add_argument(
        "directory",
        help="the --telemetry-dir of a running map-batch / corpus / "
             "mode-2 fan-out",
    )
    top_cmd.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between refreshes",
    )
    top_cmd.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (scripting/CI)",
    )
    top_cmd.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop watching after S seconds even if the fleet is "
             "still running",
    )
    top_cmd.add_argument(
        "--clear", action=argparse.BooleanOptionalAction, default=None,
        help="ANSI in-place redraw (default: only when stdout is a TTY)",
    )
    top_cmd.set_defaults(func=_cmd_top)

    arch_cmd = sub.add_parser("archs", help="list architectures")
    arch_cmd.set_defaults(func=_cmd_archs)
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
