"""The TOQM search core: optimal A* mapper and the practical variant."""

from .astar import OptimalMapper, SearchBudgetExceeded
from .heuristic import heuristic_cost
from .heuristic_mapper import HeuristicMapper, RoutingFailed
from .problem import MappingProblem
from .result import MappingResult, ScheduledOp

__all__ = [
    "OptimalMapper",
    "HeuristicMapper",
    "MappingProblem",
    "MappingResult",
    "ScheduledOp",
    "heuristic_cost",
    "SearchBudgetExceeded",
    "RoutingFailed",
]
