"""The optimal A* search (paper Sections 4.2, 5, and Fig. 6).

`OptimalMapper` implements the full framework: a priority queue ordered by
the admissible cost ``f(v) = g(v) + h(v)``; the node expander enforcing
coupling, dependency and redundancy constraints; the equivalence/dominance
filter; and the two initial-mapping modes of Section 5.3 —

* **mode 1** — an initial mapping is supplied and only scheduling+SWAP
  insertion is searched;
* **mode 2** — the search is prefixed by up to ``d`` *free* layers of pure
  SWAPs (``d`` = the architecture's longest-simple-path bound) whose cycles
  are not counted, which amounts to searching over initial mappings; each
  distinct mapping is explored at most once (hash filter).

The first terminal node popped from the queue is a time-optimal transformed
circuit (Theorem 5.2).  ``find_all_optimal`` keeps popping to enumerate
every distinct optimal schedule (Appendix B) — modulo schedules the state
filter identifies, which reach identical states at identical cycles.

Observability: pass a :class:`~repro.obs.Telemetry` to record nested spans
(``search`` > ``expand`` > ``heuristic``/``filter``, plus ``prefix``),
metrics snapshotable at any point, and periodic
:class:`~repro.obs.SearchProgressEvent`\\ s.  With no telemetry attached the
search runs the uninstrumented branch — one flag check per expansion.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph, find_swap_free_mapping
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel
from ..obs.events import SearchProgressEvent
from ..obs.schema import (
    MAPPER_TOQM_OPTIMAL,
    STAT_BUDGET_REASON,
    STAT_INCUMBENT_DEPTH,
    STAT_INCUMBENT_UPDATES,
    STAT_KERNEL_BACKEND,
    STAT_CLOSED_DOMINATED,
    STAT_PRUNED_BY_ASSIGNMENT,
    STAT_PRUNED_BY_BOUND,
    STAT_PRUNED_BY_LAYER_WEIGHT,
    STAT_ROOT_RESTRICTED,
    STAT_SWAPS_RESTRICTED,
    STAT_SYMMETRY_PRUNED,
    base_stats,
)
from ..obs.telemetry import Telemetry, resolve
from ..obs.trace import (
    INCUMBENT_SEED,
    INCUMBENT_SHARED,
    INCUMBENT_TERMINAL,
    PRUNE_ASSIGNMENT_LB,
    PRUNE_IDEAL_DEPTH,
    PRUNE_INCUMBENT_BOUND,
    PRUNE_LAYER_WEIGHT,
    PRUNE_ROOT_RESTRICTION,
    PRUNE_SYMMETRY,
)
from ..obs.tracer import (
    SPAN_EXPAND,
    SPAN_FILTER,
    SPAN_HEURISTIC,
    SPAN_PREFIX,
    SPAN_SEARCH,
)
from .bounds import (
    assignment_lb,
    layer_weight_lb,
    root_mapping_allowed,
    root_restriction_pairs,
)
from .expander import OPTIMAL_EXPANSION, PRUNED_OPTIMAL_EXPANSION, expand
from .filters import StateFilter
from .gcpause import pause_gc
from .heuristic import HeuristicMemo, heuristic_cost
from .heuristic_mapper import incumbent_result
from .kernels import resolve_backend
from .problem import MappingProblem
from .result import MappingResult, ScheduledOp
from .state import SearchNode

#: How many expansions between reads of the shared (cross-process)
#: incumbent bound — each read takes the multiprocessing lock, so workers
#: poll it coarsely instead of per node.
_SHARED_BOUND_POLL = 128


class SearchBudgetExceeded(RuntimeError):
    """The node or time budget ran out before an optimal terminal was found.

    Attributes:
        partial_stats: Normalized search counters captured at the moment
            the budget tripped (nodes expanded/generated, filter drops,
            seconds, ``budget_reason``) — a partial run no longer loses
            its telemetry.
    """

    def __init__(self, message: str, partial_stats: Optional[Dict] = None):
        super().__init__(message)
        self.partial_stats: Dict = dict(partial_stats or {})


def _canonical_mapping(
    pos: Tuple[int, ...], auts: Sequence[Tuple[int, ...]]
) -> Tuple[int, ...]:
    """Lexicographic representative of ``pos`` under the automorphisms.

    A collision between two mappings' canonical forms exhibits a concrete
    coupling-graph automorphism between them (``auts`` is drawn from a
    group containing the identity), so deduplicating mode-2 mappings by
    canonical form is loss-free for optimal depth: any schedule from one
    mapping relabels, edge-for-edge and cycle-for-cycle, into a schedule
    from the other.
    """
    best = None
    for pi in auts:
        candidate = tuple(pi[p] for p in pos)
        if best is None or candidate < best:
            best = candidate
    return best


def _recurse_prefix_swaps(
    candidate_swaps: List[Tuple[int, int]],
    node: SearchNode,
    seen: Dict[Tuple[int, ...], int],
    children: List[SearchNode],
    start: int,
    mask: int,
    chosen: List[Tuple[int, int]],
    auts: Optional[Sequence[Tuple[int, ...]]] = None,
    canon_seen: Optional[set] = None,
    counters: Optional[Dict[str, int]] = None,
) -> None:
    """Free-SWAP-layer recursion (module-level so it carries no closure cell;
    a self-referencing nested closure would leave one reference cycle per
    call for the paused collector — see ``gcpause``)."""
    if chosen:
        pos = list(node.pos)
        inv = list(node.inv)
        for p, q in chosen:
            l1, l2 = inv[p], inv[q]
            inv[p], inv[q] = l2, l1
            if l1 >= 0:
                pos[l1] = q
            if l2 >= 0:
                pos[l2] = p
        key = tuple(pos)
        if key not in seen:
            seen[key] = node.prefix_layers + 1
            symmetric_dup = False
            if auts is not None:
                canon = _canonical_mapping(key, auts)
                if canon in canon_seen:
                    symmetric_dup = True
                    if counters is not None:
                        counters["symmetry_pruned"] += 1
                else:
                    canon_seen.add(canon)
            if not symmetric_dup:
                children.append(
                    SearchNode(
                        time=0,
                        pos=key,
                        inv=tuple(inv),
                        ptr=node.ptr,
                        started=0,
                        inflight=(),
                        last_swaps=frozenset(),
                        prev_startable=frozenset(),
                        parent=node,
                        actions=tuple(("s", p, q) for p, q in chosen),
                        prefix_layers=node.prefix_layers + 1,
                    )
                )
    for i in range(start, len(candidate_swaps)):
        p, q = candidate_swaps[i]
        bit = (1 << p) | (1 << q)
        if mask & bit:
            continue
        chosen.append((p, q))
        _recurse_prefix_swaps(candidate_swaps, node, seen, children,
                              i + 1, mask | bit, chosen,
                              auts, canon_seen, counters)
        chosen.pop()


def _recurse_mapping_swaps(
    candidates: List[Tuple[int, int]],
    pos: Tuple[int, ...],
    inv: List[int],
    seen: set,
    produced: List[Tuple[int, ...]],
    start: int,
    mask: int,
    chosen: List[Tuple[int, int]],
) -> None:
    """Disjoint-SWAP-subset recursion over bare mapping tuples (the
    node-free analogue of :func:`_recurse_prefix_swaps`, used to
    pre-enumerate mode-2 roots for the parallel fan-out)."""
    if chosen:
        new_pos = list(pos)
        new_inv = list(inv)
        for p, q in chosen:
            l1, l2 = new_inv[p], new_inv[q]
            new_inv[p], new_inv[q] = l2, l1
            if l1 >= 0:
                new_pos[l1] = q
            if l2 >= 0:
                new_pos[l2] = p
        key = tuple(new_pos)
        if key not in seen:
            seen.add(key)
            produced.append(key)
    for i in range(start, len(candidates)):
        p, q = candidates[i]
        bit = (1 << p) | (1 << q)
        if mask & bit:
            continue
        chosen.append((p, q))
        _recurse_mapping_swaps(candidates, pos, inv, seen, produced,
                               i + 1, mask | bit, chosen)
        chosen.pop()


def enumerate_mode2_mappings(
    problem: MappingProblem,
    try_swap_free_fast_path: bool = True,
    reduce_symmetry: bool = False,
    counters: Optional[Dict[str, int]] = None,
) -> List[Tuple[int, ...]]:
    """Deduplicated initial mappings mode 2 can reach (Section 5.3).

    Breadth-first enumeration over up to ``longest_simple_path_bound()``
    free layers of qubit-disjoint SWAP subsets, seeded from the swap-free
    monomorphism embedding (when one exists) and the identity placement —
    a superset of the mappings the in-search prefix expansion explores,
    so searching each mapping as an independent mode-1 problem and taking
    the minimum reproduces the serial mode-2 optimum.  The parallel
    fan-out (:func:`repro.analysis.batch.map_mode2_fanout`) dispatches
    one worker search per returned mapping.

    With ``reduce_symmetry`` the mappings are additionally deduplicated
    up to coupling-graph automorphism (see :func:`_canonical_mapping`):
    symmetric mappings root isomorphic subtrees with equal optimal depth,
    so one representative per orbit suffices.  ``counters`` (when given)
    receives the number of orbit-mates dropped under
    ``"symmetry_pruned"``.
    """
    num_logical = problem.num_logical
    num_physical = problem.num_physical
    prefix_cap = problem.coupling.longest_simple_path_bound()
    identity = tuple(range(num_logical))
    auts = problem.coupling.automorphisms() if reduce_symmetry else None
    if auts is not None and len(auts) <= 1:
        auts = None
    canon_seen: set = set()

    def admit(mapping: Tuple[int, ...]) -> bool:
        """Record ``mapping``; True when it survives symmetry dedup."""
        seen.add(mapping)
        if auts is None:
            return True
        canon = _canonical_mapping(mapping, auts)
        if canon in canon_seen:
            if counters is not None:
                counters["symmetry_pruned"] = (
                    counters.get("symmetry_pruned", 0) + 1
                )
            return False
        canon_seen.add(canon)
        return True

    order: List[Tuple[int, ...]] = []
    seen: set = set()
    if try_swap_free_fast_path:
        embedding = find_swap_free_mapping(
            problem.circuit.interaction_graph(),
            problem.coupling,
            num_logical,
        )
        if embedding is not None:
            mapping = tuple(embedding[l] for l in range(num_logical))
            if admit(mapping):
                order.append(mapping)
    if identity not in seen and admit(identity):
        order.append(identity)

    def inv_of(pos: Tuple[int, ...]) -> List[int]:
        inv = [-1] * num_physical
        for logical, physical in enumerate(pos):
            inv[physical] = logical
        return inv

    frontier = list(order)
    for _layer in range(prefix_cap):
        next_frontier: List[Tuple[int, ...]] = []
        for pos in frontier:
            inv = inv_of(pos)
            candidates = [
                (p, q)
                for p, q in problem.edges
                if inv[p] >= 0 or inv[q] >= 0
            ]
            produced: List[Tuple[int, ...]] = []
            _recurse_mapping_swaps(
                candidates, pos, inv, seen, produced, 0, 0, []
            )
            if auts is not None:
                kept: List[Tuple[int, ...]] = []
                for mapping in produced:
                    canon = _canonical_mapping(mapping, auts)
                    if canon in canon_seen:
                        if counters is not None:
                            counters["symmetry_pruned"] = (
                                counters.get("symmetry_pruned", 0) + 1
                            )
                        continue
                    canon_seen.add(canon)
                    kept.append(mapping)
                produced = kept
            next_frontier.extend(produced)
            order.extend(produced)
        if not next_frontier:
            break
        frontier = next_frontier
    return order


class OptimalMapper:
    """Time-optimal qubit mapper (the paper's exact mode, Section 6.1).

    Args:
        coupling: Target architecture.
        latency: Latency model (defaults to 1 cycle/gate, 3-cycle SWAP).
        search_initial_mapping: Use mode 2 (free SWAP prefix) to also
            optimize the initial mapping.  Ignored when ``map`` is called
            with an explicit ``initial_mapping``.
        try_swap_free_fast_path: In mode 2, first attempt a subgraph-
            monomorphism embedding of the circuit's interaction graph — the
            fast path the paper applies before the Table 2 runs.
        max_nodes: Abort with :class:`SearchBudgetExceeded` after expanding
            this many nodes (safety valve; optimality needs it unbounded).
        max_seconds: Optional wall-clock budget.
        deadline: Optional *anytime* wall-clock budget in seconds.  Unlike
            ``max_seconds`` (which raises), an expired deadline returns
            the best incumbent schedule found so far — the heuristic seed
            or a terminal discovered during the search — with
            ``optimal=False`` and ``stats["incumbent_depth"]`` set.  Only
            when no incumbent exists at all does the deadline raise.
        prune_swaps: Apply the loss-free active-SWAP candidate
            restriction (only SWAPs incident to operands of pending
            two-qubit gates or to shortest-path qubits between them are
            enumerated).  Depth-preserving for the admissible search; it
            does trim decorative same-depth schedules, so
            :meth:`find_all_optimal` always runs unrestricted.
        seed_incumbent: Run the practical mapper once up front to seed an
            incumbent upper bound ``UB`` (in mode 2, the swap-free
            monomorphism embedding seeds the placement when it exists);
            generated nodes with ``f >= UB`` (``> UB`` when enumerating
            all optima) are pruned at push time, and the bound tightens
            whenever a better terminal is generated (anytime behavior).
        reduce_symmetry: In mode 2, deduplicate initial mappings up to
            coupling-graph automorphism: symmetric mappings root
            isomorphic subtrees of equal optimal depth (gate latencies
            are position-independent), so only one orbit representative
            is searched.  Loss-free for :meth:`map`; orbit-mates are
            distinct schedules, so :meth:`find_all_optimal` always keeps
            symmetry reduction off.
        mode2_workers: When set and mode 2 applies, fan the deduplicated
            prefix-root mappings out across a process pool
            (:func:`repro.analysis.batch.map_mode2_fanout`), sharing the
            best incumbent between workers; ``1`` runs the fan-out
            sequentially in-process (same aggregation, no pool).
            ``None`` keeps the classic single-queue mode-2 search.
        informed: Use the full swap-aware admissible heuristic of Section
            5.1.  When False the search degrades to an uninformed exact
            search guided only by the remaining critical path — the
            configuration the OLSQ-style baseline uses.
        dominance: Enable the comparative-analysis filter (Fig. 5b); the
            equivalence check stays on either way.
        memoize: Cache heuristic evaluations per run, keyed on the node's
            effective signature (pointers, post-SWAP mapping, relative
            in-flight profile).  Purely an evaluation cache — node counts
            and depths are identical with it on or off.
        assignment_bound: Prune real nodes whose assignment-relaxation
            work/capacity bound (:func:`repro.core.bounds.assignment_lb`)
            meets the incumbent; counted separately as
            ``pruned_by_assignment_lb``.
        layer_bound: Compute the layer-weight depth floor
            (:func:`repro.core.bounds.layer_weight_lb`) once per problem;
            it strengthens the mode-2 prefix prune and closes the whole
            search when the incumbent already meets it; counted as
            ``pruned_by_layer_weight``.
        root_restriction: In mode 2, skip the real-schedule expansion of
            candidate initial mappings that place no root-frontier
            two-qubit pair on an edge (loss-free for optimal depth — see
            :func:`repro.core.bounds.root_restriction_pairs`); counted as
            ``root_candidates_restricted``.  Never applied by
            :meth:`find_all_optimal` (folding re-times schedules).
        telemetry: Optional observability context; ``None`` runs the
            uninstrumented fast path.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_TOQM_OPTIMAL

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        search_initial_mapping: bool = False,
        try_swap_free_fast_path: bool = True,
        max_nodes: Optional[int] = None,
        max_seconds: Optional[float] = None,
        deadline: Optional[float] = None,
        prune_swaps: bool = True,
        seed_incumbent: bool = True,
        reduce_symmetry: bool = True,
        mode2_workers: Optional[int] = None,
        informed: bool = True,
        dominance: bool = True,
        memoize: bool = True,
        assignment_bound: bool = False,
        layer_bound: bool = False,
        root_restriction: bool = False,
        closed_dominance: bool = False,
        telemetry: Optional[Telemetry] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency
        self.search_initial_mapping = search_initial_mapping
        self.try_swap_free_fast_path = try_swap_free_fast_path
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.deadline = deadline
        self.prune_swaps = prune_swaps
        self.seed_incumbent = seed_incumbent
        self.reduce_symmetry = reduce_symmetry
        self.mode2_workers = mode2_workers
        self.informed = informed
        self.dominance = dominance
        self.memoize = memoize
        #: Literature-grade admissible bounds (see ``core.bounds``), each
        #: opt-in so default node counts stay bit-identical:
        #: per-node assignment-relaxation work bound, per-problem
        #: layer-weight depth floor, and Burgholzer-style mode-2
        #: root-mapping restriction.
        self.assignment_bound = assignment_bound
        self.layer_bound = layer_bound
        self.root_restriction = root_restriction
        #: Let closed in-flight-free nodes dominate newcomers (see
        #: :class:`~repro.core.filters.StateFilter`); loss-free for
        #: optimal depth, forced off for :meth:`find_all_optimal`.
        self.closed_dominance = closed_dominance
        self.telemetry = telemetry
        #: Kernel backend name (``pure`` / ``vector`` / ``compiled``) or
        #: ``None`` for the capability probe.  Stored as a string and
        #: resolved lazily per search so mappers stay picklable for the
        #: process-pool fan-outs.
        self.kernel = kernel
        #: Cross-process incumbent bound handle
        #: (:class:`repro.analysis.batch.SharedBound`), installed on worker
        #: copies by the mode-2 fan-out; ``None`` for ordinary searches.
        self.shared_incumbent = None
        #: Optional :class:`repro.core.warmcache.ArchContext` installed
        #: by the batch runner; shares per-architecture search artifacts
        #: across tasks.  ``None`` builds a fresh problem per call.
        self.arch_context = None

    def _problem(self, circuit: Circuit) -> MappingProblem:
        """Build (or fetch from the warm cache) the problem instance."""
        context = getattr(self, "arch_context", None)
        if context is not None:
            return context.problem(circuit)
        return MappingProblem(circuit, self.coupling, self.latency)

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Find a time-optimal transformed circuit.

        Args:
            circuit: The logical circuit.
            initial_mapping: Mode-1 initial mapping (``initial_mapping[l]``
                is the physical home of logical ``l``).  When ``None`` and
                ``search_initial_mapping`` is set, mode 2 runs; otherwise
                the identity mapping is used.

        Returns:
            A :class:`MappingResult` with ``optimal=True`` (``False`` only
            when an anytime ``deadline`` expired and the best incumbent is
            returned instead).
        """
        if (
            initial_mapping is None
            and self.search_initial_mapping
            and self.mode2_workers is not None
        ):
            # Parallel mode 2: fan the deduplicated prefix-root mappings
            # out across a process pool.  Imported lazily — batch imports
            # this module.
            from ..analysis.batch import map_mode2_fanout

            return map_mode2_fanout(
                self, circuit, max_workers=self.mode2_workers
            )
        problem = self._problem(circuit)
        terminals = self._search(problem, initial_mapping, find_all=False)
        return terminals[0]

    def find_all_optimal(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
        max_solutions: int = 64,
    ) -> List[MappingResult]:
        """Enumerate distinct optimal schedules (Appendix B).

        Args:
            circuit: The logical circuit.
            initial_mapping: As in :meth:`map`.
            max_solutions: Stop after this many optimal terminals.
        """
        problem = self._problem(circuit)
        return self._search(
            problem, initial_mapping, find_all=True, max_solutions=max_solutions
        )

    # ------------------------------------------------------------------
    def _roots(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
    ) -> Tuple[List[SearchNode], bool, Optional[List[int]]]:
        """Build root node(s).

        Returns ``(roots, prefix_mode, fast_mapping)`` where
        ``fast_mapping`` is the swap-free monomorphism embedding found in
        mode 2 (``None`` otherwise) — used to seed the incumbent
        heuristic run at a known-good placement.
        """
        num_logical = problem.num_logical
        num_physical = problem.num_physical

        def make_root(mapping: Sequence[int], prefix_layers: int) -> SearchNode:
            pos = tuple(mapping)
            inv = [-1] * num_physical
            for logical, physical in enumerate(pos):
                inv[physical] = logical
            return SearchNode(
                time=0,
                pos=pos,
                inv=tuple(inv),
                ptr=(0,) * num_logical,
                started=0,
                inflight=(),
                last_swaps=frozenset(),
                prev_startable=frozenset(),
                parent=None,
                actions=(),
                prefix_layers=prefix_layers,
            )

        if initial_mapping is not None:
            if sorted(set(initial_mapping)) != sorted(initial_mapping) or len(
                initial_mapping
            ) != num_logical:
                raise ValueError("initial mapping must be injective over logicals")
            return [make_root(initial_mapping, -1)], False, None

        if not self.search_initial_mapping:
            return [make_root(range(num_logical), -1)], False, None

        roots = [make_root(range(num_logical), 0)]
        fast_mapping: Optional[List[int]] = None
        if self.try_swap_free_fast_path:
            embedding = find_swap_free_mapping(
                problem.circuit.interaction_graph(),
                problem.coupling,
                num_logical,
            )
            if embedding is not None:
                fast_mapping = [embedding[l] for l in range(num_logical)]
                roots.insert(0, make_root(fast_mapping, 0))
        return roots, True, fast_mapping

    # ------------------------------------------------------------------
    def _search(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        find_all: bool,
        max_solutions: int = 64,
    ) -> List[MappingResult]:
        tele = resolve(self.telemetry)
        if not tele.enabled:
            # The search graph is acyclic (children only reference
            # parents), so the cyclic collector can only cost time here —
            # see ``gcpause`` for the measurement.
            with pause_gc():
                return self._search_loop(
                    problem, initial_mapping, find_all, max_solutions, tele
                )
        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=problem.circuit.name or "<unnamed>",
            gates=problem.num_gates,
            arch=problem.coupling.name,
        ):
            try:
                with pause_gc():
                    solutions = self._search_loop(
                        problem, initial_mapping, find_all, max_solutions, tele
                    )
            except SearchBudgetExceeded as exc:
                if tele.search_trace is not None:
                    tele.search_trace.summary(exc.partial_stats)
                tele.emit_metrics_snapshot(label="budget_exceeded")
                raise
        if tele.search_trace is not None and solutions:
            # The last solution's stats carry the loop's final counters
            # (single-solution searches break right after appending it).
            tele.search_trace.summary(solutions[-1].stats)
        tele.emit_metrics_snapshot(label="search_complete")
        return solutions

    def _search_loop(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        find_all: bool,
        max_solutions: int,
        tele: Telemetry,
    ) -> List[MappingResult]:
        start_clock = _time.perf_counter()
        enabled = tele.enabled
        tracer = tele.tracer
        # Expansion-level trace recorder.  Tracing rides the instrumented
        # branch: ``trace`` is always None on the fast path, so the only
        # cost tracing adds to an untraced run is the existing single
        # ``enabled`` check per expansion.
        trace = tele.search_trace if enabled else None
        kernel = resolve_backend(self.kernel)
        heappush = kernel.heappush
        heappop = kernel.heappop
        kernel_expand = kernel.expand
        roots, prefix_mode, fast_mapping = self._roots(problem, initial_mapping)
        state_filter = StateFilter(
            problem,
            dominance=self.dominance,
            closed_dominance=self.closed_dominance and not find_all,
            metrics=tele.metrics if enabled else None,
            trace=trace,
            kernel=kernel,
        )
        counter = itertools.count()
        heap: List[Tuple[int, int, int, SearchNode]] = []
        seen_prefix_mappings: Dict[Tuple[int, ...], int] = {}
        prefix_cap = (
            self.coupling.longest_simple_path_bound() if prefix_mode else 0
        )
        # Depth on an all-to-all architecture: a lower bound on every
        # schedule from EVERY initial mapping, used to bound-prune prefix
        # nodes (whose own ``f`` is not a valid bound — see ``push``).
        ideal_lb = problem.ideal_depth() if prefix_mode else 0
        # Opt-in literature-grade bounds (core/bounds.py).  ``layer_lb``
        # is mapping-independent like ``ideal_lb`` but usually tighter;
        # it is checked *after* the pre-existing prunes so each counter
        # attributes only the kills the older rules would have missed.
        layer_lb = layer_weight_lb(problem) if self.layer_bound else 0
        use_assignment = self.assignment_bound
        root_pairs = None
        if self.root_restriction and prefix_mode and not find_all:
            root_pairs = root_restriction_pairs(problem)

        # The active-SWAP restriction is depth-preserving but trims
        # decorative same-depth schedules, so the all-optima enumeration
        # always runs unrestricted (see ExpansionConfig.active_swaps_only).
        config = (
            PRUNED_OPTIMAL_EXPANSION
            if self.prune_swaps and not find_all
            else OPTIMAL_EXPANSION
        )
        expand_counters = {"swaps_restricted": 0, "symmetry_pruned": 0}

        # Mode-2 symmetry quotient: initial mappings related by a
        # coupling-graph automorphism root isomorphic subtrees, so the
        # prefix dedup additionally keys on the canonical orbit
        # representative.  All-optima enumeration keeps every orbit-mate
        # (symmetric schedules are distinct solutions).
        auts: Optional[Sequence[Tuple[int, ...]]] = None
        canon_seen: Optional[set] = None
        if prefix_mode and self.reduce_symmetry and not find_all:
            candidates_auts = self.coupling.automorphisms()
            if len(candidates_auts) > 1:
                auts = candidates_auts
                canon_seen = set()

        # --- branch-and-bound incumbent state --------------------------
        # ``bound`` is the depth of the best complete schedule known (the
        # heuristic seed, a terminal generated during this search, or a
        # depth another fan-out worker shared).  Generated nodes with
        # f >= bound (f > bound when enumerating all optima — those must
        # keep equal-f terminals) are pruned at push time; h is admissible,
        # so no strictly better schedule is ever lost, and exhausting the
        # queue proves the incumbent optimal.
        shared = self.shared_incumbent
        prune_eq = not find_all
        bound: Optional[int] = None
        incumbent: Optional[MappingResult] = None
        incumbent_node: Optional[SearchNode] = None
        pruned_by_bound = 0
        pruned_by_assignment = 0
        pruned_by_layer = 0
        root_restricted = 0
        incumbent_updates = 0
        if self.seed_incumbent:
            if initial_mapping is not None:
                seed_map: Optional[Sequence[int]] = initial_mapping
            elif not prefix_mode:
                seed_map = list(range(problem.num_logical))
            else:
                # Mode 2 optimizes over initial mappings, so ANY valid
                # schedule bounds it; start the heuristic at the swap-free
                # embedding when one exists, else let it place on the fly.
                seed_map = fast_mapping
            incumbent = incumbent_result(
                problem.coupling,
                problem.latency,
                problem.circuit,
                initial_mapping=seed_map,
            )
            if incumbent is not None:
                bound = incumbent.depth
                if trace is not None:
                    trace.incumbent(bound, INCUMBENT_SEED)
        if shared is not None:
            shared_depth = shared.peek()
            if shared_depth is not None and (
                bound is None or shared_depth < bound
            ):
                bound = shared_depth
                if trace is not None:
                    trace.incumbent(bound, INCUMBENT_SHARED)
            if incumbent is not None and incumbent.depth is not None:
                shared.offer(incumbent.depth)

        memo = None
        if self.memoize:
            context = getattr(self, "arch_context", None)
            if context is not None:
                # Warm-cache batch runs share the memo across repeats of
                # the same circuit (pure evaluation cache; the config key
                # pins the fixed (window, swap_aware) invariant).  The
                # instrumented branch below still swaps in a metrics-bound
                # per-run memo.
                memo = context.memo(problem, ("optimal", self.informed))
            else:
                memo = HeuristicMemo()
        total_gates = problem.num_gates

        def score(nodes: List[SearchNode]) -> None:
            """Assign h and f for a fan-out batch via the kernel backend."""
            kernel.heuristic_batch(
                problem, nodes, swap_aware=self.informed, memo=memo
            )
            for node in nodes:
                node.f = node.time + node.h

        def push(node: SearchNode) -> None:
            nonlocal bound, incumbent_node, pruned_by_bound, incumbent_updates
            nonlocal pruned_by_assignment, pruned_by_layer
            f = node.f  # score() ran on the batch this node came from
            # Prefix nodes are exempt from the f-based prune: free SWAP
            # layers can still lower ``h`` by improving the mapping, so a
            # prefix node's ``f`` does not bound its prefix-descendants'
            # completions.  The all-to-all critical path does, though — no
            # initial mapping beats ``ideal_lb`` — so once the incumbent
            # reaches it the entire prefix subtree is provably unbeatable
            # (otherwise mode 2 would grind the full mapping space just to
            # certify an incumbent that already equals the optimum).
            if bound is not None:
                lb = ideal_lb if node.in_prefix else f
                if lb > bound or (prune_eq and lb >= bound):
                    # An improving terminal has time < bound and h == 0,
                    # hence f < bound — this prune never discards one.
                    pruned_by_bound += 1
                    return
                # Layer-weight floor: mapping-independent, so it prunes
                # prefix and real nodes alike; an improving terminal has
                # time < bound <= any admissible floor — never discarded.
                if layer_lb and (
                    layer_lb > bound or (prune_eq and layer_lb >= bound)
                ):
                    pruned_by_layer += 1
                    return
                if use_assignment and not node.in_prefix:
                    alb = assignment_lb(problem, node)
                    if alb > bound or (prune_eq and alb >= bound):
                        pruned_by_assignment += 1
                        return
            if (
                node.started == total_gates
                and not node.inflight
                and (bound is None or node.time < bound)
            ):
                bound = node.time
                incumbent_node = node
                incumbent_updates += 1
                state_filter.kill_above_bound(bound)
                if shared is not None:
                    shared.offer(bound)
            heappush(heap, (f, -node.started, next(counter), node))

        if enabled:
            metrics = tele.metrics
            m_expanded = metrics.counter("search.nodes_expanded")
            m_generated = metrics.counter("search.nodes_generated")
            m_heap = metrics.gauge("search.heap_size")
            m_frontier = metrics.gauge("search.best_f")
            m_heuristic_latency = metrics.histogram(
                "heuristic.latency_s", scale=1e-6
            )
            progress_every = tele.progress_every

            if memo is not None:
                memo = HeuristicMemo(metrics=metrics)
            m_pruned_bound = metrics.counter("search.pruned_by_bound")
            m_incumbent_updates = metrics.counter("search.incumbent_updates")
            m_incumbent_depth = metrics.gauge("search.incumbent_depth")
            if bound is not None:
                m_incumbent_depth.set(bound)

            def score(nodes: List[SearchNode]) -> None:  # noqa: F811
                # Instrumented runs keep per-node evaluation: the push
                # variant below times and attributes each one.
                pass

            def push(node: SearchNode) -> None:  # noqa: F811 - timed variant
                nonlocal bound, incumbent_node
                nonlocal pruned_by_bound, incumbent_updates
                nonlocal pruned_by_assignment, pruned_by_layer
                with tracer.span(SPAN_HEURISTIC):
                    t0 = _time.perf_counter()
                    node.h = heuristic_cost(
                        problem,
                        node,
                        swap_aware=self.informed,
                        metrics=metrics,
                        memo=memo,
                    )
                    m_heuristic_latency.observe(_time.perf_counter() - t0)
                f = node.time + node.h
                node.f = f
                # Same prune as the untimed variant: f-based for real
                # nodes, all-to-all critical path for prefix nodes, then
                # the opt-in bounds (attributed only when the older rules
                # would have kept the node).
                if bound is not None:
                    lb = ideal_lb if node.in_prefix else f
                    if lb > bound or (prune_eq and lb >= bound):
                        pruned_by_bound += 1
                        m_pruned_bound.inc()
                        if trace is not None:
                            trace.prune(
                                PRUNE_IDEAL_DEPTH if node.in_prefix
                                else PRUNE_INCUMBENT_BOUND,
                                node=node,
                            )
                        return
                    if layer_lb and (
                        layer_lb > bound or (prune_eq and layer_lb >= bound)
                    ):
                        pruned_by_layer += 1
                        if trace is not None:
                            trace.prune(PRUNE_LAYER_WEIGHT, node=node)
                        return
                    if use_assignment and not node.in_prefix:
                        alb = assignment_lb(problem, node)
                        if alb > bound or (prune_eq and alb >= bound):
                            pruned_by_assignment += 1
                            if trace is not None:
                                trace.prune(PRUNE_ASSIGNMENT_LB, node=node)
                            return
                if (
                    node.started == total_gates
                    and not node.inflight
                    and (bound is None or node.time < bound)
                ):
                    bound = node.time
                    incumbent_node = node
                    incumbent_updates += 1
                    m_incumbent_updates.inc()
                    m_incumbent_depth.set(bound)
                    if trace is not None:
                        trace.incumbent(bound, INCUMBENT_TERMINAL)
                    state_filter.kill_above_bound(bound)
                    if shared is not None:
                        shared.offer(bound)
                heappush(
                    heap, (f, -node.started, next(counter), node)
                )

        root_batch: List[SearchNode] = []
        for root in roots:
            if prefix_mode:
                seen_prefix_mappings.setdefault(root.pos, 0)
                if auts is not None:
                    canon = _canonical_mapping(root.pos, auts)
                    if canon in canon_seen:
                        # A symmetric twin (e.g. the embedding root) is
                        # already being searched.
                        expand_counters["symmetry_pruned"] += 1
                        if trace is not None:
                            trace.prune(PRUNE_SYMMETRY, node=root)
                        continue
                    canon_seen.add(canon)
            root_batch.append(root)
        # Scoring is bound-independent, so batch-scoring the surviving
        # roots then pushing them in order is identical to the old
        # score-inside-push sequence.
        score(root_batch)
        for root in root_batch:
            push(root)
        pushed_roots = len(root_batch)

        expanded = 0
        generated = pushed_roots
        if enabled:
            m_generated.inc(generated)
        redundant = 0
        best_depth: Optional[int] = None
        solutions: List[MappingResult] = []

        def make_stats(**extra) -> Dict[str, float]:
            """Normalized counters at this instant (success or budget)."""
            if memo is not None:
                extra.setdefault("memo_hits", memo.hits)
                extra.setdefault("memo_misses", memo.misses)
            extra.setdefault(STAT_PRUNED_BY_BOUND, pruned_by_bound)
            extra.setdefault(STAT_PRUNED_BY_ASSIGNMENT, pruned_by_assignment)
            extra.setdefault(STAT_PRUNED_BY_LAYER_WEIGHT, pruned_by_layer)
            extra.setdefault(STAT_ROOT_RESTRICTED, root_restricted)
            extra.setdefault(
                STAT_CLOSED_DOMINATED, state_filter.closed_dominated
            )
            extra.setdefault(STAT_INCUMBENT_UPDATES, incumbent_updates)
            extra.setdefault(STAT_KERNEL_BACKEND, kernel.name)
            extra.setdefault(
                STAT_SWAPS_RESTRICTED, expand_counters["swaps_restricted"]
            )
            extra.setdefault(
                STAT_SYMMETRY_PRUNED, expand_counters["symmetry_pruned"]
            )
            if bound is not None and (
                incumbent is not None or incumbent_node is not None
            ):
                extra.setdefault(STAT_INCUMBENT_DEPTH, bound)
            overflow = problem.cache_overflow_total()
            if overflow:
                extra.setdefault("problem_cache_overflow", overflow)
            return base_stats(
                self.mapper_name,
                nodes_expanded=expanded,
                nodes_generated=generated,
                filtered_equivalent=state_filter.equivalent_dropped,
                filtered_dominated=state_filter.dominated_dropped,
                seconds=_time.perf_counter() - start_clock,
                killed=state_filter.killed,
                redundant=redundant,
                distinct_states=state_filter.num_states,
                **extra,
            )

        def release_search_state() -> None:
            # Free the retained node graph by refcount *before* the budget
            # exception unwinds past pause_gc: the traceback would otherwise
            # pin heap/filter/memo alive until after the collector resumes,
            # forcing the deferred gen-0 scan to walk ~1M live objects
            # (measured ~0.65s on the QFT-8 microbench) only to free none.
            heap.clear()
            state_filter.release()
            seen_prefix_mappings.clear()
            if memo is not None:
                memo.table.clear()

        while heap:
            f, _neg_started, _tick, node = heappop(heap)
            if node.killed:
                continue
            if bound is not None:
                # The incumbent may have tightened after the node was
                # queued.  Real nodes re-check their own ``f``; prefix
                # nodes are exempt from that (their free SWAP layers can
                # still improve the mapping below their own ``f``) but
                # fall to the mapping-independent ``ideal_lb`` check.
                if node.in_prefix:
                    if ideal_lb > bound or (prune_eq and ideal_lb >= bound):
                        pruned_by_bound += 1
                        if trace is not None:
                            trace.prune(PRUNE_IDEAL_DEPTH, node=node)
                        continue
                    if layer_lb and (
                        layer_lb > bound or (prune_eq and layer_lb >= bound)
                    ):
                        pruned_by_layer += 1
                        if trace is not None:
                            trace.prune(PRUNE_LAYER_WEIGHT, node=node)
                        continue
                elif f > bound:
                    pruned_by_bound += 1
                    if trace is not None:
                        trace.prune(PRUNE_INCUMBENT_BOUND, node=node)
                    continue
                elif layer_lb and (
                    layer_lb > bound or (prune_eq and layer_lb >= bound)
                ):
                    # The floor binds every node equally: once the
                    # incumbent meets it the queue drains and the dry-
                    # queue path certifies the incumbent optimal.
                    pruned_by_layer += 1
                    if trace is not None:
                        trace.prune(PRUNE_LAYER_WEIGHT, node=node)
                    continue
            if best_depth is not None and f > best_depth:
                break
            if node.started == total_gates and not node.inflight:
                if best_depth is None:
                    best_depth = node.time
                if node.time == best_depth:
                    if trace is not None:
                        trace.solution(node, depth=node.time)
                    solutions.append(
                        self._reconstruct(problem, node, stats=make_stats())
                    )
                if not find_all or len(solutions) >= max_solutions:
                    break
                continue

            if self.max_nodes is not None and expanded >= self.max_nodes:
                partial = make_stats(**{STAT_BUDGET_REASON: "max_nodes"})
                release_search_state()
                raise SearchBudgetExceeded(
                    f"expanded more than {self.max_nodes} nodes",
                    partial_stats=partial,
                )
            if (
                self.max_seconds is not None
                and _time.perf_counter() - start_clock > self.max_seconds
            ):
                partial = make_stats(**{STAT_BUDGET_REASON: "max_seconds"})
                release_search_state()
                raise SearchBudgetExceeded(
                    f"exceeded {self.max_seconds} seconds",
                    partial_stats=partial,
                )
            if (
                self.deadline is not None
                and _time.perf_counter() - start_clock > self.deadline
            ):
                # Anytime mode: hand back the best incumbent instead of
                # raising — the reconstructed terminal when the search
                # found one, else the heuristic seed schedule.
                if incumbent_node is not None:
                    stats = make_stats(**{STAT_BUDGET_REASON: "deadline"})
                    result = self._reconstruct(
                        problem, incumbent_node, stats=stats, optimal=False
                    )
                    release_search_state()
                    return [result]
                if incumbent is not None:
                    stats = make_stats(**{STAT_BUDGET_REASON: "deadline"})
                    result = dataclasses.replace(
                        incumbent, optimal=False, stats=stats
                    )
                    release_search_state()
                    return [result]
                partial = make_stats(**{STAT_BUDGET_REASON: "deadline"})
                release_search_state()
                raise SearchBudgetExceeded(
                    f"deadline of {self.deadline} seconds expired with no "
                    "incumbent schedule",
                    partial_stats=partial,
                )

            node.dropped = True  # closed: may no longer exercise dominance
            expanded += 1
            if shared is not None and expanded % _SHARED_BOUND_POLL == 0:
                shared_depth = shared.peek()
                if shared_depth is not None and (
                    bound is None or shared_depth < bound
                ):
                    bound = shared_depth
                    if trace is not None:
                        trace.incumbent(bound, INCUMBENT_SHARED)
                    state_filter.kill_above_bound(bound)
            if enabled:
                m_expanded.inc()
                if trace is not None:
                    trace.expand(node, heap_size=len(heap))
                if expanded % progress_every == 0:
                    m_heap.set(len(heap))
                    m_frontier.set(f)
                    tele.publish_progress(
                        SearchProgressEvent(
                            mapper=self.mapper_name,
                            phase="prefix" if node.in_prefix else "search",
                            nodes_expanded=expanded,
                            nodes_generated=generated,
                            heap_size=len(heap),
                            best_f=f,
                            elapsed_seconds=_time.perf_counter() - start_clock,
                            extra={
                                "filtered_equivalent":
                                    state_filter.equivalent_dropped,
                                "filtered_dominated":
                                    state_filter.dominated_dropped,
                            },
                        )
                    )

            if not enabled:
                # Fast path: identical to the instrumented branch below
                # minus every span/metric touch, restructured to score the
                # whole fan-out as one kernel batch (admit first, then
                # batch-score the admitted children, then push in order).
                # Scoring is bound-independent, so this reorders nothing —
                # except when a fan-out contains a terminal child, whose
                # push tightens the bound and kills filter entries between
                # sibling admits; that rare case (at most one per
                # incumbent update) keeps the sequential order.
                batch: List[SearchNode] = []
                if node.in_prefix:
                    for child in self._expand_prefix(
                        problem, node, prefix_cap, seen_prefix_mappings,
                        auts, canon_seen, expand_counters,
                    ):
                        generated += 1
                        batch.append(child)
                    if root_pairs is not None and not root_mapping_allowed(
                        problem, node.pos, root_pairs
                    ):
                        # No frontier pair on an edge: this candidate
                        # initial mapping cannot begin an optimal
                        # schedule (see bounds.root_restriction_pairs);
                        # keep only its free prefix children.
                        root_restricted += 1
                        score(batch)
                        for child in batch:
                            push(child)
                        continue
                children = kernel_expand(
                    problem, node, config, counters=expand_counters
                )
                if any(
                    child.started == total_gates and not child.inflight
                    for child in children
                ):
                    score(batch)
                    for child in batch:
                        push(child)
                    for child in children:
                        generated += 1
                        if state_filter.admit(child):
                            score([child])
                            push(child)
                    continue
                for child in children:
                    generated += 1
                    if state_filter.admit(child):
                        batch.append(child)
                score(batch)
                for child in batch:
                    push(child)
                continue

            if node.in_prefix:
                sym_before = expand_counters["symmetry_pruned"]
                with tracer.span(SPAN_PREFIX, layers=node.prefix_layers):
                    prefix_children = self._expand_prefix(
                        problem, node, prefix_cap, seen_prefix_mappings,
                        auts, canon_seen, expand_counters,
                    )
                if trace is not None:
                    # Orbit-mates dropped while expanding this prefix node
                    # were never built; attribute them to the expander.
                    sym_delta = (
                        expand_counters["symmetry_pruned"] - sym_before
                    )
                    if sym_delta:
                        trace.prune(
                            PRUNE_SYMMETRY, node=node, count=sym_delta
                        )
                for child in prefix_children:
                    generated += 1
                    m_generated.inc()
                    push(child)
                if root_pairs is not None and not root_mapping_allowed(
                    problem, node.pos, root_pairs
                ):
                    # Same restriction as the fast path: the candidate
                    # mapping keeps its free prefix children but skips
                    # the real-schedule expansion.
                    root_restricted += 1
                    if trace is not None:
                        trace.prune(PRUNE_ROOT_RESTRICTION, node=node)
                    continue
            with tracer.span(SPAN_EXPAND, t=node.time, f=f):
                children = expand(
                    problem, node, config, metrics=tele.metrics,
                    counters=expand_counters, trace=trace,
                )
                for child in children:
                    generated += 1
                    m_generated.inc()
                    with tracer.span(SPAN_FILTER):
                        admitted = state_filter.admit(child)
                    if admitted:
                        push(child)

        if not solutions:
            # The queue ran dry.  With a *local* incumbent that proves
            # optimality: every pruned node had f >= incumbent depth under
            # an admissible h, so nothing strictly better exists.  A
            # fan-out worker (shared bound) cannot conclude this — its
            # bound may come from another root — so it raises and lets the
            # aggregator decide.
            if shared is None and incumbent_node is not None:
                result = self._reconstruct(
                    problem, incumbent_node, stats=make_stats()
                )
                release_search_state()
                return [result]
            if shared is None and incumbent is not None:
                result = dataclasses.replace(
                    incumbent, optimal=True, stats=make_stats()
                )
                release_search_state()
                return [result]
            partial = make_stats(**{STAT_BUDGET_REASON: "exhausted"})
            release_search_state()
            raise SearchBudgetExceeded(
                "search ended without reaching a terminal node",
                partial_stats=partial,
            )
        return solutions

    # ------------------------------------------------------------------
    def _expand_prefix(
        self,
        problem: MappingProblem,
        node: SearchNode,
        prefix_cap: int,
        seen: Dict[Tuple[int, ...], int],
        auts: Optional[Sequence[Tuple[int, ...]]] = None,
        canon_seen: Optional[set] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> List[SearchNode]:
        """Free pure-SWAP layer children (Section 5.3, mode 2)."""
        if node.prefix_layers >= prefix_cap:
            return []
        candidate_swaps = [
            (p, q)
            for p, q in problem.edges
            if node.inv[p] >= 0 or node.inv[q] >= 0
        ]
        children: List[SearchNode] = []
        _recurse_prefix_swaps(candidate_swaps, node, seen, children, 0, 0, [],
                              auts, canon_seen, counters)
        return children

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        problem: MappingProblem,
        terminal: SearchNode,
        stats: Dict[str, float],
        optimal: bool = True,
    ) -> MappingResult:
        ops: List[ScheduledOp] = []
        initial_pos = None
        for decision_time, actions, child in terminal.path_actions():
            parent = child.parent
            if child.in_prefix:
                continue  # free prefix layer: folded into the initial mapping
            if initial_pos is None:
                initial_pos = parent.pos
            for action in actions:
                if action[0] == "g":
                    gate_index = action[1]
                    gate = problem.circuit[gate_index]
                    ops.append(
                        ScheduledOp(
                            gate_index=gate_index,
                            name=gate.name,
                            logical_qubits=gate.qubits,
                            physical_qubits=tuple(
                                parent.pos[l] for l in gate.qubits
                            ),
                            start=decision_time,
                            duration=problem.gate_latency[gate_index],
                        )
                    )
                else:
                    _, p, q = action
                    ops.append(
                        ScheduledOp(
                            gate_index=None,
                            name="swap",
                            logical_qubits=(parent.inv[p], parent.inv[q]),
                            physical_qubits=(p, q),
                            start=decision_time,
                            duration=problem.swap_len,
                        )
                    )
        if initial_pos is None:
            # No scheduled actions at all (empty circuit) or pure prefix.
            initial_pos = terminal.pos
        ops.sort(key=lambda o: (o.start, o.physical_qubits))
        return MappingResult(
            circuit=problem.circuit,
            coupling=problem.coupling,
            latency=problem.latency,
            initial_mapping=tuple(initial_pos),
            ops=ops,
            depth=terminal.time,
            optimal=optimal,
            stats=stats,
        )
