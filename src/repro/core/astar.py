"""The optimal A* search (paper Sections 4.2, 5, and Fig. 6).

`OptimalMapper` implements the full framework: a priority queue ordered by
the admissible cost ``f(v) = g(v) + h(v)``; the node expander enforcing
coupling, dependency and redundancy constraints; the equivalence/dominance
filter; and the two initial-mapping modes of Section 5.3 —

* **mode 1** — an initial mapping is supplied and only scheduling+SWAP
  insertion is searched;
* **mode 2** — the search is prefixed by up to ``d`` *free* layers of pure
  SWAPs (``d`` = the architecture's longest-simple-path bound) whose cycles
  are not counted, which amounts to searching over initial mappings; each
  distinct mapping is explored at most once (hash filter).

The first terminal node popped from the queue is a time-optimal transformed
circuit (Theorem 5.2).  ``find_all_optimal`` keeps popping to enumerate
every distinct optimal schedule (Appendix B) — modulo schedules the state
filter identifies, which reach identical states at identical cycles.

Observability: pass a :class:`~repro.obs.Telemetry` to record nested spans
(``search`` > ``expand`` > ``heuristic``/``filter``, plus ``prefix``),
metrics snapshotable at any point, and periodic
:class:`~repro.obs.SearchProgressEvent`\\ s.  With no telemetry attached the
search runs the uninstrumented branch — one flag check per expansion.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph, find_swap_free_mapping
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel
from ..obs.events import SearchProgressEvent
from ..obs.schema import MAPPER_TOQM_OPTIMAL, STAT_BUDGET_REASON, base_stats
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracer import (
    SPAN_EXPAND,
    SPAN_FILTER,
    SPAN_HEURISTIC,
    SPAN_PREFIX,
    SPAN_SEARCH,
)
from .expander import OPTIMAL_EXPANSION, expand
from .filters import StateFilter
from .gcpause import pause_gc
from .heuristic import HeuristicMemo, heuristic_cost
from .problem import MappingProblem
from .result import MappingResult, ScheduledOp
from .state import SearchNode


class SearchBudgetExceeded(RuntimeError):
    """The node or time budget ran out before an optimal terminal was found.

    Attributes:
        partial_stats: Normalized search counters captured at the moment
            the budget tripped (nodes expanded/generated, filter drops,
            seconds, ``budget_reason``) — a partial run no longer loses
            its telemetry.
    """

    def __init__(self, message: str, partial_stats: Optional[Dict] = None):
        super().__init__(message)
        self.partial_stats: Dict = dict(partial_stats or {})


def _recurse_prefix_swaps(
    candidate_swaps: List[Tuple[int, int]],
    node: SearchNode,
    seen: Dict[Tuple[int, ...], int],
    children: List[SearchNode],
    start: int,
    mask: int,
    chosen: List[Tuple[int, int]],
) -> None:
    """Free-SWAP-layer recursion (module-level so it carries no closure cell;
    a self-referencing nested closure would leave one reference cycle per
    call for the paused collector — see ``gcpause``)."""
    if chosen:
        pos = list(node.pos)
        inv = list(node.inv)
        for p, q in chosen:
            l1, l2 = inv[p], inv[q]
            inv[p], inv[q] = l2, l1
            if l1 >= 0:
                pos[l1] = q
            if l2 >= 0:
                pos[l2] = p
        key = tuple(pos)
        if key not in seen:
            seen[key] = node.prefix_layers + 1
            children.append(
                SearchNode(
                    time=0,
                    pos=key,
                    inv=tuple(inv),
                    ptr=node.ptr,
                    started=0,
                    inflight=(),
                    last_swaps=frozenset(),
                    prev_startable=frozenset(),
                    parent=node,
                    actions=tuple(("s", p, q) for p, q in chosen),
                    prefix_layers=node.prefix_layers + 1,
                )
            )
    for i in range(start, len(candidate_swaps)):
        p, q = candidate_swaps[i]
        bit = (1 << p) | (1 << q)
        if mask & bit:
            continue
        chosen.append((p, q))
        _recurse_prefix_swaps(candidate_swaps, node, seen, children,
                              i + 1, mask | bit, chosen)
        chosen.pop()


class OptimalMapper:
    """Time-optimal qubit mapper (the paper's exact mode, Section 6.1).

    Args:
        coupling: Target architecture.
        latency: Latency model (defaults to 1 cycle/gate, 3-cycle SWAP).
        search_initial_mapping: Use mode 2 (free SWAP prefix) to also
            optimize the initial mapping.  Ignored when ``map`` is called
            with an explicit ``initial_mapping``.
        try_swap_free_fast_path: In mode 2, first attempt a subgraph-
            monomorphism embedding of the circuit's interaction graph — the
            fast path the paper applies before the Table 2 runs.
        max_nodes: Abort with :class:`SearchBudgetExceeded` after expanding
            this many nodes (safety valve; optimality needs it unbounded).
        max_seconds: Optional wall-clock budget.
        informed: Use the full swap-aware admissible heuristic of Section
            5.1.  When False the search degrades to an uninformed exact
            search guided only by the remaining critical path — the
            configuration the OLSQ-style baseline uses.
        dominance: Enable the comparative-analysis filter (Fig. 5b); the
            equivalence check stays on either way.
        memoize: Cache heuristic evaluations per run, keyed on the node's
            effective signature (pointers, post-SWAP mapping, relative
            in-flight profile).  Purely an evaluation cache — node counts
            and depths are identical with it on or off.
        telemetry: Optional observability context; ``None`` runs the
            uninstrumented fast path.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_TOQM_OPTIMAL

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        search_initial_mapping: bool = False,
        try_swap_free_fast_path: bool = True,
        max_nodes: Optional[int] = None,
        max_seconds: Optional[float] = None,
        informed: bool = True,
        dominance: bool = True,
        memoize: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.coupling = coupling
        self.latency = latency
        self.search_initial_mapping = search_initial_mapping
        self.try_swap_free_fast_path = try_swap_free_fast_path
        self.max_nodes = max_nodes
        self.max_seconds = max_seconds
        self.informed = informed
        self.dominance = dominance
        self.memoize = memoize
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Find a time-optimal transformed circuit.

        Args:
            circuit: The logical circuit.
            initial_mapping: Mode-1 initial mapping (``initial_mapping[l]``
                is the physical home of logical ``l``).  When ``None`` and
                ``search_initial_mapping`` is set, mode 2 runs; otherwise
                the identity mapping is used.

        Returns:
            A :class:`MappingResult` with ``optimal=True``.
        """
        problem = MappingProblem(circuit, self.coupling, self.latency)
        terminals = self._search(problem, initial_mapping, find_all=False)
        return terminals[0]

    def find_all_optimal(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
        max_solutions: int = 64,
    ) -> List[MappingResult]:
        """Enumerate distinct optimal schedules (Appendix B).

        Args:
            circuit: The logical circuit.
            initial_mapping: As in :meth:`map`.
            max_solutions: Stop after this many optimal terminals.
        """
        problem = MappingProblem(circuit, self.coupling, self.latency)
        return self._search(
            problem, initial_mapping, find_all=True, max_solutions=max_solutions
        )

    # ------------------------------------------------------------------
    def _roots(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
    ) -> Tuple[List[SearchNode], bool]:
        """Build root node(s); returns (roots, prefix_mode)."""
        num_logical = problem.num_logical
        num_physical = problem.num_physical

        def make_root(mapping: Sequence[int], prefix_layers: int) -> SearchNode:
            pos = tuple(mapping)
            inv = [-1] * num_physical
            for logical, physical in enumerate(pos):
                inv[physical] = logical
            return SearchNode(
                time=0,
                pos=pos,
                inv=tuple(inv),
                ptr=(0,) * num_logical,
                started=0,
                inflight=(),
                last_swaps=frozenset(),
                prev_startable=frozenset(),
                parent=None,
                actions=(),
                prefix_layers=prefix_layers,
            )

        if initial_mapping is not None:
            if sorted(set(initial_mapping)) != sorted(initial_mapping) or len(
                initial_mapping
            ) != num_logical:
                raise ValueError("initial mapping must be injective over logicals")
            return [make_root(initial_mapping, -1)], False

        if not self.search_initial_mapping:
            return [make_root(range(num_logical), -1)], False

        roots = [make_root(range(num_logical), 0)]
        if self.try_swap_free_fast_path:
            embedding = find_swap_free_mapping(
                problem.circuit.interaction_graph(),
                problem.coupling,
                num_logical,
            )
            if embedding is not None:
                mapping = [embedding[l] for l in range(num_logical)]
                roots.insert(0, make_root(mapping, 0))
        return roots, True

    # ------------------------------------------------------------------
    def _search(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        find_all: bool,
        max_solutions: int = 64,
    ) -> List[MappingResult]:
        tele = resolve(self.telemetry)
        if not tele.enabled:
            # The search graph is acyclic (children only reference
            # parents), so the cyclic collector can only cost time here —
            # see ``gcpause`` for the measurement.
            with pause_gc():
                return self._search_loop(
                    problem, initial_mapping, find_all, max_solutions, tele
                )
        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=problem.circuit.name or "<unnamed>",
            gates=problem.num_gates,
            arch=problem.coupling.name,
        ):
            try:
                with pause_gc():
                    solutions = self._search_loop(
                        problem, initial_mapping, find_all, max_solutions, tele
                    )
            except SearchBudgetExceeded:
                tele.emit_metrics_snapshot(label="budget_exceeded")
                raise
        tele.emit_metrics_snapshot(label="search_complete")
        return solutions

    def _search_loop(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        find_all: bool,
        max_solutions: int,
        tele: Telemetry,
    ) -> List[MappingResult]:
        start_clock = _time.perf_counter()
        enabled = tele.enabled
        tracer = tele.tracer
        roots, prefix_mode = self._roots(problem, initial_mapping)
        state_filter = StateFilter(
            problem,
            dominance=self.dominance,
            metrics=tele.metrics if enabled else None,
        )
        counter = itertools.count()
        heap: List[Tuple[int, int, int, SearchNode]] = []
        seen_prefix_mappings: Dict[Tuple[int, ...], int] = {}
        prefix_cap = (
            self.coupling.longest_simple_path_bound() if prefix_mode else 0
        )

        memo = HeuristicMemo() if self.memoize else None

        def push(node: SearchNode) -> None:
            node.h = heuristic_cost(
                problem, node, swap_aware=self.informed, memo=memo
            )
            node.f = node.time + node.h
            heapq.heappush(heap, (node.f, -node.started, next(counter), node))

        if enabled:
            metrics = tele.metrics
            m_expanded = metrics.counter("search.nodes_expanded")
            m_generated = metrics.counter("search.nodes_generated")
            m_heap = metrics.gauge("search.heap_size")
            m_frontier = metrics.gauge("search.best_f")
            m_heuristic_latency = metrics.histogram(
                "heuristic.latency_s", scale=1e-6
            )
            progress_every = tele.progress_every

            if memo is not None:
                memo = HeuristicMemo(metrics=metrics)

            def push(node: SearchNode) -> None:  # noqa: F811 - timed variant
                with tracer.span(SPAN_HEURISTIC):
                    t0 = _time.perf_counter()
                    node.h = heuristic_cost(
                        problem,
                        node,
                        swap_aware=self.informed,
                        metrics=metrics,
                        memo=memo,
                    )
                    m_heuristic_latency.observe(_time.perf_counter() - t0)
                node.f = node.time + node.h
                heapq.heappush(
                    heap, (node.f, -node.started, next(counter), node)
                )

        for root in roots:
            if prefix_mode:
                seen_prefix_mappings.setdefault(root.pos, 0)
            push(root)

        expanded = 0
        generated = len(roots)
        if enabled:
            m_generated.inc(generated)
        redundant = 0
        best_depth: Optional[int] = None
        solutions: List[MappingResult] = []

        def make_stats(**extra) -> Dict[str, float]:
            """Normalized counters at this instant (success or budget)."""
            if memo is not None:
                extra.setdefault("memo_hits", memo.hits)
                extra.setdefault("memo_misses", memo.misses)
            return base_stats(
                self.mapper_name,
                nodes_expanded=expanded,
                nodes_generated=generated,
                filtered_equivalent=state_filter.equivalent_dropped,
                filtered_dominated=state_filter.dominated_dropped,
                seconds=_time.perf_counter() - start_clock,
                killed=state_filter.killed,
                redundant=redundant,
                distinct_states=state_filter.num_states,
                **extra,
            )

        def release_search_state() -> None:
            # Free the retained node graph by refcount *before* the budget
            # exception unwinds past pause_gc: the traceback would otherwise
            # pin heap/filter/memo alive until after the collector resumes,
            # forcing the deferred gen-0 scan to walk ~1M live objects
            # (measured ~0.65s on the QFT-8 microbench) only to free none.
            heap.clear()
            state_filter.release()
            seen_prefix_mappings.clear()
            if memo is not None:
                memo.table.clear()

        total_gates = problem.num_gates
        while heap:
            f, _neg_started, _tick, node = heapq.heappop(heap)
            if node.killed:
                continue
            if best_depth is not None and f > best_depth:
                break
            if node.started == total_gates and not node.inflight:
                if best_depth is None:
                    best_depth = node.time
                if node.time == best_depth:
                    solutions.append(
                        self._reconstruct(problem, node, stats=make_stats())
                    )
                if not find_all or len(solutions) >= max_solutions:
                    break
                continue

            if self.max_nodes is not None and expanded >= self.max_nodes:
                partial = make_stats(**{STAT_BUDGET_REASON: "max_nodes"})
                release_search_state()
                raise SearchBudgetExceeded(
                    f"expanded more than {self.max_nodes} nodes",
                    partial_stats=partial,
                )
            if (
                self.max_seconds is not None
                and _time.perf_counter() - start_clock > self.max_seconds
            ):
                partial = make_stats(**{STAT_BUDGET_REASON: "max_seconds"})
                release_search_state()
                raise SearchBudgetExceeded(
                    f"exceeded {self.max_seconds} seconds",
                    partial_stats=partial,
                )

            node.dropped = True  # closed: may no longer exercise dominance
            expanded += 1
            if enabled:
                m_expanded.inc()
                if expanded % progress_every == 0:
                    m_heap.set(len(heap))
                    m_frontier.set(f)
                    tele.publish_progress(
                        SearchProgressEvent(
                            mapper=self.mapper_name,
                            phase="prefix" if node.in_prefix else "search",
                            nodes_expanded=expanded,
                            nodes_generated=generated,
                            heap_size=len(heap),
                            best_f=f,
                            elapsed_seconds=_time.perf_counter() - start_clock,
                            extra={
                                "filtered_equivalent":
                                    state_filter.equivalent_dropped,
                                "filtered_dominated":
                                    state_filter.dominated_dropped,
                            },
                        )
                    )

            if not enabled:
                # Fast path: identical to the instrumented branch below
                # minus every span/metric touch.
                if node.in_prefix:
                    for child in self._expand_prefix(
                        problem, node, prefix_cap, seen_prefix_mappings
                    ):
                        generated += 1
                        push(child)
                children = expand(problem, node, OPTIMAL_EXPANSION)
                for child in children:
                    generated += 1
                    if state_filter.admit(child):
                        push(child)
                continue

            if node.in_prefix:
                with tracer.span(SPAN_PREFIX, layers=node.prefix_layers):
                    prefix_children = self._expand_prefix(
                        problem, node, prefix_cap, seen_prefix_mappings
                    )
                for child in prefix_children:
                    generated += 1
                    m_generated.inc()
                    push(child)
            with tracer.span(SPAN_EXPAND, t=node.time, f=f):
                children = expand(
                    problem, node, OPTIMAL_EXPANSION, metrics=tele.metrics
                )
                for child in children:
                    generated += 1
                    m_generated.inc()
                    with tracer.span(SPAN_FILTER):
                        admitted = state_filter.admit(child)
                    if admitted:
                        push(child)

        if not solutions:
            partial = make_stats(**{STAT_BUDGET_REASON: "exhausted"})
            release_search_state()
            raise SearchBudgetExceeded(
                "search ended without reaching a terminal node",
                partial_stats=partial,
            )
        return solutions

    # ------------------------------------------------------------------
    def _expand_prefix(
        self,
        problem: MappingProblem,
        node: SearchNode,
        prefix_cap: int,
        seen: Dict[Tuple[int, ...], int],
    ) -> List[SearchNode]:
        """Free pure-SWAP layer children (Section 5.3, mode 2)."""
        if node.prefix_layers >= prefix_cap:
            return []
        candidate_swaps = [
            (p, q)
            for p, q in problem.edges
            if node.inv[p] >= 0 or node.inv[q] >= 0
        ]
        children: List[SearchNode] = []
        _recurse_prefix_swaps(candidate_swaps, node, seen, children, 0, 0, [])
        return children

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        problem: MappingProblem,
        terminal: SearchNode,
        stats: Dict[str, float],
    ) -> MappingResult:
        ops: List[ScheduledOp] = []
        initial_pos = None
        for decision_time, actions, child in terminal.path_actions():
            parent = child.parent
            if child.in_prefix:
                continue  # free prefix layer: folded into the initial mapping
            if initial_pos is None:
                initial_pos = parent.pos
            for action in actions:
                if action[0] == "g":
                    gate_index = action[1]
                    gate = problem.circuit[gate_index]
                    ops.append(
                        ScheduledOp(
                            gate_index=gate_index,
                            name=gate.name,
                            logical_qubits=gate.qubits,
                            physical_qubits=tuple(
                                parent.pos[l] for l in gate.qubits
                            ),
                            start=decision_time,
                            duration=problem.gate_latency[gate_index],
                        )
                    )
                else:
                    _, p, q = action
                    ops.append(
                        ScheduledOp(
                            gate_index=None,
                            name="swap",
                            logical_qubits=(parent.inv[p], parent.inv[q]),
                            physical_qubits=(p, q),
                            start=decision_time,
                            duration=problem.swap_len,
                        )
                    )
        if initial_pos is None:
            # No scheduled actions at all (empty circuit) or pure prefix.
            initial_pos = terminal.pos
        ops.sort(key=lambda o: (o.start, o.physical_qubits))
        return MappingResult(
            circuit=problem.circuit,
            coupling=problem.coupling,
            latency=problem.latency,
            initial_mapping=tuple(initial_pos),
            ops=ops,
            depth=terminal.time,
            optimal=True,
            stats=stats,
        )
