"""Literature-grade admissible lower bounds for the exact search.

Three search-space reductions beyond the paper's own heuristic, each
opt-in (``OptimalMapper(assignment_bound=..., layer_bound=...,
root_restriction=...)``), each with a dedicated prune counter so
``repro diagnose`` can attribute exactly which bound earns its keep:

* :func:`assignment_lb` — a per-node *work/capacity* relaxation in the
  style of the assignment-based bounds of exact branch-and-bound mappers
  (arXiv:2508.21718): remaining gate work, in-flight occupancy and a
  matching-based SWAP-count floor are summed in qubit-cycles and divided
  by the machine's qubit capacity.  Complementary to §5.1's per-chain
  critical-path ``h`` — it binds on *wide* circuits where many short
  chains share few qubits.

* :func:`layer_weight_lb` — a HAIL-style layer-weight refinement
  (arXiv:2502.07536) computed once per problem: for every
  dependency-forced start threshold, all the work forced to start at or
  after it must still fit through the architecture's per-cycle gate and
  qubit capacity.  Mapping-independent, so it both strengthens the
  mode-2 prefix prune (``ideal_lb``) and acts as a global depth floor —
  when a seeded incumbent already meets it, the search closes with
  (almost) no expansions.

* :func:`root_restriction_pairs` / :func:`root_mapping_allowed` —
  Burgholzer-style candidate restriction at the root (arXiv:2112.00045):
  when every dependency-free gate is two-qubit, some optimal mode-2
  schedule starts an original gate at cycle 0 (any SWAP starting at
  cycle 0 folds into the free prefix), so initial mappings placing no
  frontier pair on an edge need no real-schedule expansion.

Every derivation below argues admissibility explicitly; the property
tests in ``tests/test_bounds.py`` cross-check each bound against
exhaustive ``find_all_optimal`` depths on small random problems.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .problem import MappingProblem
from .state import K_SWAP, SearchNode

#: Sentinel distinguishing "not computed yet" from a computed ``None``.
_UNSET = object()


# ----------------------------------------------------------------------
# Assignment-relaxation lower bound (per node)
# ----------------------------------------------------------------------

def assignment_lb(problem: MappingProblem, node: SearchNode) -> int:
    """Work/capacity lower bound on ``node``'s best completion cycle.

    Every cycle the machine offers at most ``P = num_physical``
    qubit-slots, and all of the following *distinct* work must still run
    after ``node.time``:

    * **pending gates** — every unstarted gate occupies each of its
      operands for its full latency (``sum_l suffix_load[l][ptr[l]]``
      qubit-cycles; the expander bumps all operand pointers atomically,
      so a gate is pending on all of its chains or none);
    * **in-flight actions** — each occupies its operands for its
      remaining ``finish - time`` cycles;
    * **future SWAPs** — a greedy maximal *qubit-disjoint* set of pending
      two-qubit gates is matched onto the distance table: a pair at
      effective distance ``d`` (positions after all in-flight SWAPs —
      an operand cannot start its gate while a committed SWAP still
      holds it, so its position at gate start is its effective position
      as further modified only by future SWAPs) contributes ``d - 1`` to
      the deficit, one future SWAP touches at most two of the disjoint
      pairs and shortens each by at most one, so at least
      ``ceil(deficit / 2)`` future SWAPs run, each occupying two qubits
      for ``swap_len`` cycles.

    The three categories never double-count (started/unstarted/not yet
    started), hence ``completion >= time + ceil(total_work / P)``.  Only
    meaningful for real (non-prefix) nodes: free prefix layers rearrange
    the mapping at zero cost, which invalidates the SWAP-deficit term.
    """
    time = node.time
    ptr = node.ptr
    num_physical = problem.num_physical
    suffix_load = problem.suffix_load
    work = 0
    for logical in range(problem.num_logical):
        work += suffix_load[logical][ptr[logical]]

    gate_qubits = problem.gate_qubits
    for finish, kind, a, _b in node.inflight:
        remaining = finish - time
        if remaining <= 0:
            continue
        width = 2 if kind == K_SWAP else len(gate_qubits[a])
        work += remaining * width

    eff_pos, _eff_inv = node.mapping_after_swaps()
    dist_flat = problem.dist_flat
    deficit = 0
    used = 0  # bitmask over logical qubits already claimed by a pair
    for l1, l2, _lat, _p1c, _p2c in problem.pending_rows(ptr):
        bit = (1 << l1) | (1 << l2)
        if used & bit:
            continue
        p1, p2 = eff_pos[l1], eff_pos[l2]
        if p1 < 0 or p2 < 0:
            continue  # unplaced operand: no sound distance claim
        used |= bit
        d = dist_flat[p1 * num_physical + p2]
        if d > 1:
            deficit += d - 1
    if deficit:
        work += -(-deficit // 2) * 2 * problem.swap_len

    if work <= 0:
        return time
    return time + -(-work // num_physical)


# ----------------------------------------------------------------------
# HAIL-style layer-weight refinement (once per problem)
# ----------------------------------------------------------------------

def layer_weight_lb(problem: MappingProblem) -> int:
    """Mapping-independent depth floor from forced-start layer weights.

    ``asap[g]`` (dependencies + latencies only, connectivity ignored) is
    a start-time lower bound for ``g`` in *every* valid schedule from
    *every* initial mapping — SWAPs only delay.  For each distinct
    threshold ``t`` among the ASAP starts, all gates with
    ``asap[g] >= t`` therefore run entirely after cycle ``t``, and the
    machine drains them no faster than its per-cycle capacity:

    * **gate capacity** — concurrently executing two-qubit gates occupy
      disjoint physical edges, so at most
      ``mu = min(floor(P / 2), |edges|)`` run per cycle (an upper bound
      on the maximum matching, which keeps the bound admissible):
      ``depth >= t + ceil(W2 / mu)`` with ``W2`` the summed latency of
      the threshold's two-qubit gates;
    * **qubit capacity** — every gate occupies ``arity`` qubits for its
      latency: ``depth >= t + ceil(QW / P)``.

    The result is the max of both forms over all thresholds, floored at
    ``problem.ideal_depth()``, and cached on the problem instance (pure
    function of the circuit + architecture, so warm-cache sharing across
    repeats is sound).
    """
    cached = getattr(problem, "_layer_weight_lb", None)
    if cached is not None:
        return cached

    num_logical = problem.num_logical
    avail = [0] * num_logical
    asap = []
    for g, qubits in enumerate(problem.gate_qubits):
        start = max(avail[q] for q in qubits)
        asap.append(start)
        finish = start + problem.gate_latency[g]
        for q in qubits:
            avail[q] = finish

    best = problem.ideal_depth()
    num_physical = problem.num_physical
    mu = max(1, min(num_physical // 2, len(problem.edges)))
    # Walk thresholds from the latest start downwards, accumulating the
    # work forced at-or-after each one as suffix sums.
    order = sorted(range(problem.num_gates), key=lambda g: asap[g],
                   reverse=True)
    two_qubit_work = 0
    qubit_work = 0
    index = 0
    thresholds = sorted({asap[g] for g in order}, reverse=True)
    for threshold in thresholds:
        while index < len(order) and asap[order[index]] >= threshold:
            g = order[index]
            lat = problem.gate_latency[g]
            arity = len(problem.gate_qubits[g])
            qubit_work += arity * lat
            if arity == 2:
                two_qubit_work += lat
            index += 1
        if two_qubit_work:
            best = max(best, threshold + -(-two_qubit_work // mu))
        if qubit_work:
            best = max(best, threshold + -(-qubit_work // num_physical))

    problem._layer_weight_lb = best
    return best


# ----------------------------------------------------------------------
# Burgholzer-style candidate restriction at the root (mode 2 only)
# ----------------------------------------------------------------------

def root_restriction_pairs(
    problem: MappingProblem,
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Frontier operand pairs enabling the root-mapping restriction.

    The restriction is loss-free for *optimal depth* by a folding
    argument: take an optimal mode-2 schedule under root mapping ``m``.
    A SWAP starting at cycle 0 holds its two physical positions for the
    whole interval ``[0, swap_len)``, so nothing else touches them
    there; removing the SWAP and pre-applying it to ``m`` (one more free
    prefix layer — the mapping enumeration covers all of them) replays
    the rest of the schedule identically at the same depth.  After
    folding, cycle 0 either starts an original gate or is empty — and an
    empty cycle 0 contradicts optimality (shift everything one cycle
    down).  The gate starting at cycle 0 is dependency-free, i.e. a
    *root-frontier* gate (all operand chain positions 0).  When every
    root-frontier gate is two-qubit, that gate needs its operands on an
    edge — so candidate root mappings placing **no** frontier pair at
    distance 1 cannot begin an optimal schedule and their real-schedule
    expansion is skipped (their free prefix expansion is kept: mappings
    reachable *through* them must still be enumerated).

    Returns the frontier ``(l1, l2)`` pairs when the restriction
    applies, ``None`` when it does not (an empty circuit, or a
    single-qubit frontier gate, which could legally open the schedule
    without any adjacency).  Cached on the problem instance.
    """
    cached = getattr(problem, "_root_frontier_pairs", _UNSET)
    if cached is not _UNSET:
        return cached

    pairs = []
    result: Optional[Tuple[Tuple[int, int], ...]]
    applicable = problem.num_gates > 0
    if applicable:
        gate_l1, gate_l2 = problem.gate_l1, problem.gate_l2
        gate_p1, gate_p2 = problem.gate_p1, problem.gate_p2
        for g in range(problem.num_gates):
            if gate_p1[g] != 0:
                continue
            if gate_l2[g] < 0:
                applicable = False  # 1-qubit frontier gate: no adjacency need
                break
            if gate_p2[g] == 0:
                pairs.append((gate_l1[g], gate_l2[g]))
    result = tuple(pairs) if applicable and pairs else None
    problem._root_frontier_pairs = result
    return result


def root_mapping_allowed(
    problem: MappingProblem,
    pos: Tuple[int, ...],
    pairs: Tuple[Tuple[int, int], ...],
) -> bool:
    """True when ``pos`` puts at least one frontier pair on an edge."""
    dist_flat = problem.dist_flat
    num_physical = problem.num_physical
    for l1, l2 in pairs:
        p1, p2 = pos[l1], pos[l2]
        if p1 >= 0 and p2 >= 0 and dist_flat[p1 * num_physical + p2] == 1:
            return True
    return False
