"""Node expansion: enumerate successor states (paper Section 4.2, Expander).

Given a node at an event time, the expander enumerates every compatible
(qubit-disjoint) set of startable actions — dependency-resolved original
gates whose operands are adjacent and idle, plus SWAPs on idle coupled
pairs — applies the three redundancy criteria, starts the chosen set, and
advances to the next finish event.

The practical mapper (Section 6.2) reuses this machinery with extra
restrictions: ready original gates are always started, candidate SWAPs are
limited to those relevant to the blocked CNOT frontier, and SWAPs that would
break a currently-satisfiable frontier gate are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import (
    PRUNE_SWAP_RESTRICTION as TRACE_PRUNE_SWAP_RESTRICTION,
)
from .problem import MappingProblem
from .state import Action, K_GATE, K_SWAP, SearchNode


@dataclass
class ExpansionConfig:
    """Tuning knobs for node expansion.

    Attributes:
        greedy_gates: Start every startable original gate immediately
            (practical-mode relaxation; optimal mode must keep this False
            since delaying a gate can enable an earlier SWAP).
        frontier_swaps_only: Restrict candidate SWAPs to edges touching the
            current positions of logical qubits belonging to blocked
            frontier two-qubit gates.
        active_swaps_only: Restrict candidate SWAPs to edges incident to
            an *active* physical qubit — one holding an operand of a
            pending two-qubit gate, or lying on a shortest path between
            such an operand pair (see
            :meth:`~repro.core.problem.MappingProblem.active_swap_mask`).
            Unlike ``frontier_swaps_only`` this is loss-free for the
            admissible optimal search: it only discards SWAPs that shuffle
            bystander qubits, which no time-optimal schedule needs.  It
            does trim decorative same-depth schedules, so
            ``find_all_optimal`` runs with it off.
        protect_satisfied_frontier: Reject SWAPs that move an operand of a
            dependency-ready, coupling-satisfied two-qubit gate (the
            paper's "not allowing swaps that cause the executable gates on
            the CNOT frontier not executable").
        max_swaps_per_step: Cap on simultaneous SWAP starts per child
            (None = unlimited; practical mode uses a small cap to bound
            branching).
        max_candidate_swaps: Keep only this many candidate SWAPs, ranked
            by how much they shorten the blocked frontier's distances
            (None = keep all; practical mode uses a small pool).
    """

    greedy_gates: bool = False
    frontier_swaps_only: bool = False
    active_swaps_only: bool = False
    protect_satisfied_frontier: bool = False
    max_swaps_per_step: Optional[int] = None
    max_candidate_swaps: Optional[int] = None


OPTIMAL_EXPANSION = ExpansionConfig()

#: Optimal-mode expansion with the loss-free active-SWAP restriction on —
#: what :class:`~repro.core.astar.OptimalMapper` uses by default.
PRUNED_OPTIMAL_EXPANSION = ExpansionConfig(active_swaps_only=True)


def frontier_gates(problem: MappingProblem, node: SearchNode) -> List[int]:
    """Dependency-ready gates (every operand pointer rests on them).

    Cached on the node: the frontier depends only on ``ptr`` (never on
    the mapping), and the practical mapper asks for it several times per
    node (placement, startable actions, progress level).
    """
    cached = node._frontier
    if cached is not None:
        return cached
    ready: List[int] = []
    ptr = node.ptr
    seq = problem.seq
    gate_row = problem.gate_row
    for logical in range(problem.num_logical):
        index = ptr[logical]
        chain = seq[logical]
        if index >= len(chain):
            continue
        gate = chain[index]
        l1, l2, _length, p1c, p2c = gate_row[gate]
        if l2 < 0:
            ready.append(gate)
        elif ptr[l1] == p1c and ptr[l2] == p2c and logical == l1:
            # visit each two-qubit gate once (owner side only)
            ready.append(gate)
    ready.sort()
    node._frontier = ready
    return ready


def startable_actions(
    problem: MappingProblem,
    node: SearchNode,
    config: ExpansionConfig = OPTIMAL_EXPANSION,
    counters: Optional[Dict[str, int]] = None,
) -> Tuple[List[Action], List[Action]]:
    """Actions that may start at the node's current cycle.

    Args:
        counters: Optional mutable dict; when given,
            ``counters["swaps_restricted"]`` is incremented for every
            candidate SWAP the ``active_swaps_only`` rule discards.

    Returns:
        ``(gates, swaps)`` — startable original-gate actions and startable
        SWAP actions, each qubit-idle, dependency-resolved and coupling-
        compliant, with the cyclic-SWAP redundancy already removed.
    """
    busy_mask = 0
    pos = node.pos
    gate_qubits = problem.gate_qubits
    for _finish, kind, a, b in node.inflight:
        if kind == K_SWAP:
            busy_mask |= (1 << a) | (1 << b)
        else:
            for logical in gate_qubits[a]:
                busy_mask |= 1 << pos[logical]

    gates: List[Action] = []
    blocked_mask = 0
    protected_mask = 0
    dist_flat = problem.dist_flat
    num_physical = problem.num_physical

    for gate in frontier_gates(problem, node):
        qubits = gate_qubits[gate]
        if len(qubits) == 2:
            p1, p2 = pos[qubits[0]], pos[qubits[1]]
            if p1 < 0 or p2 < 0:
                continue  # practical mapper places qubits before this point
            pair_mask = (1 << p1) | (1 << p2)
            if dist_flat[p1 * num_physical + p2] != 1:
                blocked_mask |= pair_mask
                continue
            protected_mask |= pair_mask
            if busy_mask & pair_mask:
                continue
            gates.append(("g", gate))
        else:
            p1 = pos[qubits[0]]
            if p1 < 0 or busy_mask & (1 << p1):
                continue
            gates.append(("g", gate))

    swaps: List[Action] = []
    inv = node.inv
    last_swaps = node.last_swaps
    frontier_only = config.frontier_swaps_only
    protect = config.protect_satisfied_frontier
    active_mask = (
        problem.active_swap_mask(pos, node.ptr)
        if config.active_swaps_only
        else -1
    )
    restricted = 0
    for edge in problem.edges:
        p, q = edge
        pair_mask = (1 << p) | (1 << q)
        if busy_mask & pair_mask:
            continue
        if inv[p] < 0 and inv[q] < 0:
            continue  # moving two unused qubits accomplishes nothing
        if edge in last_swaps:
            continue  # cyclic SWAP: would cancel the one just completed
        if not (active_mask & pair_mask):
            restricted += 1  # touches no pending operand or routing path
            continue
        if frontier_only and not (blocked_mask & pair_mask):
            continue
        if protect and (protected_mask & pair_mask):
            continue
        swaps.append(("s", p, q))
    if restricted and counters is not None:
        counters["swaps_restricted"] = (
            counters.get("swaps_restricted", 0) + restricted
        )

    if (
        config.max_candidate_swaps is not None
        and len(swaps) > config.max_candidate_swaps
    ):
        blocked_pairs = _blocked_frontier_pairs(problem, node)

        def improvement(action: Action) -> int:
            _, p, q = action
            gain = 0
            for p1, p2 in blocked_pairs:
                before = dist_flat[p1 * num_physical + p2]
                a1 = q if p1 == p else (p if p1 == q else p1)
                a2 = q if p2 == p else (p if p2 == q else p2)
                gain += before - dist_flat[a1 * num_physical + a2]
            return gain

        swaps.sort(key=lambda a: (-improvement(a), a))
        swaps = swaps[: config.max_candidate_swaps]
    return gates, swaps


def _blocked_frontier_pairs(
    problem: MappingProblem, node: SearchNode
) -> List[Tuple[int, int]]:
    """Physical positions of blocked (non-adjacent) frontier CNOT pairs."""
    pairs: List[Tuple[int, int]] = []
    dist_flat = problem.dist_flat
    num_physical = problem.num_physical
    for gate in frontier_gates(problem, node):
        qubits = problem.gate_qubits[gate]
        if len(qubits) != 2:
            continue
        p1, p2 = node.pos[qubits[0]], node.pos[qubits[1]]
        if p1 >= 0 and p2 >= 0 and dist_flat[p1 * num_physical + p2] > 1:
            pairs.append((p1, p2))
    return pairs


def _action_mask(problem: MappingProblem, node: SearchNode, action: Action) -> int:
    """Bitmask of the physical qubits an action occupies."""
    if action[0] == "s":
        return (1 << action[1]) | (1 << action[2])
    mask = 0
    for logical in problem.gate_qubits[action[1]]:
        mask |= 1 << node.pos[logical]
    return mask


def enumerate_action_sets(
    problem: MappingProblem,
    node: SearchNode,
    gates: Sequence[Action],
    swaps: Sequence[Action],
    config: ExpansionConfig = OPTIMAL_EXPANSION,
    masks: Optional[Dict[Action, int]] = None,
) -> List[Tuple[Action, ...]]:
    """All compatible action subsets (including the empty set).

    In greedy-gate mode every startable gate is forced into each subset and
    only the SWAP choice varies; in optimal mode all subsets of the
    combined action list are generated.  Subsets whose qubits overlap are
    skipped during the recursion rather than generated and filtered.

    Args:
        masks: Optional precomputed ``action -> occupied-qubit bitmask``
            map (see :func:`expand`); recomputed per action when absent.
    """
    results: List[Tuple[Action, ...]] = []
    if masks is None:
        masks = {
            a: _action_mask(problem, node, a)
            for a in list(gates) + list(swaps)
        }

    if config.greedy_gates:
        base: List[Action] = []
        base_mask = 0
        for action in gates:
            mask = masks[action]
            if not (base_mask & mask):
                base.append(action)
                base_mask |= mask
        candidates = [
            (a, masks[a])
            for a in swaps
            if not (masks[a] & base_mask)
        ]
        _recurse_swaps(candidates, config.max_swaps_per_step, tuple(base),
                       results, 0, base_mask, [])
        return results

    actions = [(a, masks[a]) for a in list(gates) + list(swaps)]
    _recurse_subsets(actions, config.max_swaps_per_step, results, 0, 0, [], 0)
    return results


def _recurse_swaps(
    candidates: List[Tuple[Action, int]],
    limit: Optional[int],
    base: Tuple[Action, ...],
    results: List[Tuple[Action, ...]],
    start: int,
    mask: int,
    chosen: List[Action],
) -> None:
    """Greedy-mode SWAP-subset recursion (module-level: see _recurse_masked)."""
    results.append(base + tuple(chosen))
    if limit is not None and len(chosen) >= limit:
        return
    for i in range(start, len(candidates)):
        action, amask = candidates[i]
        if mask & amask:
            continue
        chosen.append(action)
        _recurse_swaps(candidates, limit, base, results, i + 1, mask | amask,
                       chosen)
        chosen.pop()


def _recurse_subsets(
    actions: List[Tuple[Action, int]],
    max_swaps: Optional[int],
    results: List[Tuple[Action, ...]],
    start: int,
    mask: int,
    chosen: List[Action],
    swap_count: int,
) -> None:
    """Optimal-mode subset recursion (module-level: see _recurse_masked)."""
    results.append(tuple(chosen))
    for i in range(start, len(actions)):
        action, amask = actions[i]
        if mask & amask:
            continue
        is_swap = action[0] == "s"
        if is_swap and max_swaps is not None and swap_count >= max_swaps:
            continue
        chosen.append(action)
        _recurse_subsets(actions, max_swaps, results, i + 1, mask | amask,
                         chosen, swap_count + (1 if is_swap else 0))
        chosen.pop()


def _recurse_masked(
    actions: List[Tuple[Action, int, bool]],
    results: List[Tuple[Tuple[Action, ...], int]],
    start: int,
    mask: int,
    chosen: List[Action],
    swap_budget: Optional[int],
    fresh: int,
) -> None:
    """Recursive worker of :func:`_enumerate_masked`.

    Deliberately a module-level function: a nested recursive closure
    references itself through its own cell and therefore forms a
    reference cycle *per expansion*, which is exactly the garbage the
    search loop pauses the cyclic collector to avoid (see ``gcpause``).
    """
    if fresh:
        results.append((tuple(chosen), mask))
    for i in range(start, len(actions)):
        action, amask, is_fresh = actions[i]
        if mask & amask:
            continue
        if action[0] == "s":
            if swap_budget is not None:
                if swap_budget == 0:
                    continue
                budget = swap_budget - 1
            else:
                budget = None
        else:
            budget = swap_budget
        chosen.append(action)
        _recurse_masked(actions, results, i + 1, mask | amask, chosen,
                        budget, fresh + (1 if is_fresh else 0))
        chosen.pop()


def _enumerate_masked(
    actions: List[Tuple[Action, int, bool]],
    max_swaps: Optional[int],
    prev_startable: FrozenSet[Action],
    include_empty: bool,
) -> List[Tuple[Tuple[Action, ...], int]]:
    """Optimal-mode action-set enumeration fused with the redundancy rule.

    Yields ``(action_set, occupied_mask)`` pairs, skipping sets made up
    entirely of actions the parent could already have started
    (``prev_startable``) — those children are covered by a sibling of the
    parent (Section 4.2, Redundancy) and building their tuples, masks and
    nodes would be pure waste.  ``actions`` rows are ``(action, mask,
    is_fresh)`` with ``is_fresh`` precomputed as ``action not in
    prev_startable``.
    """
    results: List[Tuple[Tuple[Action, ...], int]] = []
    if include_empty:
        results.append(((), 0))
    _recurse_masked(actions, results, 0, 0, [], max_swaps, 0)
    return results


def apply_action_set(
    problem: MappingProblem,
    node: SearchNode,
    action_set: Tuple[Action, ...],
    all_startable: FrozenSet[Action],
    masks: Optional[Dict[Action, int]] = None,
    parent_eff: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None,
    touched: Optional[int] = None,
    startable_pairs: Optional[List[Tuple[Action, int]]] = None,
) -> Optional[SearchNode]:
    """Start ``action_set`` at ``node.time`` and advance to the next event.

    Returns ``None`` when the set is empty and nothing is in flight (time
    could not advance) — the caller never treats that as a child.

    Args:
        problem: Problem instance.
        node: Parent node.
        action_set: Qubit-disjoint startable actions.
        all_startable: Every action startable at the parent (used to record
            ``prev_startable`` on the child for the redundancy check).
        masks: Optional precomputed ``action -> occupied-qubit bitmask``
            map covering every startable action; :func:`expand` builds it
            once per parent so the per-child redundancy bookkeeping is
            pure integer work.
        parent_eff: Optional precomputed ``node.mapping_after_swaps()``.
            When given, the child's effective mapping is seeded as
            ``parent_eff`` plus the newly started SWAPs — sound because
            concurrently tracked SWAPs are always qubit-disjoint, so the
            application order is irrelevant.  Children that start no SWAP
            share the parent's tuples outright.
        touched: Optional precomputed union of the action set's occupied
            masks (the enumeration recursion maintains it for free).
        startable_pairs: Optional ``(action, mask)`` rows for every
            startable action, in a stable order; lets the
            ``prev_startable`` bookkeeping run on a list instead of
            iterating a frozenset with per-action dict lookups.
    """
    if masks is None and (touched is None or startable_pairs is None):
        masks = {
            a: _action_mask(problem, node, a) for a in all_startable
        }
        for a in action_set:
            if a not in masks:
                masks[a] = _action_mask(problem, node, a)
    started = node.started
    time = node.time
    gate_latency = problem.gate_latency
    gate_qubits = problem.gate_qubits

    new_items: List[Tuple[int, int, int, int]] = []
    new_ptr = None
    new_swaps = None
    next_time = None
    if touched is None:
        touched_mask = 0
        for action in action_set:
            touched_mask |= masks[action]
    else:
        touched_mask = touched
    for action in action_set:
        if action[0] == "g":
            gate = action[1]
            if new_ptr is None:
                new_ptr = list(node.ptr)
            for logical in gate_qubits[gate]:
                new_ptr[logical] += 1
            started += 1
            finish = time + gate_latency[gate]
            new_items.append((finish, K_GATE, gate, 0))
        else:
            _, p, q = action
            finish = time + problem.swap_len
            new_items.append((finish, K_SWAP, p, q))
            if new_swaps is None:
                new_swaps = [(p, q)]
            else:
                new_swaps.append((p, q))
        if next_time is None or finish < next_time:
            next_time = finish
    ptr = node.ptr if new_ptr is None else tuple(new_ptr)

    parent_inflight = node.inflight
    if not new_items and not parent_inflight:
        return None

    # ``inflight`` is kept sorted by finish time, so the parent's earliest
    # event is its first item and the completed items form a prefix.
    if parent_inflight and (
        next_time is None or parent_inflight[0][0] < next_time
    ):
        next_time = parent_inflight[0][0]

    completed_swaps = None
    cut = 0
    for item in parent_inflight:
        if item[0] > next_time:
            break
        if item[1] == K_SWAP:
            if completed_swaps is None:
                completed_swaps = [(item[2], item[3])]
            else:
                completed_swaps.append((item[2], item[3]))
        cut += 1
    remaining = list(parent_inflight[cut:])
    need_sort = False
    for item in new_items:
        if item[0] > next_time:
            remaining.append(item)
            need_sort = True
        elif item[1] == K_SWAP:
            if completed_swaps is None:
                completed_swaps = [(item[2], item[3])]
            else:
                completed_swaps.append((item[2], item[3]))
    if need_sort:
        remaining.sort()

    if completed_swaps is None:
        # No SWAP finished: the mapping is untouched, share the parent's
        # tuples (and their hashes) with the child.
        pos = node.pos
        inv = node.inv
    else:
        pos_l = list(node.pos)
        inv_l = list(node.inv)
        for a, b in completed_swaps:
            l1, l2 = inv_l[a], inv_l[b]
            inv_l[a], inv_l[b] = l2, l1
            if l1 >= 0:
                pos_l[l1] = b
            if l2 >= 0:
                pos_l[l2] = a
        pos = tuple(pos_l)
        inv = tuple(inv_l)

    parent_last_swaps = node.last_swaps
    if touched_mask and parent_last_swaps:
        kept_pairs = []
        for pair in parent_last_swaps:
            if not (((1 << pair[0]) | (1 << pair[1])) & touched_mask):
                kept_pairs.append(pair)
    else:
        kept_pairs = None  # parent's set survives unchanged

    if completed_swaps is not None:
        if kept_pairs is None:
            last_swaps = parent_last_swaps | frozenset(completed_swaps)
        else:
            kept_pairs.extend(completed_swaps)
            last_swaps = frozenset(kept_pairs)
    elif kept_pairs is None:
        last_swaps = parent_last_swaps  # shared: immutable and unchanged
    else:
        last_swaps = frozenset(kept_pairs)

    if not action_set:
        prev_startable = all_startable  # nothing started, nothing touched
    elif startable_pairs is not None:
        carried = []
        for a, m in startable_pairs:
            if not (m & touched_mask) and a not in action_set:
                carried.append(a)
        prev_startable = frozenset(carried)
    else:
        carried = []
        for action in all_startable:
            if action not in action_set and not (masks[action] & touched_mask):
                carried.append(action)
        prev_startable = frozenset(carried)

    if parent_eff is None:
        eff = None
        fkey = None
    elif new_swaps is None:
        eff = parent_eff
        fkey = (parent_eff[1], ptr)
    else:
        eff_pos = list(parent_eff[0])
        eff_inv = list(parent_eff[1])
        for a, b in new_swaps:
            l1, l2 = eff_inv[a], eff_inv[b]
            eff_inv[a], eff_inv[b] = l2, l1
            if l1 >= 0:
                eff_pos[l1] = b
            if l2 >= 0:
                eff_pos[l2] = a
        eff = (tuple(eff_pos), tuple(eff_inv))
        fkey = (eff[1], ptr)

    child = SearchNode.__new__(SearchNode)
    child.time = next_time
    child.pos = pos
    child.inv = inv
    child.ptr = ptr
    child.started = started
    child.inflight = tuple(remaining)
    child.last_swaps = last_swaps
    child.prev_startable = prev_startable
    child.parent = node
    child.actions = action_set if type(action_set) is tuple else tuple(action_set)
    child.prefix_layers = -1
    child.h = 0
    child.f = 0
    child.killed = False
    child.dropped = False
    child._eff = eff
    child._fkey = fkey
    child._mkey = None
    child._profile = None
    child._frontier = None
    child._tid = -1
    return child


def expand(
    problem: MappingProblem,
    node: SearchNode,
    config: ExpansionConfig = OPTIMAL_EXPANSION,
    metrics: Optional[MetricsRegistry] = None,
    counters: Optional[Dict[str, int]] = None,
    trace=None,
) -> List[SearchNode]:
    """All non-redundant children of ``node``.

    Applies, in order: the coupling and dependency criteria (inside
    :func:`startable_actions`), the cyclic-SWAP check, the empty-set rule
    (waiting is only allowed while something is in flight), and the
    could-have-started-earlier redundancy rule against the parent's
    recorded startable set.

    Args:
        problem: Problem instance.
        node: Node to expand.
        config: Expansion restrictions (optimal vs. practical mode).
        metrics: When given, records per-expansion distributions
            (``expand.startable_gates/startable_swaps/action_sets/
            children``) and counts redundancy-fallback regenerations.
        counters: Optional mutable dict for cheap cross-expansion
            counters (``swaps_restricted``) kept even on the
            uninstrumented fast path.
        trace: Optional :class:`~repro.obs.trace.TraceRecorder`; emits a
            ``swap_restriction`` prune record attributed to ``node``
            when the active-SWAP rule discarded candidate SWAPs here.
    """
    if trace is not None and counters is not None:
        restricted_before = counters.get("swaps_restricted", 0)
    gates, swaps = startable_actions(problem, node, config, counters)
    if trace is not None and counters is not None:
        restricted_delta = (
            counters.get("swaps_restricted", 0) - restricted_before
        )
        if restricted_delta:
            trace.prune(
                TRACE_PRUNE_SWAP_RESTRICTION, node=node,
                count=restricted_delta,
            )
    all_startable = frozenset(gates) | frozenset(swaps)
    parent_eff = node.mapping_after_swaps()
    children: List[SearchNode] = []
    prev_startable = node.prev_startable
    has_inflight = bool(node.inflight)
    startable_pairs = [
        (a, _action_mask(problem, node, a))
        for a in list(gates) + list(swaps)
    ]

    if config.greedy_gates:
        masks = dict(startable_pairs)
        action_sets = enumerate_action_sets(
            problem, node, gates, swaps, config, masks=masks
        )
        num_sets = len(action_sets)
        for action_set in action_sets:
            if not action_set:
                if not has_inflight:
                    continue  # cannot let time pass with nothing running
            elif all(action in prev_startable for action in action_set):
                continue  # a parent's sibling already started these earlier
            child = apply_action_set(
                problem, node, action_set, all_startable,
                masks=masks, parent_eff=parent_eff,
            )
            if child is not None:
                children.append(child)
    else:
        # Optimal mode: enumeration fused with the redundancy rule —
        # all-previously-startable sets are never materialized at all.
        rows = [
            (a, m, a not in prev_startable) for a, m in startable_pairs
        ]
        candidates = _enumerate_masked(
            rows, config.max_swaps_per_step, prev_startable,
            include_empty=has_inflight,
        )
        num_sets = len(candidates)
        for action_set, touched in candidates:
            child = apply_action_set(
                problem, node, action_set, all_startable,
                parent_eff=parent_eff, touched=touched,
                startable_pairs=startable_pairs,
            )
            if child is not None:
                children.append(child)

    if not children and all_startable:
        # Every action set was redundant against the parent's startable
        # record.  In the optimal search the parent's siblings cover those
        # schedules, but a bounded-queue (practical-mode) search may have
        # trimmed them away — regenerate ignoring the redundancy rule so
        # the node is never a dead end.
        if metrics is not None:
            metrics.counter("expand.redundancy_fallbacks").inc()
        masks = dict(startable_pairs)
        if config.greedy_gates:
            fallback_sets = [s for s in action_sets if s]
        else:
            fallback_sets = [
                s for s, _m in _enumerate_masked(
                    [(a, m, True) for a, m in startable_pairs],
                    config.max_swaps_per_step, frozenset(),
                    include_empty=False,
                )
            ]
        for action_set in fallback_sets:
            child = apply_action_set(
                problem, node, action_set, all_startable,
                masks=masks, parent_eff=parent_eff,
            )
            if child is not None:
                children.append(child)
    if metrics is not None:
        metrics.histogram("expand.startable_gates").observe(len(gates))
        metrics.histogram("expand.startable_swaps").observe(len(swaps))
        metrics.histogram("expand.action_sets").observe(num_sets)
        metrics.histogram("expand.children").observe(len(children))
    return children
