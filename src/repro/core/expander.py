"""Node expansion: enumerate successor states (paper Section 4.2, Expander).

Given a node at an event time, the expander enumerates every compatible
(qubit-disjoint) set of startable actions — dependency-resolved original
gates whose operands are adjacent and idle, plus SWAPs on idle coupled
pairs — applies the three redundancy criteria, starts the chosen set, and
advances to the next finish event.

The practical mapper (Section 6.2) reuses this machinery with extra
restrictions: ready original gates are always started, candidate SWAPs are
limited to those relevant to the blocked CNOT frontier, and SWAPs that would
break a currently-satisfiable frontier gate are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import MetricsRegistry
from .problem import MappingProblem
from .state import Action, K_GATE, K_SWAP, SearchNode


@dataclass
class ExpansionConfig:
    """Tuning knobs for node expansion.

    Attributes:
        greedy_gates: Start every startable original gate immediately
            (practical-mode relaxation; optimal mode must keep this False
            since delaying a gate can enable an earlier SWAP).
        frontier_swaps_only: Restrict candidate SWAPs to edges touching the
            current positions of logical qubits belonging to blocked
            frontier two-qubit gates.
        protect_satisfied_frontier: Reject SWAPs that move an operand of a
            dependency-ready, coupling-satisfied two-qubit gate (the
            paper's "not allowing swaps that cause the executable gates on
            the CNOT frontier not executable").
        max_swaps_per_step: Cap on simultaneous SWAP starts per child
            (None = unlimited; practical mode uses a small cap to bound
            branching).
        max_candidate_swaps: Keep only this many candidate SWAPs, ranked
            by how much they shorten the blocked frontier's distances
            (None = keep all; practical mode uses a small pool).
    """

    greedy_gates: bool = False
    frontier_swaps_only: bool = False
    protect_satisfied_frontier: bool = False
    max_swaps_per_step: Optional[int] = None
    max_candidate_swaps: Optional[int] = None


OPTIMAL_EXPANSION = ExpansionConfig()


def frontier_gates(problem: MappingProblem, node: SearchNode) -> List[int]:
    """Dependency-ready gates (every operand pointer rests on them)."""
    ready: List[int] = []
    seen: Set[int] = set()
    for logical in range(problem.num_logical):
        index = node.ptr[logical]
        if index >= len(problem.seq[logical]):
            continue
        gate = problem.seq[logical][index]
        if gate in seen:
            continue
        seen.add(gate)
        if all(
            node.ptr[q] == problem.gate_pos[gate][q]
            for q in problem.gate_qubits[gate]
        ):
            ready.append(gate)
    ready.sort()
    return ready


def startable_actions(
    problem: MappingProblem,
    node: SearchNode,
    config: ExpansionConfig = OPTIMAL_EXPANSION,
) -> Tuple[List[Action], List[Action]]:
    """Actions that may start at the node's current cycle.

    Returns:
        ``(gates, swaps)`` — startable original-gate actions and startable
        SWAP actions, each qubit-idle, dependency-resolved and coupling-
        compliant, with the cyclic-SWAP redundancy already removed.
    """
    busy = node.busy_physical(problem.gate_qubits)
    gates: List[Action] = []
    blocked_positions: Set[int] = set()
    protected_positions: Set[int] = set()

    for gate in frontier_gates(problem, node):
        qubits = problem.gate_qubits[gate]
        positions = [node.pos[q] for q in qubits]
        if any(p < 0 for p in positions):
            continue  # practical mapper places qubits before this point
        if len(qubits) == 2:
            p1, p2 = positions
            adjacent = problem.dist[p1][p2] == 1
            if not adjacent:
                blocked_positions.update(positions)
                continue
            protected_positions.update(positions)
            if p1 in busy or p2 in busy:
                continue
            gates.append(("g", gate))
        else:
            if positions[0] in busy:
                continue
            gates.append(("g", gate))

    swaps: List[Action] = []
    for p, q in problem.edges:
        if p in busy or q in busy:
            continue
        if node.inv[p] < 0 and node.inv[q] < 0:
            continue  # moving two unused qubits accomplishes nothing
        if (p, q) in node.last_swaps:
            continue  # cyclic SWAP: would cancel the one just completed
        if config.frontier_swaps_only and not (
            p in blocked_positions or q in blocked_positions
        ):
            continue
        if config.protect_satisfied_frontier and (
            p in protected_positions or q in protected_positions
        ):
            continue
        swaps.append(("s", p, q))

    if (
        config.max_candidate_swaps is not None
        and len(swaps) > config.max_candidate_swaps
    ):
        blocked_pairs = _blocked_frontier_pairs(problem, node)
        dist = problem.dist

        def improvement(action: Action) -> int:
            _, p, q = action
            gain = 0
            for p1, p2 in blocked_pairs:
                before = dist[p1][p2]
                a1 = q if p1 == p else (p if p1 == q else p1)
                a2 = q if p2 == p else (p if p2 == q else p2)
                gain += before - dist[a1][a2]
            return gain

        swaps.sort(key=lambda a: (-improvement(a), a))
        swaps = swaps[: config.max_candidate_swaps]
    return gates, swaps


def _blocked_frontier_pairs(
    problem: MappingProblem, node: SearchNode
) -> List[Tuple[int, int]]:
    """Physical positions of blocked (non-adjacent) frontier CNOT pairs."""
    pairs: List[Tuple[int, int]] = []
    for gate in frontier_gates(problem, node):
        qubits = problem.gate_qubits[gate]
        if len(qubits) != 2:
            continue
        p1, p2 = node.pos[qubits[0]], node.pos[qubits[1]]
        if p1 >= 0 and p2 >= 0 and problem.dist[p1][p2] > 1:
            pairs.append((p1, p2))
    return pairs


def _action_mask(problem: MappingProblem, node: SearchNode, action: Action) -> int:
    """Bitmask of the physical qubits an action occupies."""
    if action[0] == "s":
        return (1 << action[1]) | (1 << action[2])
    mask = 0
    for logical in problem.gate_qubits[action[1]]:
        mask |= 1 << node.pos[logical]
    return mask


def enumerate_action_sets(
    problem: MappingProblem,
    node: SearchNode,
    gates: Sequence[Action],
    swaps: Sequence[Action],
    config: ExpansionConfig = OPTIMAL_EXPANSION,
) -> List[Tuple[Action, ...]]:
    """All compatible action subsets (including the empty set).

    In greedy-gate mode every startable gate is forced into each subset and
    only the SWAP choice varies; in optimal mode all subsets of the
    combined action list are generated.  Subsets whose qubits overlap are
    skipped during the recursion rather than generated and filtered.
    """
    results: List[Tuple[Action, ...]] = []

    if config.greedy_gates:
        base: List[Action] = []
        base_mask = 0
        for action in gates:
            mask = _action_mask(problem, node, action)
            if not (base_mask & mask):
                base.append(action)
                base_mask |= mask
        candidates = [
            (a, _action_mask(problem, node, a))
            for a in swaps
            if not (_action_mask(problem, node, a) & base_mask)
        ]
        limit = config.max_swaps_per_step

        def recurse_swaps(start: int, mask: int, chosen: List[Action]) -> None:
            results.append(tuple(base) + tuple(chosen))
            if limit is not None and len(chosen) >= limit:
                return
            for i in range(start, len(candidates)):
                action, amask = candidates[i]
                if mask & amask:
                    continue
                chosen.append(action)
                recurse_swaps(i + 1, mask | amask, chosen)
                chosen.pop()

        recurse_swaps(0, base_mask, [])
        return results

    actions = [(a, _action_mask(problem, node, a)) for a in list(gates) + list(swaps)]

    def recurse(start: int, mask: int, chosen: List[Action], swap_count: int) -> None:
        results.append(tuple(chosen))
        for i in range(start, len(actions)):
            action, amask = actions[i]
            if mask & amask:
                continue
            is_swap = action[0] == "s"
            if (
                is_swap
                and config.max_swaps_per_step is not None
                and swap_count >= config.max_swaps_per_step
            ):
                continue
            chosen.append(action)
            recurse(i + 1, mask | amask, chosen, swap_count + (1 if is_swap else 0))
            chosen.pop()

    recurse(0, 0, [], 0)
    return results


def apply_action_set(
    problem: MappingProblem,
    node: SearchNode,
    action_set: Tuple[Action, ...],
    all_startable: FrozenSet[Action],
) -> Optional[SearchNode]:
    """Start ``action_set`` at ``node.time`` and advance to the next event.

    Returns ``None`` when the set is empty and nothing is in flight (time
    could not advance) — the caller never treats that as a child.

    Args:
        problem: Problem instance.
        node: Parent node.
        action_set: Qubit-disjoint startable actions.
        all_startable: Every action startable at the parent (used to record
            ``prev_startable`` on the child for the redundancy check).
    """
    inflight = list(node.inflight)
    ptr = list(node.ptr)
    started = node.started
    last_swaps = set(node.last_swaps)
    touched: Set[int] = set()
    time = node.time

    for action in action_set:
        if action[0] == "g":
            gate = action[1]
            for logical in problem.gate_qubits[gate]:
                ptr[logical] += 1
                touched.add(node.pos[logical])
            started += 1
            inflight.append(
                (time + problem.gate_latency[gate], K_GATE, gate, 0)
            )
        else:
            _, p, q = action
            touched.add(p)
            touched.add(q)
            inflight.append((time + problem.swap_len, K_SWAP, p, q))

    if touched:
        last_swaps = {
            pair for pair in last_swaps
            if pair[0] not in touched and pair[1] not in touched
        }

    if not inflight:
        return None

    next_time = min(item[0] for item in inflight)
    pos = list(node.pos)
    inv = list(node.inv)
    remaining = []
    for item in inflight:
        if item[0] > next_time:
            remaining.append(item)
            continue
        _finish, kind, a, b = item
        if kind == K_SWAP:
            l1, l2 = inv[a], inv[b]
            inv[a], inv[b] = l2, l1
            if l1 >= 0:
                pos[l1] = b
            if l2 >= 0:
                pos[l2] = a
            last_swaps.add((a, b))
    remaining.sort()

    chosen_mask = _mask_of(touched)
    prev_startable = frozenset(
        action
        for action in all_startable
        if action not in action_set
        and not (_action_mask(problem, node, action) & chosen_mask)
    )

    return SearchNode(
        time=next_time,
        pos=tuple(pos),
        inv=tuple(inv),
        ptr=tuple(ptr),
        started=started,
        inflight=tuple(remaining),
        last_swaps=frozenset(last_swaps),
        prev_startable=prev_startable,
        parent=node,
        actions=tuple(action_set),
        prefix_layers=-1,
    )


def _mask_of(qubits: Set[int]) -> int:
    mask = 0
    for q in qubits:
        mask |= 1 << q
    return mask


def expand(
    problem: MappingProblem,
    node: SearchNode,
    config: ExpansionConfig = OPTIMAL_EXPANSION,
    metrics: Optional[MetricsRegistry] = None,
) -> List[SearchNode]:
    """All non-redundant children of ``node``.

    Applies, in order: the coupling and dependency criteria (inside
    :func:`startable_actions`), the cyclic-SWAP check, the empty-set rule
    (waiting is only allowed while something is in flight), and the
    could-have-started-earlier redundancy rule against the parent's
    recorded startable set.

    Args:
        problem: Problem instance.
        node: Node to expand.
        config: Expansion restrictions (optimal vs. practical mode).
        metrics: When given, records per-expansion distributions
            (``expand.startable_gates/startable_swaps/action_sets/
            children``) and counts redundancy-fallback regenerations.
    """
    gates, swaps = startable_actions(problem, node, config)
    all_startable = frozenset(gates) | frozenset(swaps)
    children: List[SearchNode] = []
    action_sets = enumerate_action_sets(problem, node, gates, swaps, config)
    for action_set in action_sets:
        if not action_set:
            if not node.inflight:
                continue  # cannot let time pass with nothing running
        elif action_set and all(
            action in node.prev_startable for action in action_set
        ):
            continue  # a sibling of the parent already started these earlier
        child = apply_action_set(problem, node, action_set, all_startable)
        if child is not None:
            children.append(child)
    if not children and all_startable:
        # Every action set was redundant against the parent's startable
        # record.  In the optimal search the parent's siblings cover those
        # schedules, but a bounded-queue (practical-mode) search may have
        # trimmed them away — regenerate ignoring the redundancy rule so
        # the node is never a dead end.
        if metrics is not None:
            metrics.counter("expand.redundancy_fallbacks").inc()
        for action_set in action_sets:
            if not action_set:
                continue
            child = apply_action_set(problem, node, action_set, all_startable)
            if child is not None:
                children.append(child)
    if metrics is not None:
        metrics.histogram("expand.startable_gates").observe(len(gates))
        metrics.histogram("expand.startable_swaps").observe(len(swaps))
        metrics.histogram("expand.action_sets").observe(len(action_sets))
        metrics.histogram("expand.children").observe(len(children))
    return children
