"""Hash-based node filtering (paper Section 4.2, Filter; Fig. 5).

Nodes are grouped by a hash of their *effective* state — the qubit mapping
assuming all in-flight SWAPs take effect, together with per-qubit scheduling
progress.  Within a group two checks run:

* **Equivalence** — a node identical to a stored one (same cycle, same
  per-qubit release times, same in-flight gate finish times) is dropped
  (Fig. 5a).
* **Comparative analysis (dominance)** — node ``A`` is dropped when some
  stored ``B`` with the same effective state finishes every started gate no
  later and releases every physical qubit no later, at a cycle no later
  (Fig. 5b).  Conversely a stored node dominated by a newcomer is lazily
  *killed*: it stays in the priority queue but is skipped when popped.

When constructed with a :class:`~repro.obs.MetricsRegistry` the filter
mirrors its drop counters into ``filter.*`` metrics so snapshots taken
mid-search (or on budget exhaustion) see pruning behavior over time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import (
    PRUNE_BOUND_KILL,
    PRUNE_CLOSED_DOMINANCE,
    PRUNE_DOMINANCE,
    PRUNE_DOMINANCE_KILL,
    PRUNE_EQUIVALENCE,
)
from .kernels.api import KernelBackend, pure_dominates, pure_profile
from .problem import MappingProblem
from .state import SearchNode


class _Entry:
    __slots__ = ("time", "qfree", "gate_finish", "node")

    def __init__(self, time, qfree, gate_finish, node):
        self.time = time
        self.qfree = qfree
        self.gate_finish = gate_finish
        self.node = node


#: The reference implementations now live with the kernel backends
#: (kernels/api.py) so compiled variants can shadow them without an
#: import cycle; these aliases keep this module's historical names.
_profile = pure_profile
_dominates = pure_dominates


class StateFilter:
    """Equivalence + dominance filter over generated nodes.

    Usage: call :meth:`admit` on every freshly generated node; a ``False``
    return means the node is redundant and must not be queued.  Stored
    nodes that become dominated are marked ``killed`` (the A* loop skips
    killed nodes when popping).
    """

    def __init__(
        self,
        problem: MappingProblem,
        dominance: bool = True,
        live_only: bool = False,
        closed_dominance: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        trace=None,
        kernel: Optional[KernelBackend] = None,
    ) -> None:
        self._problem = problem
        self._dominance = dominance
        self._live_only = live_only
        #: Let *closed* (already expanded) entries dominate newcomers that
        #: are not their own wait-descendants.  Sound for optimal-depth
        #: search: a closed node's coverage of a dominated newcomer runs
        #: through its already-enumerated subtree, and the only children
        #: remaining in its bucket — pure wait-children — are exempted by
        #: an exact parent-chain test, so that subtree is never severed
        #: (the circularity that forbids naive closed-node dominance; see
        #: ``admit``).  Off for all-optima enumeration, which must keep
        #: equal-depth alternatives.
        self._closed_dominance = closed_dominance
        #: Optional :class:`~repro.obs.trace.TraceRecorder`; when set,
        #: every drop/kill is attributed (``equivalence`` / ``dominance``
        #: / ``dominance_kill`` / ``incumbent_bound_kill``).
        self._trace = trace
        self._kernel = kernel if kernel is not None else KernelBackend()
        # The compiled backend's fused bucket scan replaces the python
        # admit loop — but only uninstrumented: metrics/trace need the
        # per-comparison attribution the python scan provides.  The
        # semantics (and counters) are identical either way.
        fused = (
            metrics is None
            and trace is None
            and not closed_dominance
            and self._kernel.admit_scan is not None
        )
        self._admit_scan = self._kernel.admit_scan if fused else None
        self._entry_type = self._kernel.make_entry if fused else _Entry
        self._table: Dict[Tuple, List[_Entry]] = {}
        self.equivalent_dropped = 0
        self.dominated_dropped = 0
        self.closed_dominated = 0
        self.killed = 0
        # Pre-bound instruments: the hot admit() path pays one None check.
        if metrics is not None:
            self._m_equivalent = metrics.counter("filter.equivalent_dropped")
            self._m_dominated = metrics.counter("filter.dominated_dropped")
            self._m_closed = metrics.counter("filter.closed_dominated")
            self._m_killed = metrics.counter("filter.killed")
            self._m_group_size = metrics.histogram("filter.group_size")
        else:
            self._m_equivalent = None
            self._m_dominated = None
            self._m_closed = None
            self._m_killed = None
            self._m_group_size = None

    def admit(self, node: SearchNode) -> bool:
        """Consider ``node``; True if it should enter the priority queue.

        Every scan over a group compacts it: dead entries (killed nodes,
        and dropped ones in ``live_only`` mode) are written back out of
        the bucket even when the newcomer is rejected early, so hot
        buckets no longer accumulate corpses between :meth:`compact`
        calls.
        """
        kernel = self._kernel
        key = kernel.filter_key(node)
        qfree, gate_finish = kernel.profile(self._problem, node)
        entry = self._entry_type(node.time, qfree, gate_finish, node)
        bucket = self._table.get(key)
        if bucket is None:
            self._table[key] = [entry]
            if self._m_group_size is not None:
                self._m_group_size.observe(1)
            return True
        if self._admit_scan is not None:
            code, new_bucket, killed_now = self._admit_scan(
                bucket, entry, self._dominance, self._live_only
            )
            if code == 1:
                self.equivalent_dropped += 1
                if new_bucket is not None:
                    self._table[key] = new_bucket
                return False
            if code == 2:
                self.dominated_dropped += 1
                if new_bucket is not None:
                    self._table[key] = new_bucket
                return False
            self._table[key] = new_bucket
            if killed_now:
                self.killed += killed_now
            return True
        survivors: List[_Entry] = []
        for index, existing in enumerate(bucket):
            if existing.node.killed:
                continue
            if self._live_only and existing.node.dropped:
                continue
            equivalent = (
                existing.time == entry.time
                and existing.qfree == entry.qfree
                and existing.gate_finish == entry.gate_finish
            )
            if equivalent:
                self.equivalent_dropped += 1
                if self._m_equivalent is not None:
                    self._m_equivalent.inc()
                if self._trace is not None:
                    self._trace.prune(PRUNE_EQUIVALENCE, node=node)
                # Write back the compacted prefix so dead entries found
                # during this scan don't linger on the bucket.
                if len(survivors) < index:
                    self._table[key] = survivors + bucket[index:]
                return False
            # Dominance may by default only be exercised by *open* nodes
            # (still in the priority queue) — the paper compares expanded
            # nodes "to all the previous nodes (in the priority queue)".
            # A closed node's coverage of the newcomer runs through its
            # own descendants, one of which may BE the newcomer (e.g. the
            # wait-child realizing a pending SWAP); dropping it would
            # sever the only path that justified the domination.  With
            # ``closed_dominance`` an expanded entry also dominates
            # unless the newcomer is its own wait-descendant: only pure
            # wait-children stay in the dominator's bucket (started gates
            # advance ``ptr``, started SWAPs change the effective
            # mapping), so walking the newcomer's parent chain while it
            # remains in this bucket decides descendance exactly — and a
            # non-descendant newcomer is covered outright by the closed
            # node's already-enumerated subtree, whose wait-spine is
            # itself descendant-exempt and therefore never severed.
            existing_closed = existing.node.dropped
            if (
                self._dominance
                and (
                    not existing_closed
                    or (
                        self._closed_dominance
                        and not self._wait_descendant(node, existing.node)
                    )
                )
                and _dominates(existing, entry)
            ):
                if existing_closed:
                    self.closed_dominated += 1
                    if self._m_closed is not None:
                        self._m_closed.inc()
                    if self._trace is not None:
                        self._trace.prune(PRUNE_CLOSED_DOMINANCE, node=node)
                else:
                    self.dominated_dropped += 1
                    if self._m_dominated is not None:
                        self._m_dominated.inc()
                    if self._trace is not None:
                        self._trace.prune(PRUNE_DOMINANCE, node=node)
                if len(survivors) < index:
                    self._table[key] = survivors + bucket[index:]
                return False
            survivors.append(existing)
        kept: List[_Entry] = []
        for existing in survivors:
            if (
                self._dominance
                and not existing.node.dropped
                and _dominates(entry, existing)
            ):
                existing.node.killed = True
                self.killed += 1
                if self._m_killed is not None:
                    self._m_killed.inc()
                if self._trace is not None:
                    self._trace.prune(
                        PRUNE_DOMINANCE_KILL, node=existing.node
                    )
            else:
                kept.append(existing)
        kept.append(entry)
        self._table[key] = kept
        if self._m_group_size is not None:
            self._m_group_size.observe(len(kept))
        return True

    def _wait_descendant(self, node: SearchNode, ancestor: SearchNode) -> bool:
        """True when ``node`` descends from ``ancestor`` via pure waits.

        Wait-children share their parent's effective-state bucket, so the
        chain of same-key ancestors is exactly the wait-spine; the walk
        stops at the first ancestor in a different bucket (a few steps at
        most).  An in-flight-free ancestor has no wait-children at all,
        so the walk is skipped outright.
        """
        if not ancestor.inflight:
            return False
        key = self._kernel.filter_key(node)
        parent = node.parent
        while parent is not None:
            if parent is ancestor:
                return True
            if self._kernel.filter_key(parent) != key:
                return False
            parent = parent.parent
        return False

    @property
    def num_states(self) -> int:
        """Number of distinct effective states seen so far."""
        return len(self._table)

    def kill_above_bound(self, bound: int) -> int:
        """Kill open stored nodes whose ``f`` strictly exceeds ``bound``.

        Called when the incumbent upper bound tightens: an open node with
        ``f > bound`` can only reach terminals deeper than a schedule we
        already hold (``h`` is admissible), so it is lazily killed — it
        stays in the priority queue but is skipped when popped, and its
        filter entry is dropped so the bucket scan no longer walks it.
        Closed (expanded) nodes are left alone; their ``f`` no longer
        gates anything.

        Returns the number of nodes killed (also added to the running
        ``killed`` counter and the ``filter.killed`` metric).
        """
        killed_now = 0
        for key, bucket in list(self._table.items()):
            survivors = []
            for entry in bucket:
                node = entry.node
                if not node.killed and not node.dropped and node.f > bound:
                    node.killed = True
                    killed_now += 1
                    continue
                if not node.killed:
                    survivors.append(entry)
            if len(survivors) != len(bucket):
                if survivors:
                    self._table[key] = survivors
                else:
                    del self._table[key]
        if killed_now:
            self.killed += killed_now
            if self._m_killed is not None:
                self._m_killed.inc(killed_now)
            if self._trace is not None:
                self._trace.prune(PRUNE_BOUND_KILL, count=killed_now)
        return killed_now

    def release(self) -> None:
        """Drop every entry, freeing the node graph they pin.

        Called on search abort so the hundreds of thousands of retained
        nodes die by reference counting while the cyclic collector is
        still paused (see ``gcpause``) instead of being walked by the
        deferred generation-0 scan after the pause lifts.
        """
        self._table = {}

    def compact(self) -> None:
        """Drop entries whose nodes are dead (killed or dropped).

        Only meaningful in ``live_only`` mode, where dead entries can
        never filter anything again; long practical-mode runs call this
        on every queue trim to keep memory proportional to the open list.
        """
        if not self._live_only:
            return
        table: Dict[Tuple, List[_Entry]] = {}
        for key, bucket in self._table.items():
            alive = [
                e for e in bucket
                if not e.node.killed and not e.node.dropped
            ]
            if alive:
                table[key] = alive
        self._table = table
