"""Hash-based node filtering (paper Section 4.2, Filter; Fig. 5).

Nodes are grouped by a hash of their *effective* state — the qubit mapping
assuming all in-flight SWAPs take effect, together with per-qubit scheduling
progress.  Within a group two checks run:

* **Equivalence** — a node identical to a stored one (same cycle, same
  per-qubit release times, same in-flight gate finish times) is dropped
  (Fig. 5a).
* **Comparative analysis (dominance)** — node ``A`` is dropped when some
  stored ``B`` with the same effective state finishes every started gate no
  later and releases every physical qubit no later, at a cycle no later
  (Fig. 5b).  Conversely a stored node dominated by a newcomer is lazily
  *killed*: it stays in the priority queue but is skipped when popped.

When constructed with a :class:`~repro.obs.MetricsRegistry` the filter
mirrors its drop counters into ``filter.*`` metrics so snapshots taken
mid-search (or on budget exhaustion) see pruning behavior over time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .problem import MappingProblem
from .state import K_SWAP, SearchNode


class _Entry:
    __slots__ = ("time", "qfree", "gate_finish", "node")

    def __init__(self, time, qfree, gate_finish, node):
        self.time = time
        self.qfree = qfree
        self.gate_finish = gate_finish
        self.node = node


def _profile(
    problem: MappingProblem, node: SearchNode
) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """Per-physical-qubit release times and in-flight gate finish times."""
    qfree = [node.time] * problem.num_physical
    gate_finish: Dict[int, int] = {}
    for finish, kind, a, b in node.inflight:
        if kind == K_SWAP:
            qfree[a] = max(qfree[a], finish)
            qfree[b] = max(qfree[b], finish)
        else:
            gate_finish[a] = finish
            for logical in problem.gate_qubits[a]:
                p = node.pos[logical]
                qfree[p] = max(qfree[p], finish)
    return tuple(qfree), gate_finish


def _dominates(better: _Entry, worse: _Entry) -> bool:
    """True when ``better`` can mimic any completion of ``worse``.

    Beyond the timing conditions (no later anywhere), the dominating node
    must not be more *restricted* than the dominated one: its subtree
    prunes first steps recorded in ``prev_startable`` (could-have-started-
    earlier redundancy) and immediate-undo SWAPs recorded in
    ``last_swaps``, so those sets must be subsets of the loser's —
    otherwise a completion available under ``worse`` may be pruned under
    ``better`` and optimality is lost.
    """
    if better.time > worse.time:
        return False
    for p, release in enumerate(better.qfree):
        if release > worse.qfree[p]:
            return False
    for gate in better.gate_finish.keys() | worse.gate_finish.keys():
        finish_better = better.gate_finish.get(gate, better.time)
        finish_worse = worse.gate_finish.get(gate, worse.time)
        if finish_better > finish_worse:
            return False
    if not better.node.last_swaps <= worse.node.last_swaps:
        return False
    if not better.node.prev_startable <= worse.node.prev_startable:
        return False
    return True


class StateFilter:
    """Equivalence + dominance filter over generated nodes.

    Usage: call :meth:`admit` on every freshly generated node; a ``False``
    return means the node is redundant and must not be queued.  Stored
    nodes that become dominated are marked ``killed`` (the A* loop skips
    killed nodes when popping).
    """

    def __init__(
        self,
        problem: MappingProblem,
        dominance: bool = True,
        live_only: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._problem = problem
        self._dominance = dominance
        self._live_only = live_only
        self._table: Dict[Tuple, List[_Entry]] = {}
        self.equivalent_dropped = 0
        self.dominated_dropped = 0
        self.killed = 0
        # Pre-bound instruments: the hot admit() path pays one None check.
        if metrics is not None:
            self._m_equivalent = metrics.counter("filter.equivalent_dropped")
            self._m_dominated = metrics.counter("filter.dominated_dropped")
            self._m_killed = metrics.counter("filter.killed")
        else:
            self._m_equivalent = None
            self._m_dominated = None
            self._m_killed = None

    def admit(self, node: SearchNode) -> bool:
        """Consider ``node``; True if it should enter the priority queue."""
        key = node.filter_key()
        qfree, gate_finish = _profile(self._problem, node)
        entry = _Entry(node.time, qfree, gate_finish, node)
        bucket = self._table.get(key)
        if bucket is None:
            self._table[key] = [entry]
            return True
        survivors: List[_Entry] = []
        for existing in bucket:
            if existing.node.killed:
                continue
            if self._live_only and existing.node.dropped:
                continue
            equivalent = (
                existing.time == entry.time
                and existing.qfree == entry.qfree
                and existing.gate_finish == entry.gate_finish
            )
            if equivalent:
                self.equivalent_dropped += 1
                if self._m_equivalent is not None:
                    self._m_equivalent.inc()
                return False
            # Dominance may only be exercised by *open* nodes (still in
            # the priority queue) — the paper compares expanded nodes "to
            # all the previous nodes (in the priority queue)".  A closed
            # node's coverage of the newcomer runs through its own
            # descendants, one of which may BE the newcomer (e.g. the
            # wait-child realizing a pending SWAP); dropping it would
            # sever the only path that justified the domination.
            if (
                self._dominance
                and not existing.node.dropped
                and _dominates(existing, entry)
            ):
                self.dominated_dropped += 1
                if self._m_dominated is not None:
                    self._m_dominated.inc()
                return False
            survivors.append(existing)
        kept: List[_Entry] = []
        for existing in survivors:
            if (
                self._dominance
                and not existing.node.dropped
                and _dominates(entry, existing)
            ):
                existing.node.killed = True
                self.killed += 1
                if self._m_killed is not None:
                    self._m_killed.inc()
            else:
                kept.append(existing)
        kept.append(entry)
        self._table[key] = kept
        return True

    @property
    def num_states(self) -> int:
        """Number of distinct effective states seen so far."""
        return len(self._table)

    def compact(self) -> None:
        """Drop entries whose nodes are dead (killed or dropped).

        Only meaningful in ``live_only`` mode, where dead entries can
        never filter anything again; long practical-mode runs call this
        on every queue trim to keep memory proportional to the open list.
        """
        if not self._live_only:
            return
        table: Dict[Tuple, List[_Entry]] = {}
        for key, bucket in self._table.items():
            alive = [
                e for e in bucket
                if not e.node.killed and not e.node.dropped
            ]
            if alive:
                table[key] = alive
        self._table = table
