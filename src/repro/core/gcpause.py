"""Cyclic-GC suspension around allocation-heavy search loops.

The A* hot loop allocates hundreds of thousands of container objects
(nodes, inflight tuples, filter entries) while keeping most of them alive
on the open list — exactly the pattern that makes CPython's generational
collector thrash: every threshold crossing re-walks the whole live set
and finds nothing to free, because the search graph is acyclic by
construction (children reference parents, never the reverse; the heap and
filter tables are flat containers).  Suspending the cyclic collector for
the duration of a search is therefore pure overhead removal — reference
counting still reclaims everything the search drops — and measures ~40%
of exact-search wall time on the QFT-8/LNN microbenchmark.

Soundness: cycles created *while* paused are not leaked, only deferred —
collection resumes (with an immediate pass implied by later threshold
crossings) as soon as the context exits.  The pause nests safely and
restores the collector only if it was enabled on entry, so callers that
manage GC themselves are left alone.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def pause_gc() -> Iterator[None]:
    """Disable the cyclic collector for the duration of the block.

    Restores the collector's previous state on exit (including on
    exceptions such as search-budget aborts), so nested pauses and
    externally-disabled collectors behave as expected.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
