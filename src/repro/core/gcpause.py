"""Cyclic-GC suspension around allocation-heavy search loops.

The A* hot loop allocates hundreds of thousands of container objects
(nodes, inflight tuples, filter entries) while keeping most of them alive
on the open list — exactly the pattern that makes CPython's generational
collector thrash: every threshold crossing re-walks the whole live set
and finds nothing to free, because the search graph is acyclic by
construction (children reference parents, never the reverse; the heap and
filter tables are flat containers).  Suspending the cyclic collector for
the duration of a search is therefore pure overhead removal — reference
counting still reclaims everything the search drops — and measures ~40%
of exact-search wall time on the QFT-8/LNN microbenchmark.

Soundness: cycles created *while* paused are not leaked, only deferred —
collection resumes (with an immediate pass implied by later threshold
crossings) as soon as the context exits.  The pause nests safely and
restores the collector only if it was enabled on entry, so callers that
manage GC themselves are left alone.
"""

from __future__ import annotations

import gc
import time as _time
from contextlib import contextmanager
from typing import Dict, Iterator

#: Number of live ``pause_gc`` contexts.  A per-context "was enabled"
#: snapshot breaks under out-of-order exits (generator-held contexts,
#: batch drivers interleaving two searches): the first context to exit
#: would re-enable the collector while the other is still inside its
#: pause.  The collector is touched only on the 0→1 and 1→0 transitions
#: of this counter, so any interleaving keeps it paused until the last
#: context leaves.
_depth = 0
#: Whether the outermost entry actually disabled the collector (False
#: when the caller manages GC itself and it was already off).
_reenable = False

# --- suspension-window accounting --------------------------------------
# The resource sampler (obs/runtime.py) reports GC pauses measured via
# ``gc.callbacks`` — which by construction see *nothing* while the
# collector is suspended here.  These counters close that blind spot:
# they record how many suspension windows ran and for how long, so a
# resource trail can distinguish "no GC pauses because the heap was
# quiet" from "no GC pauses because the search had the collector off".
_windows = 0
_suspended_total = 0.0
_window_started: float = 0.0


def suspension_stats() -> Dict[str, float]:
    """Cumulative ``pause_gc`` accounting for this process.

    Returns ``{"windows", "suspended_s", "active"}`` where
    ``suspended_s`` includes the currently-open window (when one is
    active) so samplers polling mid-search see time advance.
    """
    total = _suspended_total
    active = _depth > 0
    if active:
        total += _time.perf_counter() - _window_started
    return {
        "windows": _windows,
        "suspended_s": total,
        "active": active,
    }


@contextmanager
def pause_gc() -> Iterator[None]:
    """Disable the cyclic collector for the duration of the block.

    Restores the collector's previous state when the last active pause
    exits (including on exceptions such as search-budget aborts), so
    nested or interleaved pauses and externally-disabled collectors
    behave as expected.
    """
    global _depth, _reenable, _windows, _suspended_total, _window_started
    if _depth == 0:
        _reenable = gc.isenabled()
        if _reenable:
            gc.disable()
        _windows += 1
        _window_started = _time.perf_counter()
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            _suspended_total += _time.perf_counter() - _window_started
            if _reenable:
                gc.enable()
            _reenable = False
