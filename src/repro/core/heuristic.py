"""The admissible cost-to-go heuristic ``h(v)`` (paper Section 5.1).

For each gate ``g`` remaining in the circuit we compute ``t_min(g)``, a
lower bound (relative to the node's current cycle) on when ``g`` can begin:

* in-flight gates/SWAPs have ``t_min = 0`` and contribute their *remaining*
  length;
* a gate's immediate predecessors (the previous remaining element on each
  operand qubit's chain) give ``u = max(t_min(pred) + len(pred))``;
* a two-qubit gate whose operands sit at distance ``d > 1`` under π_rem
  (the mapping after in-flight SWAPs take effect) additionally needs at
  least ``d − 1`` SWAPs split as ``r`` on one operand and ``s = d−1−r`` on
  the other.  Each operand qubit has *slack* ``u − T`` (``T`` = total
  remaining predecessor cycles on that qubit) that can absorb SWAP latency;
  we pick the split minimizing the larger delay — exactly the computation
  that defeats the "meet in the middle" fallacy of Fig. 9.

``h(v) = max_g t_min(g) + len(g)`` is admissible (paper Lemma A.1); tests
cross-check it against exhaustive optimal depths.

Hot-path implementation notes (the reference semantics are preserved
bit-for-bit; :func:`_heuristic_cost_reference` keeps the original
formulation for cross-checking):

* Pending two-qubit gates are enumerated by merging the precomputed
  per-owner suffix runs (``problem.own2``) — no per-call set building.
* Runs of pending single-qubit gates between two-qubit gates on a chain
  only ever shift that chain's head/load by their total latency and can
  never set the overall maximum (the next two-qubit gate's finish bound
  dominates them), so they are folded in as one prefix-sum subtraction.
* The SWAP-split minimization over ``r`` is computed in closed form
  (:func:`_swap_split_delay`) with a small per-problem memo table keyed
  on the packed ``(d, slack1, slack2)`` triple (``swap_len`` is constant
  per problem) instead of an ``O(d)`` loop.
* An optional :class:`HeuristicMemo` caches whole evaluations keyed on
  the node's effective signature ``(ptr, pos after in-flight SWAPs,
  relative in-flight profile)`` — everything ``h`` can depend on once
  made relative to the node's cycle.  A memo instance is only sound for
  a fixed ``(window, swap_aware)`` configuration; the searches create
  one per run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .problem import MappingProblem
from .state import K_SWAP, SearchNode

#: Cap on the closed-form split memo; beyond this, entries are computed
#: but no longer stored (the keys are small ints in practice, so the cap
#: exists only as a safety valve against pathological latency models).
_SPLIT_LUT_MAX = 1 << 16
#: Packed-key bound: ``d`` and both slacks must fit 14 bits to use the
#: per-problem LUT; larger values (pathological latency models) fall
#: back to the closed form directly.
_SPLIT_KEY_BOUND = 1 << 14


def _swap_split_delay(d: int, slack1: int, slack2: int, swap_len: int) -> int:
    """Minimum extra delay of splitting ``d - 1`` SWAPs across two operands.

    Closed form for ``min_{0 <= r <= d-1} max(max(0, r·L − slack1),
    max(0, (d−1−r)·L − slack2))``: the first term is nondecreasing in
    ``r`` and the second nonincreasing, so the minimum sits at the
    crossing of their linear parts (or at a boundary of the zero-delay
    plateaus).  Evaluating the ≤6 candidate splits is O(1) regardless of
    the distance ``d``.
    """
    k = d - 1
    L = swap_len
    if L <= 0:
        return 0  # free SWAPs can never delay the gate
    # Feasible zero-delay split: r <= slack1 // L and k - r <= slack2 // L.
    if slack1 // L + slack2 // L >= k:
        return 0
    crossing = (k * L + slack1 - slack2) // (2 * L)
    best = None
    for r in (
        0,
        k,
        crossing,
        crossing + 1,
        slack1 // L,
        k - slack2 // L,
    ):
        if r < 0:
            r = 0
        elif r > k:
            r = k
        delay1 = r * L - slack1
        if delay1 < 0:
            delay1 = 0
        delay2 = (k - r) * L - slack2
        if delay2 < 0:
            delay2 = 0
        worse = delay1 if delay1 >= delay2 else delay2
        if best is None or worse < best:
            best = worse
    return best


def memo_key(node: SearchNode) -> Tuple:
    """The :class:`HeuristicMemo` key of ``node`` (cached on the node).

    The *effective signature*: per-qubit scheduling pointers, the
    mapping after in-flight SWAPs take effect, and the in-flight profile
    made relative to the node's cycle — everything ``h`` can depend on
    once made relative to ``node.time``.  Shared by the scalar
    :func:`heuristic_cost` path and the kernel backends' batch
    evaluation so both populate and hit the same memo table.
    """
    key = node._mkey
    if key is not None:
        return key
    eff_pos, _eff_inv = node.mapping_after_swaps()
    inflight = node.inflight
    if inflight:
        time = node.time
        key = (
            node.ptr,
            eff_pos,
            tuple((f - time, k, a, b) for f, k, a, b in inflight),
        )
    else:
        key = (node.ptr, eff_pos)
    node._mkey = key
    return key


class HeuristicMemo:
    """Whole-evaluation cache for :func:`heuristic_cost`.

    Keyed on the node's *effective signature*: per-qubit scheduling
    pointers, the mapping after in-flight SWAPs take effect, and the
    in-flight profile made relative to the node's cycle.  Two nodes with
    equal signatures are guaranteed the same ``h`` (the proof obligation
    is documented in DESIGN.md §Performance), even when their absolute
    cycles differ — which is exactly where the cache wins over the state
    filter's equivalence check.

    Soundness invariant: one memo instance must only ever be consulted
    with a fixed ``(window, swap_aware)`` configuration; the searches
    create one memo per run.

    Attributes:
        hits / misses: Lifetime counters, mirrored into the
            ``heuristic.memo_hits`` / ``heuristic.memo_misses`` metrics
            when a :class:`~repro.obs.MetricsRegistry` is attached.
    """

    __slots__ = ("table", "hits", "misses", "_m_hits", "_m_misses")

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.table: Dict[Tuple, int] = {}
        self.hits = 0
        self.misses = 0
        if metrics is not None:
            self._m_hits = metrics.counter("heuristic.memo_hits")
            self._m_misses = metrics.counter("heuristic.memo_misses")
        else:
            self._m_hits = None
            self._m_misses = None

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self.table)


def heuristic_cost(
    problem: MappingProblem,
    node: SearchNode,
    window: Optional[int] = None,
    swap_aware: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    memo: Optional[HeuristicMemo] = None,
) -> int:
    """Lower bound on cycles from ``node`` to any terminal node.

    Args:
        problem: The preprocessed problem instance.
        node: The node to evaluate (its ``time`` is the reference point;
            the returned value is relative to it).
        window: If given, only the first ``window`` unstarted gates (in
            program order) are considered — the truncation the practical
            mapper (Section 6.2) uses to stay scalable.  ``None`` means the
            full remaining circuit, which is required for optimality.
        swap_aware: When False, the SWAP-distance term is skipped and the
            bound degrades to the remaining critical path — the uninformed
            lower bound the OLSQ-style baseline (and OLSQ's iterative
            deepening start point) uses.  Still admissible, just weaker.
        metrics: When given, counts calls and records the pending-gate
            workload per evaluation (``heuristic.calls`` /
            ``heuristic.pending_gates``); the caller times the evaluation
            itself (``heuristic.latency_s``) since only it knows whether
            telemetry is on.
        memo: Optional whole-evaluation cache (see :class:`HeuristicMemo`);
            must be dedicated to this ``(window, swap_aware)`` combination.

    Returns:
        ``h(v) >= 0``; zero iff the remaining circuit is empty.
    """
    time = node.time
    inflight = node.inflight
    ptr = node.ptr

    if memo is not None:
        key = memo_key(node)
        cached = memo.table.get(key)
        if cached is not None:
            memo.hits += 1
            if memo._m_hits is not None:
                memo._m_hits.inc()
            return cached
        memo.misses += 1
        if memo._m_misses is not None:
            memo._m_misses.inc()
    else:
        key = None

    if window is not None:
        h = _windowed_cost(problem, node, window, swap_aware, metrics)
        if memo is not None:
            memo.table[key] = h
        return h

    dist_flat = problem.dist_flat
    num_physical = problem.num_physical
    swap_len = problem.swap_len
    num_logical = problem.num_logical
    split_lut = problem.split_lut
    has_singles = problem.has_singles

    head = [0] * num_logical  # finish lower bound of latest chain element
    load = [0] * num_logical  # total remaining predecessor cycles (T)
    h = 0

    if inflight:
        inv_after = list(node.inv)
        gate_qubits = problem.gate_qubits
        for finish, kind, a, b in inflight:
            remaining = finish - time
            if remaining > h:
                h = remaining
            if kind == K_SWAP:
                l1, l2 = inv_after[a], inv_after[b]
                inv_after[a], inv_after[b] = l2, l1
                if l1 >= 0:
                    head[l1] = remaining
                    load[l1] = remaining
                if l2 >= 0:
                    head[l2] = remaining
                    load[l2] = remaining
            else:
                for logical in gate_qubits[a]:
                    head[logical] = remaining
                    load[logical] = remaining
        pos_after = node.mapping_after_swaps()[0]
    else:
        pos_after = node.pos

    if metrics is not None:
        metrics.counter("heuristic.calls").inc()
        metrics.histogram("heuristic.pending_gates").observe(
            problem.num_pending_gates(ptr)
        )

    # Pending two-qubit gate rows in program order, cached per ptr.  The
    # loop comes in specialized variants (singles folding and the
    # SWAP-distance term hoisted out) because this is the single hottest
    # loop of the optimal search.
    rows = problem.pending_rows(ptr)
    if not has_singles:
        if swap_aware:
            fast2 = swap_len > 0
            for l1, l2, length, _p1c, _p2c in rows:
                h1 = head[l1]
                h2 = head[l2]
                u = h1 if h1 >= h2 else h2
                p1 = pos_after[l1]
                p2 = pos_after[l2]
                if p1 >= 0 and p2 >= 0:
                    d = dist_flat[p1 * num_physical + p2]
                    if d > 1:
                        s1 = u - load[l1]
                        s2 = u - load[l2]
                        if d == 2 and fast2:
                            # One SWAP on either operand: the delay is
                            # swap_len minus the larger slack (clamped).
                            best = swap_len - (s1 if s1 >= s2 else s2)
                            if best > 0:
                                u += best
                        else:
                            if s1 < _SPLIT_KEY_BOUND and s2 < _SPLIT_KEY_BOUND:
                                lut_key = (d << 28) | (s1 << 14) | s2
                                best = split_lut.get(lut_key)
                                if best is None:
                                    best = _swap_split_delay(
                                        d, s1, s2, swap_len
                                    )
                                    if len(split_lut) < _SPLIT_LUT_MAX:
                                        split_lut[lut_key] = best
                            else:
                                best = _swap_split_delay(d, s1, s2, swap_len)
                            u += best
                end = u + length
                head[l1] = end
                head[l2] = end
                load[l1] += length
                load[l2] += length
                if end > h:
                    h = end
        else:
            for l1, l2, length, _p1c, _p2c in rows:
                h1 = head[l1]
                h2 = head[l2]
                end = (h1 if h1 >= h2 else h2) + length
                head[l1] = end
                head[l2] = end
                load[l1] += length
                load[l2] += length
                if end > h:
                    h = end
        if memo is not None:
            memo.table[key] = h
        return h

    single_prefix = problem.single_prefix
    chain_i = list(ptr)
    for l1, l2, length, p1c, p2c in rows:
        # Single-qubit runs between two-qubit gates on a chain fold
        # into one prefix-sum shift (they can never set the max).
        ci = chain_i[l1]
        if p1c > ci:
            prefix = single_prefix[l1]
            run = prefix[p1c] - prefix[ci]
            if run:
                head[l1] += run
                load[l1] += run
        chain_i[l1] = p1c + 1
        ci = chain_i[l2]
        if p2c > ci:
            prefix = single_prefix[l2]
            run = prefix[p2c] - prefix[ci]
            if run:
                head[l2] += run
                load[l2] += run
        chain_i[l2] = p2c + 1

        h1 = head[l1]
        h2 = head[l2]
        u = h1 if h1 >= h2 else h2
        if swap_aware:
            p1 = pos_after[l1]
            p2 = pos_after[l2]
            if p1 >= 0 and p2 >= 0:
                d = dist_flat[p1 * num_physical + p2]
                if d > 1:
                    s1 = u - load[l1]
                    s2 = u - load[l2]
                    if d == 2 and swap_len > 0:
                        best = swap_len - (s1 if s1 >= s2 else s2)
                        if best < 0:
                            best = 0
                    elif s1 < _SPLIT_KEY_BOUND and s2 < _SPLIT_KEY_BOUND:
                        lut_key = (d << 28) | (s1 << 14) | s2
                        best = split_lut.get(lut_key)
                        if best is None:
                            best = _swap_split_delay(d, s1, s2, swap_len)
                            if len(split_lut) < _SPLIT_LUT_MAX:
                                split_lut[lut_key] = best
                    else:
                        best = _swap_split_delay(d, s1, s2, swap_len)
                    u += best
        end = u + length
        head[l1] = end
        head[l2] = end
        load[l1] += length
        load[l2] += length
        if end > h:
            h = end

    # Trailing single-qubit runs: everything left on a chain is
    # singles, and only the run's final finish time can matter.
    seq = problem.seq
    for logical in range(num_logical):
        ci = chain_i[logical]
        prefix = single_prefix[logical]
        tail = prefix[len(seq[logical])] - prefix[ci]
        if tail:
            end = head[logical] + tail
            if end > h:
                h = end

    if memo is not None:
        memo.table[key] = h
    return h


def _windowed_cost(
    problem: MappingProblem,
    node: SearchNode,
    window: int,
    swap_aware: bool,
    metrics: Optional[MetricsRegistry],
) -> int:
    """Truncated-lookahead cost (practical mapper, Section 6.2).

    Only the first ``window`` unstarted gates per qubit chain are
    considered, and the merged pending list is additionally capped at
    ``4 * window`` gates *in program order* (the cap is deterministic:
    the pending list is sorted by gate index — program order — before
    truncation, so the surviving gates are always the earliest ones).

    Admissibility caveat: dropping gates can only lower the bound, so the
    truncated ``h`` remains a valid lower bound on the true remaining
    depth — but it is *not* the full-circuit heuristic, and two nodes may
    compare differently under truncation than they would under the exact
    bound.  The optimal search therefore never uses a window; the
    practical mapper accepts the quality loss for scalability.  Cap
    events are counted in the ``heuristic.window_truncated`` metric so a
    run can tell how often its lookahead was clipped.
    """
    gate_qubits = problem.gate_qubits
    gate_latency = problem.gate_latency
    dist_flat = problem.dist_flat
    num_physical = problem.num_physical
    swap_len = problem.swap_len
    num_logical = problem.num_logical
    time = node.time

    head = [0] * num_logical
    load = [0] * num_logical
    h = 0

    if node.inflight:
        inv_after = list(node.inv)
        for finish, kind, a, b in node.inflight:
            remaining = finish - time
            if remaining > h:
                h = remaining
            if kind == K_SWAP:
                l1, l2 = inv_after[a], inv_after[b]
                inv_after[a], inv_after[b] = l2, l1
                if l1 >= 0:
                    head[l1] = remaining
                    load[l1] = remaining
                if l2 >= 0:
                    head[l2] = remaining
                    load[l2] = remaining
            else:
                for logical in gate_qubits[a]:
                    head[logical] = remaining
                    load[logical] = remaining
        pos_after = node.mapping_after_swaps()[0]
    else:
        pos_after = node.pos

    ptr = node.ptr
    seq = problem.seq
    selected = set()
    for logical in range(num_logical):
        selected.update(seq[logical][ptr[logical]: ptr[logical] + window])
    pending = sorted(selected)
    if len(pending) > 4 * window:
        pending = pending[: 4 * window]
        if metrics is not None:
            metrics.counter("heuristic.window_truncated").inc()

    if metrics is not None:
        metrics.counter("heuristic.calls").inc()
        metrics.histogram("heuristic.pending_gates").observe(len(pending))

    split_lut = problem.split_lut
    for gate in pending:
        qubits = gate_qubits[gate]
        length = gate_latency[gate]
        if len(qubits) == 1:
            (l1,) = qubits
            end = head[l1] + length
            head[l1] = end
            load[l1] += length
        else:
            l1, l2 = qubits
            u = head[l1] if head[l1] >= head[l2] else head[l2]
            p1, p2 = pos_after[l1], pos_after[l2]
            if swap_aware and p1 >= 0 and p2 >= 0:
                d = dist_flat[p1 * num_physical + p2]
            else:
                d = 1  # unplaced qubits / uninformed mode: optimistic
            if d > 1:
                s1 = u - load[l1]
                s2 = u - load[l2]
                if d == 2 and swap_len > 0:
                    best = swap_len - (s1 if s1 >= s2 else s2)
                    if best < 0:
                        best = 0
                elif s1 < _SPLIT_KEY_BOUND and s2 < _SPLIT_KEY_BOUND:
                    lut_key = (d << 28) | (s1 << 14) | s2
                    best = split_lut.get(lut_key)
                    if best is None:
                        best = _swap_split_delay(d, s1, s2, swap_len)
                        if len(split_lut) < _SPLIT_LUT_MAX:
                            split_lut[lut_key] = best
                else:
                    best = _swap_split_delay(d, s1, s2, swap_len)
                u += best
            end = u + length
            head[l1] = end
            head[l2] = end
            load[l1] += length
            load[l2] += length
        if end > h:
            h = end

    return h


def _heuristic_cost_reference(
    problem: MappingProblem,
    node: SearchNode,
    window: Optional[int] = None,
    swap_aware: bool = True,
) -> int:
    """The pre-overhaul formulation of :func:`heuristic_cost`.

    Kept verbatim (set-based pending enumeration, brute-force SWAP-split
    loop) as the semantics oracle: property tests assert the optimized
    path returns exactly this value on randomized circuits and
    architectures, and the regression suite re-runs the ablation circuits
    against it to pin node counts bit-for-bit.
    """
    gate_qubits = problem.gate_qubits
    gate_latency = problem.gate_latency
    dist = problem.dist
    swap_len = problem.swap_len
    num_logical = problem.num_logical
    time = node.time

    head = [0] * num_logical
    load = [0] * num_logical
    pos_after = list(node.pos)
    inv_after = list(node.inv)
    h = 0

    for finish, kind, a, b in node.inflight:
        remaining = finish - time
        if remaining > h:
            h = remaining
        if kind == K_SWAP:
            l1, l2 = inv_after[a], inv_after[b]
            inv_after[a], inv_after[b] = l2, l1
            if l1 >= 0:
                pos_after[l1] = b
                head[l1] = remaining
                load[l1] = remaining
            if l2 >= 0:
                pos_after[l2] = a
                head[l2] = remaining
                load[l2] = remaining
        else:
            for logical in gate_qubits[a]:
                head[logical] = remaining
                load[logical] = remaining

    ptr = node.ptr
    seq = problem.seq
    if window is None:
        pending = sorted(
            {
                gate
                for logical in range(num_logical)
                for gate in seq[logical][ptr[logical]:]
            }
        )
    else:
        selected = set()
        for logical in range(num_logical):
            selected.update(seq[logical][ptr[logical]: ptr[logical] + window])
        pending = sorted(selected)
        if len(pending) > 4 * window:
            pending = pending[: 4 * window]

    for gate in pending:
        qubits = gate_qubits[gate]
        length = gate_latency[gate]
        if len(qubits) == 1:
            (l1,) = qubits
            end = head[l1] + length
            head[l1] = end
            load[l1] += length
        else:
            l1, l2 = qubits
            u = head[l1] if head[l1] >= head[l2] else head[l2]
            p1, p2 = pos_after[l1], pos_after[l2]
            if swap_aware and p1 >= 0 and p2 >= 0:
                d = dist[p1][p2]
            else:
                d = 1
            if d > 1:
                slack1 = u - load[l1]
                slack2 = u - load[l2]
                best = None
                for r in range(d):
                    delay1 = r * swap_len - slack1
                    if delay1 < 0:
                        delay1 = 0
                    delay2 = (d - 1 - r) * swap_len - slack2
                    if delay2 < 0:
                        delay2 = 0
                    worse = delay1 if delay1 >= delay2 else delay2
                    if best is None or worse < best:
                        best = worse
                u += best
            end = u + length
            head[l1] = end
            head[l2] = end
            load[l1] += length
            load[l2] += length
        if end > h:
            h = end

    return h
