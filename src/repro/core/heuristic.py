"""The admissible cost-to-go heuristic ``h(v)`` (paper Section 5.1).

For each gate ``g`` remaining in the circuit we compute ``t_min(g)``, a
lower bound (relative to the node's current cycle) on when ``g`` can begin:

* in-flight gates/SWAPs have ``t_min = 0`` and contribute their *remaining*
  length;
* a gate's immediate predecessors (the previous remaining element on each
  operand qubit's chain) give ``u = max(t_min(pred) + len(pred))``;
* a two-qubit gate whose operands sit at distance ``d > 1`` under π_rem
  (the mapping after in-flight SWAPs take effect) additionally needs at
  least ``d − 1`` SWAPs split as ``r`` on one operand and ``s = d−1−r`` on
  the other.  Each operand qubit has *slack* ``u − T`` (``T`` = total
  remaining predecessor cycles on that qubit) that can absorb SWAP latency;
  we enumerate every split and take the one minimizing the larger delay —
  exactly the computation that defeats the "meet in the middle" fallacy of
  Fig. 9.

``h(v) = max_g t_min(g) + len(g)`` is admissible (paper Lemma A.1); tests
cross-check it against exhaustive optimal depths.
"""

from __future__ import annotations

from typing import Optional

from ..obs.metrics import MetricsRegistry
from .problem import MappingProblem
from .state import K_SWAP, SearchNode


def heuristic_cost(
    problem: MappingProblem,
    node: SearchNode,
    window: Optional[int] = None,
    swap_aware: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Lower bound on cycles from ``node`` to any terminal node.

    Args:
        problem: The preprocessed problem instance.
        node: The node to evaluate (its ``time`` is the reference point;
            the returned value is relative to it).
        window: If given, only the first ``window`` unstarted gates (in
            program order) are considered — the truncation the practical
            mapper (Section 6.2) uses to stay scalable.  ``None`` means the
            full remaining circuit, which is required for optimality.
        swap_aware: When False, the SWAP-distance term is skipped and the
            bound degrades to the remaining critical path — the uninformed
            lower bound the OLSQ-style baseline (and OLSQ's iterative
            deepening start point) uses.  Still admissible, just weaker.
        metrics: When given, counts calls and records the pending-gate
            workload per evaluation (``heuristic.calls`` /
            ``heuristic.pending_gates``); the caller times the evaluation
            itself (``heuristic.latency_s``) since only it knows whether
            telemetry is on.

    Returns:
        ``h(v) >= 0``; zero iff the remaining circuit is empty.
    """
    gate_qubits = problem.gate_qubits
    gate_latency = problem.gate_latency
    dist = problem.dist
    swap_len = problem.swap_len
    num_logical = problem.num_logical
    time = node.time

    head = [0] * num_logical  # finish lower bound of latest chain element
    load = [0] * num_logical  # total remaining predecessor cycles (T)
    pos_after = list(node.pos)
    inv_after = list(node.inv)
    h = 0

    for finish, kind, a, b in node.inflight:
        remaining = finish - time
        if remaining > h:
            h = remaining
        if kind == K_SWAP:
            l1, l2 = inv_after[a], inv_after[b]
            inv_after[a], inv_after[b] = l2, l1
            if l1 >= 0:
                pos_after[l1] = b
                head[l1] = remaining
                load[l1] = remaining
            if l2 >= 0:
                pos_after[l2] = a
                head[l2] = remaining
                load[l2] = remaining
        else:
            for logical in gate_qubits[a]:
                head[logical] = remaining
                load[logical] = remaining

    # Collect unstarted gates in program (= topological) order.
    ptr = node.ptr
    seq = problem.seq
    if window is None:
        pending = sorted(
            {
                gate
                for logical in range(num_logical)
                for gate in seq[logical][ptr[logical]:]
            }
        )
    else:
        selected = set()
        for logical in range(num_logical):
            selected.update(seq[logical][ptr[logical]: ptr[logical] + window])
        pending = sorted(selected)
        if len(pending) > 4 * window:
            pending = pending[: 4 * window]

    if metrics is not None:
        metrics.counter("heuristic.calls").inc()
        metrics.histogram("heuristic.pending_gates").observe(len(pending))

    for gate in pending:
        qubits = gate_qubits[gate]
        length = gate_latency[gate]
        if len(qubits) == 1:
            (l1,) = qubits
            end = head[l1] + length
            head[l1] = end
            load[l1] += length
        else:
            l1, l2 = qubits
            u = head[l1] if head[l1] >= head[l2] else head[l2]
            p1, p2 = pos_after[l1], pos_after[l2]
            if swap_aware and p1 >= 0 and p2 >= 0:
                d = dist[p1][p2]
            else:
                d = 1  # unplaced qubits / uninformed mode: optimistic
            if d > 1:
                slack1 = u - load[l1]
                slack2 = u - load[l2]
                best = None
                for r in range(d):
                    delay1 = r * swap_len - slack1
                    if delay1 < 0:
                        delay1 = 0
                    delay2 = (d - 1 - r) * swap_len - slack2
                    if delay2 < 0:
                        delay2 = 0
                    worse = delay1 if delay1 >= delay2 else delay2
                    if best is None or worse < best:
                        best = worse
                u += best
            end = u + length
            head[l1] = end
            head[l2] = end
            load[l1] += length
            load[l2] += length
        if end > h:
            h = end

    return h
