"""The scalable non-optimal mapper (paper Section 6.2, "Approximate Analysis").

Relaxations relative to the optimal search, exactly as the paper lists them:

* every original gate that is ready (dependency-resolved, coupling-satisfied,
  operands idle) is scheduled immediately — children that withhold ready
  gates are never generated;
* SWAPs that would make an executable frontier CNOT unexecutable are not
  considered, and candidate SWAPs are restricted to edges adjacent to the
  blocked CNOT frontier;
* expanded children are ranked and only the top ``k`` (default 10) are
  pushed;
* when the priority queue exceeds ``queue_cap`` (default 2000) it is cut by
  ``queue_trim`` (default 1000), deleting the nodes that have made the
  least progress through the circuit, ties broken by cost;
* the initial mapping is built on the fly: when a frontier CNOT has
  unmapped operands they are greedily assigned to minimize their physical
  distance; qubits never used by a CNOT get arbitrary free spots.

The cost function is the same admissible ``h`` as the optimal mode but
truncated to a look-ahead window for scalability.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel
from ..obs.events import SearchProgressEvent
from ..obs.schema import (
    MAPPER_TOQM_HEURISTIC,
    STAT_KERNEL_BACKEND,
    base_stats,
)
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracer import SPAN_EXPAND, SPAN_FILTER, SPAN_HEURISTIC, SPAN_SEARCH
from .expander import (
    ExpansionConfig,
    _blocked_frontier_pairs,
    expand,
    frontier_gates,
)
from .filters import StateFilter
from .gcpause import pause_gc
from .heuristic import HeuristicMemo, heuristic_cost
from .kernels import resolve_backend
from .problem import MappingProblem
from .result import MappingResult, ScheduledOp
from .state import SearchNode


class RoutingFailed(RuntimeError):
    """The pruned search dead-ended (should not happen on connected graphs)."""


def incumbent_result(
    coupling: CouplingGraph,
    latency: Optional[LatencyModel],
    circuit: Circuit,
    initial_mapping: Optional[Sequence[int]] = None,
    **mapper_kwargs,
) -> Optional[MappingResult]:
    """Cheap feasible schedule used to seed the exact search's upper bound.

    Runs the practical mapper once (uninstrumented) and returns its
    result, or ``None`` on any failure — incumbent seeding is an
    optimization and must never block or fail the exact search.  When
    ``initial_mapping`` is given the incumbent uses it, so its depth
    upper-bounds the mode-1 optimum for that mapping; when omitted the
    practical mapper places qubits on the fly, which upper-bounds the
    mode-2 (searched-initial-mapping) optimum.
    """
    try:
        mapper = HeuristicMapper(coupling, latency, **mapper_kwargs)
        return mapper.map(circuit, initial_mapping=initial_mapping)
    except Exception:  # noqa: BLE001 - seeding is strictly best-effort
        return None


def _frontier_distance(problem: MappingProblem, node: SearchNode) -> int:
    """Total excess distance of blocked frontier CNOT pairs.

    Used as the second component of the progress level: a SWAP that moves
    the blocked frontier closer together counts as progress even though it
    starts no original gate, so multi-SWAP routing chains receive a fresh
    expansion budget at every productive step.
    """
    dist_flat = problem.dist_flat
    num_physical = problem.num_physical
    return sum(
        dist_flat[p1 * num_physical + p2] - 1
        for p1, p2 in _blocked_frontier_pairs(problem, node)
    )


class HeuristicMapper:
    """Practical TOQM variant used for the Table 3 evaluation.

    Args:
        coupling: Target architecture.
        latency: Latency model (defaults to 1 cycle/gate, 3-cycle SWAP).
        top_k: Children kept per expansion (paper: 10).
        queue_cap: Priority-queue size threshold.  The paper uses 2000 at
            C++ speeds; the Python default of 800 keeps per-gate cost in
            the tens of milliseconds with a small quality loss (pass 2000
            to reproduce the paper's setting exactly).
        queue_trim: Nodes removed when the cap is hit (paper: 1000).
        max_swaps_per_step: Cap on simultaneous SWAP starts per child —
            bounds the branching factor on wide architectures.
        max_candidate_swaps: Size of the candidate-SWAP pool per expansion
            (ranked by how much they shorten blocked frontier distances).
        window: Look-ahead horizon (gates per qubit) for the truncated
            cost function.
        greediness: Weight on the heuristic term (``f = t + w·h``).  The
            value 1 gives pure best-first on the admissible bound but
            explores cost plateaus breadth-first; values above 1 trade a
            bounded amount of schedule quality for near-linear runtime
            (weighted-A* style), which the pure-Python implementation
            needs to reach Table 3 scale.
        max_expansions_per_level: Hard cap on node expansions per circuit
            progress level (number of gates started).  Bounds the local
            exploration around each blocked frontier; when the capped
            search dead-ends it is automatically retried with a larger
            cap.  This plays the role the paper's queue trimming plays at
            C++ speeds, scaled to a Python budget.
        memoize: Cache heuristic evaluations per run (sound because the
            window is fixed for the whole run); pure evaluation cache,
            never changes scores or node counts.
        telemetry: Optional observability context; ``None`` runs the
            uninstrumented fast path.
        kernel: Kernel backend name (``pure``/``vector``/``compiled``) or
            ``None`` for the auto-probe; windowed evaluation always runs
            the pure scorer, but the seam and the recorded
            ``kernel_backend`` stat stay uniform with the exact search.
    """

    #: Stats label this mapper writes into ``MappingResult.stats``.
    mapper_name = MAPPER_TOQM_HEURISTIC

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        top_k: int = 10,
        queue_cap: int = 800,
        queue_trim: int = 600,
        max_swaps_per_step: int = 2,
        max_candidate_swaps: int = 8,
        window: int = 10,
        greediness: float = 1.5,
        max_expansions_per_level: int = 512,
        memoize: bool = True,
        telemetry: Optional[Telemetry] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if queue_trim >= queue_cap:
            raise ValueError("queue_trim must be smaller than queue_cap")
        self.coupling = coupling
        self.latency = latency
        self.top_k = top_k
        self.queue_cap = queue_cap
        self.queue_trim = queue_trim
        self.config = ExpansionConfig(
            greedy_gates=True,
            frontier_swaps_only=True,
            protect_satisfied_frontier=True,
            max_swaps_per_step=max_swaps_per_step,
            max_candidate_swaps=max_candidate_swaps,
        )
        self.window = window
        self.greediness = greediness
        self.max_expansions_per_level = max_expansions_per_level
        self.memoize = memoize
        self.telemetry = telemetry
        self.kernel = kernel
        #: Optional :class:`repro.core.warmcache.ArchContext` installed
        #: by the batch runner; shares per-architecture search artifacts
        #: across tasks.  ``None`` builds a fresh problem per call.
        self.arch_context = None

    def _problem(self, circuit: Circuit) -> MappingProblem:
        """Build (or fetch from the warm cache) the problem instance."""
        context = getattr(self, "arch_context", None)
        if context is not None:
            return context.problem(circuit)
        return MappingProblem(circuit, self.coupling, self.latency)

    # ------------------------------------------------------------------
    def map(
        self,
        circuit: Circuit,
        initial_mapping: Optional[Sequence[int]] = None,
    ) -> MappingResult:
        """Map ``circuit``, building the initial mapping on the fly.

        Args:
            circuit: The logical circuit.
            initial_mapping: Optional full initial mapping; when omitted,
                qubits are placed greedily as their first CNOT becomes
                ready (Section 6.2).
        """
        problem = self._problem(circuit)
        level_cap = self.max_expansions_per_level
        failure: Optional[RoutingFailed] = None
        for _attempt in range(3):
            try:
                return self._run(problem, initial_mapping, level_cap)
            except RoutingFailed as exc:
                failure = exc
                level_cap *= 4
        raise failure

    # ------------------------------------------------------------------
    def _run(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        level_cap: int,
    ) -> MappingResult:
        tele = resolve(self.telemetry)
        if not tele.enabled:
            # Acyclic search graph: the cyclic collector is pure overhead
            # during the loop (see ``gcpause``).
            with pause_gc():
                return self._run_loop(problem, initial_mapping, level_cap, tele)
        with tele.tracer.span(
            SPAN_SEARCH,
            mapper=self.mapper_name,
            circuit=problem.circuit.name or "<unnamed>",
            gates=problem.num_gates,
            arch=problem.coupling.name,
            level_cap=level_cap,
        ):
            with pause_gc():
                result = self._run_loop(
                    problem, initial_mapping, level_cap, tele
                )
        tele.emit_metrics_snapshot(label="search_complete")
        return result

    def _run_loop(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
        level_cap: int,
        tele: Telemetry,
    ) -> MappingResult:
        start_clock = _time.perf_counter()
        enabled = tele.enabled
        tracer = tele.tracer
        kernel = resolve_backend(self.kernel)
        root = self._make_root(problem, initial_mapping)
        state_filter = StateFilter(
            problem,
            live_only=True,
            metrics=tele.metrics if enabled else None,
        )
        counter = itertools.count()

        def priority(node: SearchNode) -> Tuple[int, int, int]:
            return (node.f, -node.started, next(counter))

        memo = None
        if self.memoize:
            context = getattr(self, "arch_context", None)
            if context is not None and not enabled:
                # Warm-cache batch runs share the memo across repeats of
                # the same circuit — sound because the memo key is a pure
                # function of node state for a fixed (window, swap_aware)
                # configuration, which the config key pins.
                memo = context.memo(problem, ("heuristic", self.window))
            else:
                memo = HeuristicMemo(metrics=tele.metrics if enabled else None)

        if enabled:
            metrics = tele.metrics
            m_expanded = metrics.counter("search.nodes_expanded")
            m_generated = metrics.counter("search.nodes_generated")
            m_trims = metrics.counter("search.queue_trims")
            m_heap = metrics.gauge("search.heap_size")
            m_frontier = metrics.gauge("search.best_f")
            m_heuristic_latency = metrics.histogram(
                "heuristic.latency_s", scale=1e-6
            )
            progress_every = tele.progress_every

        root.h = heuristic_cost(problem, root, window=self.window, memo=memo)
        root.f = root.time + int(self.greediness * root.h)
        heap: List[Tuple[int, int, int, SearchNode]] = [
            (*priority(root), root)
        ]
        expanded = 0
        generated = 1
        if enabled:
            m_generated.inc(generated)
        trims = 0
        level_expansions: dict = {}

        while heap:
            _f, _neg, _tick, node = heapq.heappop(heap)
            if node.killed:
                continue
            if node.is_terminal(problem.num_gates):
                extra = {STAT_KERNEL_BACKEND: kernel.name}
                if memo is not None:
                    extra["memo_hits"] = memo.hits
                    extra["memo_misses"] = memo.misses
                overflow = problem.cache_overflow_total()
                if overflow:
                    extra["problem_cache_overflow"] = overflow
                return self._reconstruct(
                    problem,
                    node,
                    stats=base_stats(
                        self.mapper_name,
                        nodes_expanded=expanded,
                        nodes_generated=generated,
                        filtered_equivalent=state_filter.equivalent_dropped,
                        filtered_dominated=state_filter.dominated_dropped,
                        seconds=_time.perf_counter() - start_clock,
                        queue_trims=trims,
                        **extra,
                    ),
                )
            level = (node.started, _frontier_distance(problem, node))
            used = level_expansions.get(level, 0)
            if used >= level_cap:
                node.dropped = True
                continue  # this progress level has had its budget
            level_expansions[level] = used + 1
            expanded += 1
            node.dropped = True  # leaves the open list

            if not enabled:
                # Fast path: identical to the instrumented branch below
                # minus every span/metric touch.  Children are scored as
                # one batch through the kernel seam (bit-identical to
                # per-node evaluation, including memo accounting).
                children = expand(problem, node, self.config)
                scored: List[SearchNode] = []
                for child in children:
                    self._place_frontier(problem, child)
                    scored.append(child)
                kernel.heuristic_batch(
                    problem, scored, window=self.window, memo=memo
                )
                for child in scored:
                    child.f = child.time + int(self.greediness * child.h)
            else:
                m_expanded.inc()
                if expanded % progress_every == 0:
                    m_heap.set(len(heap))
                    m_frontier.set(node.f)
                    tele.publish_progress(
                        SearchProgressEvent(
                            mapper=self.mapper_name,
                            phase="search",
                            nodes_expanded=expanded,
                            nodes_generated=generated,
                            heap_size=len(heap),
                            best_f=node.f,
                            elapsed_seconds=_time.perf_counter() - start_clock,
                            extra={
                                "queue_trims": trims,
                                "gates_started": node.started,
                            },
                        )
                    )
                with tracer.span(SPAN_EXPAND, t=node.time, f=node.f):
                    children = expand(
                        problem, node, self.config, metrics=metrics
                    )
                    m_generated.inc(len(children))
                    scored = []
                    for child in children:
                        self._place_frontier(problem, child)
                        with tracer.span(SPAN_HEURISTIC):
                            t0 = _time.perf_counter()
                            child.h = heuristic_cost(
                                problem,
                                child,
                                window=self.window,
                                metrics=metrics,
                                memo=memo,
                            )
                            m_heuristic_latency.observe(
                                _time.perf_counter() - t0
                            )
                        child.f = child.time + int(self.greediness * child.h)
                        scored.append(child)

            generated += len(scored)
            scored.sort(key=lambda c: (c.f, -c.started))
            kept = scored[: self.top_k]
            if not enabled:
                for child in kept:
                    if state_filter.admit(child):
                        heapq.heappush(heap, (*priority(child), child))
            else:
                for child in kept:
                    with tracer.span(SPAN_FILTER):
                        admitted = state_filter.admit(child)
                    if admitted:
                        heapq.heappush(heap, (*priority(child), child))
            if len(heap) > self.queue_cap:
                heap = self._trim(heap)
                state_filter.compact()
                trims += 1
                if enabled:
                    m_trims.inc()

        raise RoutingFailed(
            "priority queue emptied before the circuit completed"
        )

    # ------------------------------------------------------------------
    def _trim(self, heap: List[Tuple]) -> List[Tuple]:
        """Cut the queue by ``queue_trim``, dropping least-progress nodes."""
        entries = [e for e in heap if not e[3].killed]
        # Most progress first (largest started), then lowest cost.
        entries.sort(key=lambda e: (-e[3].started, e[3].f))
        kept = entries[: max(1, len(entries) - self.queue_trim)]
        for entry in entries[max(1, len(entries) - self.queue_trim):]:
            entry[3].dropped = True
        heapq.heapify(kept)
        return kept

    # ------------------------------------------------------------------
    def _make_root(
        self,
        problem: MappingProblem,
        initial_mapping: Optional[Sequence[int]],
    ) -> SearchNode:
        num_logical = problem.num_logical
        num_physical = problem.num_physical
        if initial_mapping is not None:
            pos = tuple(initial_mapping)
            if len(pos) != num_logical or len(set(pos)) != num_logical:
                raise ValueError("initial mapping must be injective over logicals")
        else:
            pos = (-1,) * num_logical
        inv = [-1] * num_physical
        for logical, physical in enumerate(pos):
            if physical >= 0:
                inv[physical] = logical
        root = SearchNode(
            time=0,
            pos=pos,
            inv=tuple(inv),
            ptr=(0,) * num_logical,
            started=0,
            inflight=(),
            last_swaps=frozenset(),
            prev_startable=frozenset(),
            parent=None,
            actions=(),
            prefix_layers=-1,
        )
        self._place_frontier(problem, root)
        return root

    # ------------------------------------------------------------------
    def _place_frontier(self, problem: MappingProblem, node: SearchNode) -> None:
        """Greedy on-the-fly placement of unmapped frontier operands.

        Mutates ``node.pos`` / ``node.inv`` in place (placement is a
        deterministic normalization, not a search decision).
        """
        if all(p >= 0 for p in node.pos):
            return
        pos = list(node.pos)
        inv = list(node.inv)
        dist = problem.dist
        changed = False
        for gate in frontier_gates(problem, node):
            qubits = problem.gate_qubits[gate]
            unplaced = [l for l in qubits if pos[l] < 0]
            if not unplaced:
                continue
            free = [p for p in range(problem.num_physical) if inv[p] < 0]
            if len(qubits) == 1:
                target = free[0]
                pos[qubits[0]] = target
                inv[target] = qubits[0]
                changed = True
                continue
            l1, l2 = qubits
            if pos[l1] >= 0 or pos[l2] >= 0:
                anchored, floating = (l1, l2) if pos[l1] >= 0 else (l2, l1)
                home = min(free, key=lambda p: dist[pos[anchored]][p])
                pos[floating] = home
                inv[home] = floating
            else:
                best = None
                for p in free:
                    for q in free:
                        if q <= p:
                            continue
                        candidate = (dist[p][q], p, q)
                        if best is None or candidate < best:
                            best = candidate
                _, p, q = best
                pos[l1], pos[l2] = p, q
                inv[p], inv[q] = l1, l2
            changed = True
        if changed:
            node.pos = tuple(pos)
            node.inv = tuple(inv)
            node.invalidate_caches()

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        problem: MappingProblem,
        terminal: SearchNode,
        stats,
    ) -> MappingResult:
        """Build the MappingResult; assign leftover qubits arbitrarily."""
        ops: List[ScheduledOp] = []
        for decision_time, actions, child in terminal.path_actions():
            parent = child.parent
            for action in actions:
                if action[0] == "g":
                    gate_index = action[1]
                    gate = problem.circuit[gate_index]
                    ops.append(
                        ScheduledOp(
                            gate_index=gate_index,
                            name=gate.name,
                            logical_qubits=gate.qubits,
                            physical_qubits=tuple(
                                parent.pos[l] for l in gate.qubits
                            ),
                            start=decision_time,
                            duration=problem.gate_latency[gate_index],
                        )
                    )
                else:
                    _, p, q = action
                    ops.append(
                        ScheduledOp(
                            gate_index=None,
                            name="swap",
                            logical_qubits=(parent.inv[p], parent.inv[q]),
                            physical_qubits=(p, q),
                            start=decision_time,
                            duration=problem.swap_len,
                        )
                    )
        ops.sort(key=lambda o: (o.start, o.physical_qubits))

        # Recover the initial mapping by replaying every SWAP backwards
        # from the terminal positions.  Exchanging *whatever logical sits
        # on either physical qubit* (rather than the operands recorded at
        # execution time) also rewinds qubits that were placed on the fly
        # after the SWAP ran: their backward trajectory follows the empty
        # slot they were later placed into, landing on a physical qubit
        # that was genuinely free at cycle 0.
        pos = list(terminal.pos)
        for op in reversed(ops):
            if op.name == "swap" and op.gate_index is None:
                p, q = op.physical_qubits
                for logical, where in enumerate(pos):
                    if where == p:
                        pos[logical] = q
                    elif where == q:
                        pos[logical] = p
        # Qubits never used by any gate get arbitrary free physical spots.
        taken = {p for p in pos if p >= 0}
        spare = [p for p in range(problem.num_physical) if p not in taken]
        initial = [
            p if p >= 0 else spare.pop() for p in pos
        ]
        depth = max((op.end for op in ops), default=0)
        return MappingResult(
            circuit=problem.circuit,
            coupling=problem.coupling,
            latency=problem.latency,
            initial_mapping=tuple(initial),
            ops=ops,
            depth=depth,
            optimal=False,
            stats=dict(stats),
        )
