"""Kernel backend registry and capability probe.

Three interchangeable backends implement the hot-kernel API of
:mod:`~repro.core.kernels.api`:

``pure``
    The python reference — always available, bit-identical baseline.
``vector``
    numpy batch evaluation of expansion fan-outs (needs numpy; the
    ``repro[fast]`` extra).
``compiled``
    The optional C extension (``python setup.py build_ext --inplace``
    or a binary wheel).

:func:`resolve_backend` implements the selection policy: an explicit
name wins, then the ``REPRO_KERNEL_BACKEND`` environment variable (the
CI matrix hook), then the fastest available in probe order
``compiled > vector > pure``.  Requesting an unavailable backend by
name is an error, not a silent fallback — CI and benchmarks must never
believe they measured a backend that didn't run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from .api import KernelBackend
from .pure import PureBackend

#: Environment override consumed by :func:`resolve_backend` when no
#: explicit backend is requested.
ENV_BACKEND = "REPRO_KERNEL_BACKEND"

#: Fallback order of the capability probe (fastest first).
PROBE_ORDER = ("compiled", "vector", "pure")

#: All recognized names, slowest first (CLI choices, docs).
BACKEND_NAMES = ("pure", "vector", "compiled")

_instances: Dict[str, KernelBackend] = {}
_failures: Dict[str, str] = {}


def _construct(name: str) -> KernelBackend:
    if name == "pure":
        return PureBackend()
    if name == "vector":
        from .vector import VectorBackend

        return VectorBackend()
    if name == "compiled":
        from .compiled import CompiledBackend

        return CompiledBackend()
    raise ValueError(
        f"unknown kernel backend {name!r}"
        f" (choose from {', '.join(BACKEND_NAMES)})"
    )


def get_backend(name: str) -> KernelBackend:
    """The backend instance for ``name``; ``ValueError`` if unavailable."""
    instance = _instances.get(name)
    if instance is not None:
        return instance
    if name in _failures:
        raise ValueError(
            f"kernel backend {name!r} is unavailable: {_failures[name]}"
        )
    try:
        instance = _construct(name)
    except ImportError as exc:
        _failures[name] = str(exc)
        raise ValueError(
            f"kernel backend {name!r} is unavailable: {exc}"
        ) from exc
    _instances[name] = instance
    return instance


def available_backends() -> List[str]:
    """Names of backends that construct on this interpreter."""
    out = []
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
        except ValueError:
            continue
        out.append(name)
    return out


def resolve_backend(
    name: Optional[Union[str, KernelBackend]] = None
) -> KernelBackend:
    """Resolve a backend request to an instance.

    ``None`` → the ``REPRO_KERNEL_BACKEND`` environment variable when
    set, else the fastest available backend in :data:`PROBE_ORDER`.
    Already-constructed instances pass through unchanged.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(ENV_BACKEND) or None
    if name is not None:
        return get_backend(name)
    for candidate in PROBE_ORDER:
        try:
            return get_backend(candidate)
        except ValueError:
            continue
    raise RuntimeError("no kernel backend available")
