/* Compiled hot kernels of the TOQM search (the ``compiled`` backend).
 *
 * Three operations dominate exact-search node cost once the surrounding
 * machinery is amortized (see DESIGN.md §Kernel backends):
 *
 *   heuristic()   -- the full (non-windowed) owner-run scan of
 *                    heuristic_cost(), operating on a packed problem
 *                    (flat int64 arrays) plus a per-ptr packed row
 *                    buffer.  The SWAP-split LUT is replaced by direct
 *                    closed-form evaluation -- identical values by
 *                    construction, no table needed at C speed.
 *   profile()     -- the state filter's per-physical-qubit release
 *                    profile (qfree tuple + in-flight gate finish dict).
 *   admit_scan()  -- the whole bucket scan of StateFilter.admit():
 *                    equivalence check, dominance both ways, in-scan
 *                    compaction.  Entries are instances of the C
 *                    ``Entry`` type below so field access inside the
 *                    scan is a struct load, not a dict/slot lookup.
 *
 * Semantics contract: every function must be bit-identical to the pure
 * python code it shadows (tests/test_kernels.py enforces this through
 * whole-search counter comparisons and direct cross-checks against
 * _heuristic_cost_reference).  The one trap is integer division: python
 * ``//`` floors while C ``/`` truncates, and the split-crossing
 * numerator can be negative -- hence floordiv() below.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define STACK_QUBITS 128

/* ------------------------------------------------------------------ */
/* Packed problem                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t num_logical;
    int64_t num_physical;
    int64_t swap_len;
    int64_t has_singles;
    int64_t num_gates;
    int64_t num_edges;
    int64_t *dist_flat;     /* P*P */
    int64_t *gate_l1;       /* num_gates */
    int64_t *gate_l2;       /* num_gates; -1 for single-qubit gates */
    int64_t *seq_len;       /* L */
    int64_t *sp_off;        /* L; offset of chain l's prefix row */
    int64_t *sp_flat;       /* concatenated single_prefix rows */
    int64_t *gate_lat;      /* num_gates */
    int64_t *gate_p1;       /* num_gates; chain position on l1 */
    int64_t *gate_p2;       /* num_gates; chain position on l2, -1 absent */
    int64_t *seq_off;       /* L; offset of chain l in seq_flat */
    int64_t *seq_flat;      /* concatenated per-qubit gate chains */
    int64_t *edge_p;        /* num_edges */
    int64_t *edge_q;        /* num_edges */
} PackedProblem;

static void
packed_free(PyObject *capsule)
{
    PackedProblem *pp = PyCapsule_GetPointer(capsule, "repro.packed_problem");
    if (pp != NULL) {
        free(pp->dist_flat);
        free(pp->gate_l1);
        free(pp->gate_l2);
        free(pp->seq_len);
        free(pp->sp_off);
        free(pp->sp_flat);
        free(pp->gate_lat);
        free(pp->gate_p1);
        free(pp->gate_p2);
        free(pp->seq_off);
        free(pp->seq_flat);
        free(pp->edge_p);
        free(pp->edge_q);
        free(pp);
    }
}

static int
fill_i64(PyObject *seq, int64_t *out, Py_ssize_t expect)
{
    Py_ssize_t n = PyTuple_GET_SIZE(seq);
    if (n != expect) {
        PyErr_SetString(PyExc_ValueError, "packed array length mismatch");
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        int64_t v = PyLong_AsLongLong(PyTuple_GET_ITEM(seq, i));
        if (v == -1 && PyErr_Occurred())
            return -1;
        out[i] = v;
    }
    return 0;
}

static void
packed_dispose(PackedProblem *pp)
{
    free(pp->dist_flat);
    free(pp->gate_l1);
    free(pp->gate_l2);
    free(pp->seq_len);
    free(pp->sp_off);
    free(pp->sp_flat);
    free(pp->gate_lat);
    free(pp->gate_p1);
    free(pp->gate_p2);
    free(pp->seq_off);
    free(pp->seq_flat);
    free(pp->edge_p);
    free(pp->edge_q);
    free(pp);
}

static PyObject *
pack_problem(PyObject *self, PyObject *args)
{
    long long num_logical, num_physical, swap_len, has_singles;
    PyObject *dist_flat, *gate_l1, *gate_l2, *seq_len, *single_prefix;
    PyObject *gate_lat, *gate_p1, *gate_p2, *seq_flat, *edge_p, *edge_q;
    if (!PyArg_ParseTuple(
            args, "LLLLO!O!O!O!O!O!O!O!O!O!O!",
            &num_logical, &num_physical, &swap_len, &has_singles,
            &PyTuple_Type, &dist_flat,
            &PyTuple_Type, &gate_l1,
            &PyTuple_Type, &gate_l2,
            &PyTuple_Type, &seq_len,
            &PyTuple_Type, &single_prefix,
            &PyTuple_Type, &gate_lat,
            &PyTuple_Type, &gate_p1,
            &PyTuple_Type, &gate_p2,
            &PyTuple_Type, &seq_flat,
            &PyTuple_Type, &edge_p,
            &PyTuple_Type, &edge_q))
        return NULL;

    PackedProblem *pp = calloc(1, sizeof(PackedProblem));
    if (pp == NULL)
        return PyErr_NoMemory();
    pp->num_logical = num_logical;
    pp->num_physical = num_physical;
    pp->swap_len = swap_len;
    pp->has_singles = has_singles;
    pp->num_gates = PyTuple_GET_SIZE(gate_l1);
    pp->num_edges = PyTuple_GET_SIZE(edge_p);

    Py_ssize_t ng = pp->num_gates ? pp->num_gates : 1;
    Py_ssize_t ne = pp->num_edges ? pp->num_edges : 1;
    Py_ssize_t nsf = PyTuple_GET_SIZE(seq_flat);
    pp->dist_flat = malloc(sizeof(int64_t) * (size_t)(num_physical * num_physical));
    pp->gate_l1 = malloc(sizeof(int64_t) * (size_t)ng);
    pp->gate_l2 = malloc(sizeof(int64_t) * (size_t)ng);
    pp->gate_lat = malloc(sizeof(int64_t) * (size_t)ng);
    pp->gate_p1 = malloc(sizeof(int64_t) * (size_t)ng);
    pp->gate_p2 = malloc(sizeof(int64_t) * (size_t)ng);
    pp->seq_len = malloc(sizeof(int64_t) * (size_t)num_logical);
    pp->sp_off = malloc(sizeof(int64_t) * (size_t)num_logical);
    pp->seq_off = malloc(sizeof(int64_t) * (size_t)num_logical);
    pp->seq_flat = malloc(sizeof(int64_t) * (size_t)(nsf ? nsf : 1));
    pp->edge_p = malloc(sizeof(int64_t) * (size_t)ne);
    pp->edge_q = malloc(sizeof(int64_t) * (size_t)ne);
    if (pp->dist_flat == NULL || pp->gate_l1 == NULL || pp->gate_l2 == NULL
        || pp->gate_lat == NULL || pp->gate_p1 == NULL || pp->gate_p2 == NULL
        || pp->seq_len == NULL || pp->sp_off == NULL || pp->seq_off == NULL
        || pp->seq_flat == NULL || pp->edge_p == NULL || pp->edge_q == NULL)
        goto nomem;

    if (fill_i64(dist_flat, pp->dist_flat, num_physical * num_physical) < 0
        || fill_i64(gate_l1, pp->gate_l1, pp->num_gates) < 0
        || fill_i64(gate_l2, pp->gate_l2, pp->num_gates) < 0
        || fill_i64(gate_lat, pp->gate_lat, pp->num_gates) < 0
        || fill_i64(gate_p1, pp->gate_p1, pp->num_gates) < 0
        || fill_i64(gate_p2, pp->gate_p2, pp->num_gates) < 0
        || fill_i64(seq_len, pp->seq_len, num_logical) < 0
        || fill_i64(seq_flat, pp->seq_flat, nsf) < 0
        || fill_i64(edge_p, pp->edge_p, pp->num_edges) < 0
        || fill_i64(edge_q, pp->edge_q, pp->num_edges) < 0)
        goto fail;

    int64_t chain_total = 0;
    for (long long l = 0; l < num_logical; l++) {
        pp->seq_off[l] = chain_total;
        chain_total += pp->seq_len[l];
    }
    if (chain_total != nsf) {
        PyErr_SetString(PyExc_ValueError, "seq_flat length mismatch");
        goto fail;
    }

    if (PyTuple_GET_SIZE(single_prefix) != num_logical) {
        PyErr_SetString(PyExc_ValueError, "single_prefix length mismatch");
        goto fail;
    }
    int64_t total = 0;
    for (long long l = 0; l < num_logical; l++) {
        pp->sp_off[l] = total;
        total += pp->seq_len[l] + 1;
    }
    pp->sp_flat = malloc(sizeof(int64_t) * (size_t)(total ? total : 1));
    if (pp->sp_flat == NULL)
        goto nomem;
    for (long long l = 0; l < num_logical; l++) {
        PyObject *row = PyTuple_GET_ITEM(single_prefix, l);
        if (!PyTuple_Check(row)) {
            PyErr_SetString(PyExc_TypeError, "single_prefix rows must be tuples");
            goto fail;
        }
        if (fill_i64(row, pp->sp_flat + pp->sp_off[l], pp->seq_len[l] + 1) < 0)
            goto fail;
    }

    PyObject *capsule = PyCapsule_New(pp, "repro.packed_problem", packed_free);
    if (capsule == NULL)
        goto fail;
    return capsule;

nomem:
    PyErr_NoMemory();
fail:
    packed_dispose(pp);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Heuristic                                                           */
/* ------------------------------------------------------------------ */

static inline int64_t
floordiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    int64_t r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

static inline int64_t
split_delay(int64_t d, int64_t s1, int64_t s2, int64_t L)
{
    int64_t k = d - 1;
    if (L <= 0)
        return 0;
    if (floordiv(s1, L) + floordiv(s2, L) >= k)
        return 0;
    int64_t crossing = floordiv(k * L + s1 - s2, 2 * L);
    int64_t cands[6];
    cands[0] = 0;
    cands[1] = k;
    cands[2] = crossing;
    cands[3] = crossing + 1;
    cands[4] = floordiv(s1, L);
    cands[5] = k - floordiv(s2, L);
    int64_t best = -1;
    for (int i = 0; i < 6; i++) {
        int64_t r = cands[i];
        if (r < 0)
            r = 0;
        else if (r > k)
            r = k;
        int64_t d1 = r * L - s1;
        if (d1 < 0)
            d1 = 0;
        int64_t d2 = (k - r) * L - s2;
        if (d2 < 0)
            d2 = 0;
        int64_t worse = d1 >= d2 ? d1 : d2;
        if (best < 0 || worse < best)
            best = worse;
    }
    return best;
}

static PyObject *
heuristic(PyObject *self, PyObject *args)
{
    PyObject *capsule, *rows_obj, *inflight, *pos_after, *inv;
    long long time;
    int swap_aware;
    if (!PyArg_ParseTuple(
            args, "OO!LO!O!O!p",
            &capsule,
            &PyBytes_Type, &rows_obj,
            &time,
            &PyTuple_Type, &inflight,
            &PyTuple_Type, &pos_after,
            &PyTuple_Type, &inv,
            &swap_aware))
        return NULL;
    PackedProblem *pp = PyCapsule_GetPointer(capsule, "repro.packed_problem");
    if (pp == NULL)
        return NULL;

    int64_t L = pp->num_logical;
    int64_t P = pp->num_physical;
    int64_t stack_buf[STACK_QUBITS * 4];
    int64_t *buf = stack_buf;
    if (L > STACK_QUBITS || P > STACK_QUBITS) {
        buf = malloc(sizeof(int64_t) * (size_t)(L * 3 + P));
        if (buf == NULL)
            return PyErr_NoMemory();
    }
    int64_t *head = buf;
    int64_t *load = buf + L;
    int64_t *chain_i = buf + 2 * L;
    int64_t *inv_after = buf + 3 * L;
    memset(head, 0, sizeof(int64_t) * (size_t)(2 * L));
    int64_t pos_stack[STACK_QUBITS];
    int64_t *pos_heap = NULL;
    int64_t *pos;

    int64_t h = 0;
    int err = 0;

    Py_ssize_t n_inflight = PyTuple_GET_SIZE(inflight);
    if (n_inflight) {
        for (int64_t p = 0; p < P; p++) {
            int64_t v = PyLong_AsLongLong(PyTuple_GET_ITEM(inv, p));
            if (v == -1 && PyErr_Occurred()) {
                err = 1;
                goto done;
            }
            inv_after[p] = v;
        }
        for (Py_ssize_t i = 0; i < n_inflight; i++) {
            PyObject *item = PyTuple_GET_ITEM(inflight, i);
            int64_t finish = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 0));
            int64_t kind = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
            int64_t a = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 2));
            int64_t b = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 3));
            if (PyErr_Occurred()) {
                err = 1;
                goto done;
            }
            int64_t remaining = finish - time;
            if (remaining > h)
                h = remaining;
            if (kind == 1) { /* K_SWAP */
                int64_t l1 = inv_after[a];
                int64_t l2 = inv_after[b];
                inv_after[a] = l2;
                inv_after[b] = l1;
                if (l1 >= 0) {
                    head[l1] = remaining;
                    load[l1] = remaining;
                }
                if (l2 >= 0) {
                    head[l2] = remaining;
                    load[l2] = remaining;
                }
            } else { /* K_GATE: a is the gate index */
                int64_t l1 = pp->gate_l1[a];
                int64_t l2 = pp->gate_l2[a];
                head[l1] = remaining;
                load[l1] = remaining;
                if (l2 >= 0) {
                    head[l2] = remaining;
                    load[l2] = remaining;
                }
            }
        }
    }

    /* Positions after in-flight SWAPs (precomputed by the caller: the
     * node caches mapping_after_swaps() for the filter key anyway). */
    if (L <= STACK_QUBITS) {
        pos = pos_stack;
    } else {
        pos_heap = malloc(sizeof(int64_t) * (size_t)L);
        if (pos_heap == NULL) {
            PyErr_NoMemory();
            err = 1;
            goto done;
        }
        pos = pos_heap;
    }
    for (int64_t l = 0; l < L; l++) {
        int64_t v = PyLong_AsLongLong(PyTuple_GET_ITEM(pos_after, l));
        if (v == -1 && PyErr_Occurred()) {
            err = 1;
            goto done;
        }
        pos[l] = v;
    }

    /* The rows buffer is ``n_rows`` packed gate_row records (5 int64s
     * each) followed by the node's ptr (L int64s) -- the tail seeds the
     * singles-fold chain indices, which are NOT recoverable from the
     * rows alone (chains with no pending two-qubit gate never appear in
     * them).  See compiled.py: rows_bytes = rows || ptr. */
    const int64_t *rows = (const int64_t *)PyBytes_AS_STRING(rows_obj);
    Py_ssize_t total_i64 =
        PyBytes_GET_SIZE(rows_obj) / (Py_ssize_t)sizeof(int64_t);
    Py_ssize_t n_rows = (total_i64 - L) / 5;
    if (n_rows < 0 || n_rows * 5 + L != total_i64) {
        PyErr_SetString(PyExc_ValueError, "malformed rows buffer");
        err = 1;
        goto done;
    }
    const int64_t *dist = pp->dist_flat;
    int64_t swap_len = pp->swap_len;
    int has_singles = (int)pp->has_singles;

    if (has_singles) {
        const int64_t *ptr_tail = rows + n_rows * 5;
        for (int64_t l = 0; l < L; l++)
            chain_i[l] = ptr_tail[l];
        const int64_t *sp = pp->sp_flat;
        const int64_t *sp_off = pp->sp_off;
        for (Py_ssize_t i = 0; i < n_rows; i++) {
            int64_t l1 = rows[i * 5];
            int64_t l2 = rows[i * 5 + 1];
            int64_t length = rows[i * 5 + 2];
            int64_t p1c = rows[i * 5 + 3];
            int64_t p2c = rows[i * 5 + 4];
            int64_t ci = chain_i[l1];
            if (p1c > ci) {
                int64_t run = sp[sp_off[l1] + p1c] - sp[sp_off[l1] + ci];
                if (run) {
                    head[l1] += run;
                    load[l1] += run;
                }
            }
            chain_i[l1] = p1c + 1;
            ci = chain_i[l2];
            if (p2c > ci) {
                int64_t run = sp[sp_off[l2] + p2c] - sp[sp_off[l2] + ci];
                if (run) {
                    head[l2] += run;
                    load[l2] += run;
                }
            }
            chain_i[l2] = p2c + 1;

            int64_t h1 = head[l1];
            int64_t h2 = head[l2];
            int64_t u = h1 >= h2 ? h1 : h2;
            if (swap_aware) {
                int64_t p1 = pos[l1];
                int64_t p2 = pos[l2];
                if (p1 >= 0 && p2 >= 0) {
                    int64_t d = dist[p1 * P + p2];
                    if (d > 1)
                        u += split_delay(d, u - load[l1], u - load[l2],
                                         swap_len);
                }
            }
            int64_t end = u + length;
            head[l1] = end;
            head[l2] = end;
            load[l1] += length;
            load[l2] += length;
            if (end > h)
                h = end;
        }
        for (int64_t l = 0; l < L; l++) {
            int64_t ci = chain_i[l];
            int64_t tail = sp[sp_off[l] + pp->seq_len[l]] - sp[sp_off[l] + ci];
            if (tail) {
                int64_t end = head[l] + tail;
                if (end > h)
                    h = end;
            }
        }
    } else {
        for (Py_ssize_t i = 0; i < n_rows; i++) {
            int64_t l1 = rows[i * 5];
            int64_t l2 = rows[i * 5 + 1];
            int64_t length = rows[i * 5 + 2];
            int64_t h1 = head[l1];
            int64_t h2 = head[l2];
            int64_t u = h1 >= h2 ? h1 : h2;
            if (swap_aware) {
                int64_t p1 = pos[l1];
                int64_t p2 = pos[l2];
                if (p1 >= 0 && p2 >= 0) {
                    int64_t d = dist[p1 * P + p2];
                    if (d > 1)
                        u += split_delay(d, u - load[l1], u - load[l2],
                                         swap_len);
                }
            }
            int64_t end = u + length;
            head[l1] = end;
            head[l2] = end;
            load[l1] += length;
            load[l2] += length;
            if (end > h)
                h = end;
        }
    }

done:
    if (buf != stack_buf)
        free(buf);
    free(pos_heap);
    if (err)
        return NULL;
    return PyLong_FromLongLong(h);
}

/* ------------------------------------------------------------------ */
/* Filter profile                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
profile(PyObject *self, PyObject *args)
{
    PyObject *capsule, *inflight, *pos;
    long long time;
    if (!PyArg_ParseTuple(args, "OLO!O!", &capsule, &time,
                          &PyTuple_Type, &inflight,
                          &PyTuple_Type, &pos))
        return NULL;
    PackedProblem *pp = PyCapsule_GetPointer(capsule, "repro.packed_problem");
    if (pp == NULL)
        return NULL;

    int64_t P = pp->num_physical;
    int64_t stack_buf[STACK_QUBITS * 2];
    int64_t *qfree = stack_buf;
    if (P > STACK_QUBITS * 2) {
        qfree = malloc(sizeof(int64_t) * (size_t)P);
        if (qfree == NULL)
            return PyErr_NoMemory();
    }
    for (int64_t p = 0; p < P; p++)
        qfree[p] = time;

    PyObject *gate_finish = PyDict_New();
    if (gate_finish == NULL)
        goto fail;

    Py_ssize_t n = PyTuple_GET_SIZE(inflight);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyTuple_GET_ITEM(inflight, i);
        int64_t finish = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 0));
        int64_t kind = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
        int64_t a = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 2));
        int64_t b = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 3));
        if (PyErr_Occurred())
            goto fail;
        if (kind == 1) { /* K_SWAP */
            if (finish > qfree[a])
                qfree[a] = finish;
            if (finish > qfree[b])
                qfree[b] = finish;
        } else {
            PyObject *fv = PyLong_FromLongLong(finish);
            if (fv == NULL)
                goto fail;
            int rc = PyDict_SetItem(gate_finish,
                                    PyTuple_GET_ITEM(item, 2), fv);
            Py_DECREF(fv);
            if (rc < 0)
                goto fail;
            int64_t l1 = pp->gate_l1[a];
            int64_t l2 = pp->gate_l2[a];
            int64_t p1 = PyLong_AsLongLong(PyTuple_GET_ITEM(pos, l1));
            if (p1 == -1 && PyErr_Occurred())
                goto fail;
            if (finish > qfree[p1])
                qfree[p1] = finish;
            if (l2 >= 0) {
                int64_t p2 = PyLong_AsLongLong(PyTuple_GET_ITEM(pos, l2));
                if (p2 == -1 && PyErr_Occurred())
                    goto fail;
                if (finish > qfree[p2])
                    qfree[p2] = finish;
            }
        }
    }

    PyObject *qfree_t = PyTuple_New(P);
    if (qfree_t == NULL)
        goto fail;
    for (int64_t p = 0; p < P; p++) {
        PyObject *v = PyLong_FromLongLong(qfree[p]);
        if (v == NULL) {
            Py_DECREF(qfree_t);
            goto fail;
        }
        PyTuple_SET_ITEM(qfree_t, p, v);
    }
    if (qfree != stack_buf)
        free(qfree);
    PyObject *out = PyTuple_New(2);
    if (out == NULL) {
        Py_DECREF(qfree_t);
        Py_DECREF(gate_finish);
        return NULL;
    }
    PyTuple_SET_ITEM(out, 0, qfree_t);
    PyTuple_SET_ITEM(out, 1, gate_finish);
    return out;

fail:
    if (qfree != stack_buf)
        free(qfree);
    Py_XDECREF(gate_finish);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Entry type + admit scan                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long time;
    PyObject *qfree;
    PyObject *gate_finish;
    PyObject *node;
} EntryObject;

static PyObject *str_killed;
static PyObject *str_dropped;
static PyObject *str_last_swaps;
static PyObject *str_prev_startable;

static PyObject *
Entry_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    long long time;
    PyObject *qfree, *gate_finish, *node;
    if (!PyArg_ParseTuple(args, "LOOO", &time, &qfree, &gate_finish, &node))
        return NULL;
    EntryObject *self = (EntryObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = time;
    Py_INCREF(qfree);
    self->qfree = qfree;
    Py_INCREF(gate_finish);
    self->gate_finish = gate_finish;
    Py_INCREF(node);
    self->node = node;
    return (PyObject *)self;
}

static void
Entry_dealloc(EntryObject *self)
{
    Py_XDECREF(self->qfree);
    Py_XDECREF(self->gate_finish);
    Py_XDECREF(self->node);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef Entry_members[] = {
    {"time", T_LONGLONG, offsetof(EntryObject, time), READONLY, NULL},
    {"qfree", T_OBJECT_EX, offsetof(EntryObject, qfree), READONLY, NULL},
    {"gate_finish", T_OBJECT_EX, offsetof(EntryObject, gate_finish), READONLY,
     NULL},
    {"node", T_OBJECT_EX, offsetof(EntryObject, node), READONLY, NULL},
    {NULL},
};

static PyTypeObject Entry_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core.kernels._ckernels.Entry",
    .tp_basicsize = sizeof(EntryObject),
    .tp_dealloc = (destructor)Entry_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_members = Entry_members,
    .tp_new = Entry_new,
};

static int
attr_true(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    int rc = PyObject_IsTrue(v);
    Py_DECREF(v);
    return rc;
}

static int
as_i64(PyObject *obj, int64_t *out)
{
    int64_t v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

/* 1 = better dominates worse, 0 = not, -1 = error. Mirrors
 * filters._dominates. */
static int
entry_dominates(EntryObject *better, EntryObject *worse)
{
    if (better->time > worse->time)
        return 0;
    Py_ssize_t n = PyTuple_GET_SIZE(better->qfree);
    for (Py_ssize_t i = 0; i < n; i++) {
        int64_t rb, rw;
        if (as_i64(PyTuple_GET_ITEM(better->qfree, i), &rb) < 0
            || as_i64(PyTuple_GET_ITEM(worse->qfree, i), &rw) < 0)
            return -1;
        if (rb > rw)
            return 0;
    }
    PyObject *bf = better->gate_finish;
    PyObject *wf = worse->gate_finish;
    if (PyDict_GET_SIZE(bf) || PyDict_GET_SIZE(wf)) {
        Py_ssize_t pos = 0;
        PyObject *gate, *val;
        while (PyDict_Next(bf, &pos, &gate, &val)) {
            PyObject *fw = PyDict_GetItemWithError(wf, gate);
            if (fw == NULL && PyErr_Occurred())
                return -1;
            int64_t fb, limit;
            if (as_i64(val, &fb) < 0)
                return -1;
            if (fw == NULL) {
                limit = worse->time;
            } else if (as_i64(fw, &limit) < 0) {
                return -1;
            }
            if (fb > limit)
                return 0;
        }
        pos = 0;
        while (PyDict_Next(wf, &pos, &gate, &val)) {
            PyObject *fb = PyDict_GetItemWithError(bf, gate);
            if (fb == NULL && PyErr_Occurred())
                return -1;
            if (fb == NULL) {
                int64_t fwv;
                if (as_i64(val, &fwv) < 0)
                    return -1;
                if (better->time > fwv)
                    return 0;
            }
        }
    }
    PyObject *b_ls = PyObject_GetAttr(better->node, str_last_swaps);
    if (b_ls == NULL)
        return -1;
    PyObject *w_ls = PyObject_GetAttr(worse->node, str_last_swaps);
    if (w_ls == NULL) {
        Py_DECREF(b_ls);
        return -1;
    }
    int rc = PyObject_RichCompareBool(b_ls, w_ls, Py_LE);
    Py_DECREF(b_ls);
    Py_DECREF(w_ls);
    if (rc <= 0)
        return rc;
    PyObject *b_ps = PyObject_GetAttr(better->node, str_prev_startable);
    if (b_ps == NULL)
        return -1;
    PyObject *w_ps = PyObject_GetAttr(worse->node, str_prev_startable);
    if (w_ps == NULL) {
        Py_DECREF(b_ps);
        return -1;
    }
    rc = PyObject_RichCompareBool(b_ps, w_ps, Py_LE);
    Py_DECREF(b_ps);
    Py_DECREF(w_ps);
    return rc;
}

static PyObject *
dominates(PyObject *self, PyObject *args)
{
    EntryObject *better, *worse;
    if (!PyArg_ParseTuple(args, "O!O!", &Entry_Type, &better,
                          &Entry_Type, &worse))
        return NULL;
    int rc = entry_dominates(better, worse);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

/* Build ``survivors + bucket[index:]`` (the in-scan compaction write-
 * back) or None when no dead entry was skipped before ``index``. */
static PyObject *
compacted_bucket(PyObject *survivors, PyObject *bucket, Py_ssize_t index)
{
    if (PyList_GET_SIZE(survivors) >= index)
        Py_RETURN_NONE;
    PyObject *rest = PyList_GetSlice(bucket, index, PyList_GET_SIZE(bucket));
    if (rest == NULL)
        return NULL;
    PyObject *merged = PySequence_Concat(survivors, rest);
    Py_DECREF(rest);
    return merged;
}

/* The full StateFilter.admit() bucket scan.  Returns
 * ``(code, new_bucket_or_None, killed_count)`` with code 0 = admitted
 * (new_bucket is the replacement bucket), 1 = equivalent drop,
 * 2 = dominated drop (new_bucket is the compaction write-back or
 * None). */
static PyObject *
admit_scan(PyObject *self, PyObject *args)
{
    PyObject *bucket;
    EntryObject *entry;
    int dominance, live_only;
    if (!PyArg_ParseTuple(args, "O!O!pp", &PyList_Type, &bucket,
                          &Entry_Type, &entry, &dominance, &live_only))
        return NULL;

    PyObject *survivors = PyList_New(0);
    if (survivors == NULL)
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(bucket);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(bucket, i);
        if (!PyObject_TypeCheck(item, &Entry_Type)) {
            PyErr_SetString(PyExc_TypeError,
                            "admit_scan bucket holds a non-Entry item");
            goto fail;
        }
        EntryObject *ex = (EntryObject *)item;
        int killed = attr_true(ex->node, str_killed);
        if (killed < 0)
            goto fail;
        if (killed)
            continue;
        int dropped = -2;
        if (live_only) {
            dropped = attr_true(ex->node, str_dropped);
            if (dropped < 0)
                goto fail;
            if (dropped)
                continue;
        }
        if (ex->time == entry->time) {
            int eq = PyObject_RichCompareBool(ex->qfree, entry->qfree, Py_EQ);
            if (eq < 0)
                goto fail;
            if (eq) {
                eq = PyObject_RichCompareBool(ex->gate_finish,
                                              entry->gate_finish, Py_EQ);
                if (eq < 0)
                    goto fail;
                if (eq) {
                    PyObject *nb = compacted_bucket(survivors, bucket, i);
                    Py_DECREF(survivors);
                    if (nb == NULL)
                        return NULL;
                    return Py_BuildValue("(iNl)", 1, nb, 0L);
                }
            }
        }
        if (dominance) {
            if (dropped == -2) {
                dropped = attr_true(ex->node, str_dropped);
                if (dropped < 0)
                    goto fail;
            }
            if (!dropped) {
                int dom = entry_dominates(ex, entry);
                if (dom < 0)
                    goto fail;
                if (dom) {
                    PyObject *nb = compacted_bucket(survivors, bucket, i);
                    Py_DECREF(survivors);
                    if (nb == NULL)
                        return NULL;
                    return Py_BuildValue("(iNl)", 2, nb, 0L);
                }
            }
        }
        if (PyList_Append(survivors, item) < 0)
            goto fail;
    }

    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        goto fail;
    long killed_count = 0;
    Py_ssize_t m = PyList_GET_SIZE(survivors);
    for (Py_ssize_t j = 0; j < m; j++) {
        EntryObject *ex = (EntryObject *)PyList_GET_ITEM(survivors, j);
        int kill = 0;
        if (dominance) {
            int dropped = attr_true(ex->node, str_dropped);
            if (dropped < 0)
                goto fail2;
            if (!dropped) {
                kill = entry_dominates(entry, ex);
                if (kill < 0)
                    goto fail2;
            }
        }
        if (kill) {
            if (PyObject_SetAttr(ex->node, str_killed, Py_True) < 0)
                goto fail2;
            killed_count++;
        } else if (PyList_Append(kept, (PyObject *)ex) < 0) {
            goto fail2;
        }
    }
    if (PyList_Append(kept, (PyObject *)entry) < 0)
        goto fail2;
    Py_DECREF(survivors);
    return Py_BuildValue("(iNl)", 0, kept, killed_count);

fail2:
    Py_DECREF(kept);
fail:
    Py_DECREF(survivors);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Optimal-mode expansion                                              */
/* ------------------------------------------------------------------ */

/* Interned attribute names for SearchNode construction. */
static PyObject *str_time, *str_pos, *str_inv, *str_ptr, *str_started;
static PyObject *str_inflight, *str_parent, *str_actions, *str_prefix_layers;
static PyObject *str_h, *str_f, *str_eff, *str_fkey, *str_mkey;
static PyObject *str_profile_attr, *str_frontier, *str_tid;
static PyObject *str_mapping_after_swaps;
static PyObject *empty_args;

static int
set_ll(PyObject *obj, PyObject *name, long long v)
{
    PyObject *x = PyLong_FromLongLong(v);
    if (x == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, x);
    Py_DECREF(x);
    return rc;
}

static PyObject *
tuple_from_i64(const int64_t *values, Py_ssize_t n)
{
    PyObject *t = PyTuple_New(n);
    if (t == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *v = PyLong_FromLongLong(values[i]);
        if (v == NULL) {
            Py_DECREF(t);
            return NULL;
        }
        PyTuple_SET_ITEM(t, i, v);
    }
    return t;
}

static int
tuple_to_i64(PyObject *t, int64_t *out, Py_ssize_t expect)
{
    if (!PyTuple_Check(t) || PyTuple_GET_SIZE(t) != expect) {
        PyErr_SetString(PyExc_ValueError, "expand: tuple length mismatch");
        return -1;
    }
    for (Py_ssize_t i = 0; i < expect; i++) {
        if (as_i64(PyTuple_GET_ITEM(t, i), out + i) < 0)
            return -1;
    }
    return 0;
}

static PyObject *
pair_tuple(int64_t a, int64_t b)
{
    PyObject *oa = PyLong_FromLongLong(a);
    if (oa == NULL)
        return NULL;
    PyObject *ob = PyLong_FromLongLong(b);
    if (ob == NULL) {
        Py_DECREF(oa);
        return NULL;
    }
    PyObject *t = PyTuple_New(2);
    if (t == NULL) {
        Py_DECREF(oa);
        Py_DECREF(ob);
        return NULL;
    }
    PyTuple_SET_ITEM(t, 0, oa);
    PyTuple_SET_ITEM(t, 1, ob);
    return t;
}

/* frozenset of (a, b) int pairs taken from two parallel arrays. */
static PyObject *
pairs_frozenset(const int64_t *pa, const int64_t *pb, Py_ssize_t n)
{
    PyObject *list = PyList_New(n);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *t = pair_tuple(pa[i], pb[i]);
        if (t == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, t);
    }
    PyObject *fs = PyFrozenSet_New(list);
    Py_DECREF(list);
    return fs;
}

/* All per-expansion state shared by the subset recursion: the parent's
 * decoded fields, the startable-action table and reusable scratch
 * buffers sized once up front.  Mirrors expander.expand's closure. */
typedef struct {
    const PackedProblem *pp;
    PyTypeObject *cls;
    PyObject *node;
    long long ptime;
    long long pstarted;
    PyObject *ppos, *pinv, *pptr, *pinflight, *plast_swaps, *pprev;
    PyObject *parent_eff;      /* (pos, inv) after in-flight SWAPs */
    int64_t *pos_c, *ptr_c;    /* L */
    int64_t *inv_c;            /* P */
    int64_t *eff_pos_c;        /* L */
    int64_t *eff_inv_c;        /* P */
    Py_ssize_t n_inflight;
    int64_t *infl;             /* 4 per item: finish, kind, a, b */
    Py_ssize_t n_ls;
    int64_t *ls_a, *ls_b;      /* decoded parent last_swaps pairs */
    Py_ssize_t n_act;
    PyObject **act_tup;        /* owned action tuples ("g",i)/("s",p,q) */
    int64_t *act_mask, *act_a, *act_b;
    int8_t *act_swap, *act_fresh;
    PyObject *all_startable;   /* frozenset over act_tup */
    Py_ssize_t *chosen;        /* action indices of the current subset */
    int8_t *chosen_flag;
    PyObject *children;        /* output list */
    /* apply scratch (sized n_act / n_inflight+n_act / n_ls+...): */
    int64_t *nptr, *scr_pos, *scr_effpos;   /* L */
    int64_t *scr_inv, *scr_effinv;          /* P */
    int64_t *ni_fin, *ni_kind, *ni_a, *ni_b;
    int64_t *comp_a, *comp_b;
    int64_t *kept_a, *kept_b;
    int64_t *nsw_a, *nsw_b;    /* SWAPs started by the current subset */
} ExpandCtx;

/* apply_action_set for the current ``chosen`` subset; appends the child
 * to ctx->children (or nothing for the impossible empty wait).  Returns
 * 0 on success, -1 on error.  Bit-identical to expander.apply_action_set
 * on the optimal-mode arguments (touched + startable_pairs precomputed,
 * parent_eff given). */
static int
apply_chosen(ExpandCtx *ctx, Py_ssize_t n_chosen, int64_t touched)
{
    const PackedProblem *pp = ctx->pp;
    int64_t L = pp->num_logical;
    int64_t P = pp->num_physical;
    long long started = ctx->pstarted;
    Py_ssize_t n_new = 0;
    int ptr_copied = 0;
    Py_ssize_t n_new_swaps = 0;
    int64_t *nsw_a = ctx->nsw_a, *nsw_b = ctx->nsw_b;
    int64_t next_time = 0;
    int have_next = 0;

    for (Py_ssize_t c = 0; c < n_chosen; c++) {
        Py_ssize_t i = ctx->chosen[c];
        int64_t finish;
        if (!ctx->act_swap[i]) {
            int64_t gate = ctx->act_a[i];
            if (!ptr_copied) {
                memcpy(ctx->nptr, ctx->ptr_c, sizeof(int64_t) * (size_t)L);
                ptr_copied = 1;
            }
            ctx->nptr[pp->gate_l1[gate]] += 1;
            if (pp->gate_l2[gate] >= 0)
                ctx->nptr[pp->gate_l2[gate]] += 1;
            started += 1;
            finish = ctx->ptime + pp->gate_lat[gate];
            ctx->ni_fin[n_new] = finish;
            ctx->ni_kind[n_new] = 0;  /* K_GATE */
            ctx->ni_a[n_new] = gate;
            ctx->ni_b[n_new] = 0;
            n_new++;
        } else {
            finish = ctx->ptime + pp->swap_len;
            ctx->ni_fin[n_new] = finish;
            ctx->ni_kind[n_new] = 1;  /* K_SWAP */
            ctx->ni_a[n_new] = ctx->act_a[i];
            ctx->ni_b[n_new] = ctx->act_b[i];
            n_new++;
            nsw_a[n_new_swaps] = ctx->act_a[i];
            nsw_b[n_new_swaps] = ctx->act_b[i];
            n_new_swaps++;
        }
        if (!have_next || finish < next_time) {
            next_time = finish;
            have_next = 1;
        }
    }

    if (n_new == 0 && ctx->n_inflight == 0)
        return 0;  /* time cannot advance: not a child */

    if (ctx->n_inflight
        && (!have_next || ctx->infl[0] < next_time)) {
        next_time = ctx->infl[0];
        have_next = 1;
    }

    Py_ssize_t n_comp = 0;
    Py_ssize_t cut = 0;
    for (Py_ssize_t i = 0; i < ctx->n_inflight; i++) {
        if (ctx->infl[i * 4] > next_time)
            break;
        if (ctx->infl[i * 4 + 1] == 1) {
            ctx->comp_a[n_comp] = ctx->infl[i * 4 + 2];
            ctx->comp_b[n_comp] = ctx->infl[i * 4 + 3];
            n_comp++;
        }
        cut++;
    }

    PyObject *remaining = PyList_New(0);
    if (remaining == NULL)
        return -1;
    for (Py_ssize_t i = cut; i < ctx->n_inflight; i++) {
        if (PyList_Append(remaining,
                          PyTuple_GET_ITEM(ctx->pinflight, i)) < 0)
            goto fail_remaining;
    }
    int need_sort = 0;
    for (Py_ssize_t i = 0; i < n_new; i++) {
        if (ctx->ni_fin[i] > next_time) {
            PyObject *item = PyTuple_New(4);
            if (item == NULL)
                goto fail_remaining;
            PyObject *v;
            if ((v = PyLong_FromLongLong(ctx->ni_fin[i])) == NULL) {
                Py_DECREF(item);
                goto fail_remaining;
            }
            PyTuple_SET_ITEM(item, 0, v);
            if ((v = PyLong_FromLongLong(ctx->ni_kind[i])) == NULL) {
                Py_DECREF(item);
                goto fail_remaining;
            }
            PyTuple_SET_ITEM(item, 1, v);
            if ((v = PyLong_FromLongLong(ctx->ni_a[i])) == NULL) {
                Py_DECREF(item);
                goto fail_remaining;
            }
            PyTuple_SET_ITEM(item, 2, v);
            if ((v = PyLong_FromLongLong(ctx->ni_b[i])) == NULL) {
                Py_DECREF(item);
                goto fail_remaining;
            }
            PyTuple_SET_ITEM(item, 3, v);
            int rc = PyList_Append(remaining, item);
            Py_DECREF(item);
            if (rc < 0)
                goto fail_remaining;
            need_sort = 1;
        } else if (ctx->ni_kind[i] == 1) {
            ctx->comp_a[n_comp] = ctx->ni_a[i];
            ctx->comp_b[n_comp] = ctx->ni_b[i];
            n_comp++;
        }
    }
    if (need_sort && PyList_Sort(remaining) < 0)
        goto fail_remaining;
    PyObject *inflight_t = PyList_AsTuple(remaining);
    Py_DECREF(remaining);
    if (inflight_t == NULL)
        return -1;

    /* From here on, single exit path through ``done``/``fail``. */
    PyObject *ptr_obj = NULL, *pos_obj = NULL, *inv_obj = NULL;
    PyObject *last_swaps = NULL, *prev_startable = NULL;
    PyObject *eff = NULL, *fkey = NULL, *actions_t = NULL, *child = NULL;

    if (ptr_copied) {
        ptr_obj = tuple_from_i64(ctx->nptr, L);
    } else {
        Py_INCREF(ctx->pptr);
        ptr_obj = ctx->pptr;
    }
    if (ptr_obj == NULL)
        goto fail;

    if (n_comp == 0) {
        Py_INCREF(ctx->ppos);
        pos_obj = ctx->ppos;
        Py_INCREF(ctx->pinv);
        inv_obj = ctx->pinv;
    } else {
        memcpy(ctx->scr_pos, ctx->pos_c, sizeof(int64_t) * (size_t)L);
        memcpy(ctx->scr_inv, ctx->inv_c, sizeof(int64_t) * (size_t)P);
        for (Py_ssize_t i = 0; i < n_comp; i++) {
            int64_t a = ctx->comp_a[i], b = ctx->comp_b[i];
            int64_t l1 = ctx->scr_inv[a], l2 = ctx->scr_inv[b];
            ctx->scr_inv[a] = l2;
            ctx->scr_inv[b] = l1;
            if (l1 >= 0)
                ctx->scr_pos[l1] = b;
            if (l2 >= 0)
                ctx->scr_pos[l2] = a;
        }
        pos_obj = tuple_from_i64(ctx->scr_pos, L);
        if (pos_obj == NULL)
            goto fail;
        inv_obj = tuple_from_i64(ctx->scr_inv, P);
    }
    if (pos_obj == NULL || inv_obj == NULL)
        goto fail;

    /* last_swaps: filter the parent's set by the touched mask, then add
     * the SWAPs that completed during this step. */
    Py_ssize_t n_kept = -1;  /* -1 = parent's set survives unchanged */
    if (touched && ctx->n_ls) {
        n_kept = 0;
        for (Py_ssize_t i = 0; i < ctx->n_ls; i++) {
            int64_t pm = ((int64_t)1 << ctx->ls_a[i])
                         | ((int64_t)1 << ctx->ls_b[i]);
            if (!(pm & touched)) {
                ctx->kept_a[n_kept] = ctx->ls_a[i];
                ctx->kept_b[n_kept] = ctx->ls_b[i];
                n_kept++;
            }
        }
    }
    if (n_comp) {
        if (n_kept < 0) {
            PyObject *comp_fs = pairs_frozenset(ctx->comp_a, ctx->comp_b,
                                                n_comp);
            if (comp_fs == NULL)
                goto fail;
            last_swaps = PyNumber_Or(ctx->plast_swaps, comp_fs);
            Py_DECREF(comp_fs);
        } else {
            for (Py_ssize_t i = 0; i < n_comp; i++) {
                ctx->kept_a[n_kept] = ctx->comp_a[i];
                ctx->kept_b[n_kept] = ctx->comp_b[i];
                n_kept++;
            }
            last_swaps = pairs_frozenset(ctx->kept_a, ctx->kept_b, n_kept);
        }
    } else if (n_kept < 0) {
        Py_INCREF(ctx->plast_swaps);
        last_swaps = ctx->plast_swaps;
    } else {
        last_swaps = pairs_frozenset(ctx->kept_a, ctx->kept_b, n_kept);
    }
    if (last_swaps == NULL)
        goto fail;

    if (n_chosen == 0) {
        Py_INCREF(ctx->all_startable);
        prev_startable = ctx->all_startable;
    } else {
        PyObject *carried = PyList_New(0);
        if (carried == NULL)
            goto fail;
        for (Py_ssize_t i = 0; i < ctx->n_act; i++) {
            if (!(ctx->act_mask[i] & touched) && !ctx->chosen_flag[i]) {
                if (PyList_Append(carried, ctx->act_tup[i]) < 0) {
                    Py_DECREF(carried);
                    goto fail;
                }
            }
        }
        prev_startable = PyFrozenSet_New(carried);
        Py_DECREF(carried);
        if (prev_startable == NULL)
            goto fail;
    }

    if (n_new_swaps == 0) {
        Py_INCREF(ctx->parent_eff);
        eff = ctx->parent_eff;
    } else {
        memcpy(ctx->scr_effpos, ctx->eff_pos_c, sizeof(int64_t) * (size_t)L);
        memcpy(ctx->scr_effinv, ctx->eff_inv_c, sizeof(int64_t) * (size_t)P);
        for (Py_ssize_t i = 0; i < n_new_swaps; i++) {
            int64_t a = nsw_a[i], b = nsw_b[i];
            int64_t l1 = ctx->scr_effinv[a], l2 = ctx->scr_effinv[b];
            ctx->scr_effinv[a] = l2;
            ctx->scr_effinv[b] = l1;
            if (l1 >= 0)
                ctx->scr_effpos[l1] = b;
            if (l2 >= 0)
                ctx->scr_effpos[l2] = a;
        }
        PyObject *ep = tuple_from_i64(ctx->scr_effpos, L);
        if (ep == NULL)
            goto fail;
        PyObject *ei = tuple_from_i64(ctx->scr_effinv, P);
        if (ei == NULL) {
            Py_DECREF(ep);
            goto fail;
        }
        eff = PyTuple_New(2);
        if (eff == NULL) {
            Py_DECREF(ep);
            Py_DECREF(ei);
            goto fail;
        }
        PyTuple_SET_ITEM(eff, 0, ep);
        PyTuple_SET_ITEM(eff, 1, ei);
    }
    fkey = PyTuple_New(2);
    if (fkey == NULL)
        goto fail;
    PyObject *eff_inv_obj = PyTuple_GET_ITEM(eff, 1);
    Py_INCREF(eff_inv_obj);
    PyTuple_SET_ITEM(fkey, 0, eff_inv_obj);
    Py_INCREF(ptr_obj);
    PyTuple_SET_ITEM(fkey, 1, ptr_obj);

    actions_t = PyTuple_New(n_chosen);
    if (actions_t == NULL)
        goto fail;
    for (Py_ssize_t c = 0; c < n_chosen; c++) {
        PyObject *a = ctx->act_tup[ctx->chosen[c]];
        Py_INCREF(a);
        PyTuple_SET_ITEM(actions_t, c, a);
    }

    child = ctx->cls->tp_new(ctx->cls, empty_args, NULL);
    if (child == NULL)
        goto fail;
    if (set_ll(child, str_time, next_time) < 0
        || PyObject_SetAttr(child, str_pos, pos_obj) < 0
        || PyObject_SetAttr(child, str_inv, inv_obj) < 0
        || PyObject_SetAttr(child, str_ptr, ptr_obj) < 0
        || set_ll(child, str_started, started) < 0
        || PyObject_SetAttr(child, str_inflight, inflight_t) < 0
        || PyObject_SetAttr(child, str_last_swaps, last_swaps) < 0
        || PyObject_SetAttr(child, str_prev_startable, prev_startable) < 0
        || PyObject_SetAttr(child, str_parent, ctx->node) < 0
        || PyObject_SetAttr(child, str_actions, actions_t) < 0
        || set_ll(child, str_prefix_layers, -1) < 0
        || set_ll(child, str_h, 0) < 0
        || set_ll(child, str_f, 0) < 0
        || PyObject_SetAttr(child, str_killed, Py_False) < 0
        || PyObject_SetAttr(child, str_dropped, Py_False) < 0
        || PyObject_SetAttr(child, str_eff, eff) < 0
        || PyObject_SetAttr(child, str_fkey, fkey) < 0
        || PyObject_SetAttr(child, str_mkey, Py_None) < 0
        || PyObject_SetAttr(child, str_profile_attr, Py_None) < 0
        || PyObject_SetAttr(child, str_frontier, Py_None) < 0
        || set_ll(child, str_tid, -1) < 0)
        goto fail;
    if (PyList_Append(ctx->children, child) < 0)
        goto fail;

    Py_DECREF(child);
    Py_DECREF(actions_t);
    Py_DECREF(fkey);
    Py_DECREF(eff);
    Py_DECREF(prev_startable);
    Py_DECREF(last_swaps);
    Py_DECREF(inv_obj);
    Py_DECREF(pos_obj);
    Py_DECREF(ptr_obj);
    Py_DECREF(inflight_t);
    return 0;

fail_remaining:
    Py_DECREF(remaining);
    return -1;
fail:
    Py_XDECREF(child);
    Py_XDECREF(actions_t);
    Py_XDECREF(fkey);
    Py_XDECREF(eff);
    Py_XDECREF(prev_startable);
    Py_XDECREF(last_swaps);
    Py_XDECREF(inv_obj);
    Py_XDECREF(pos_obj);
    Py_XDECREF(ptr_obj);
    Py_XDECREF(inflight_t);
    return -1;
}

/* Mirror of expander._recurse_masked fused with the per-candidate
 * apply: emit the current subset (when it contains at least one fresh
 * action), then extend it with every later compatible action.  No SWAP
 * budget: the optimal configs never set max_swaps_per_step. */
static int
recurse_subsets(ExpandCtx *ctx, Py_ssize_t start, int64_t mask,
                Py_ssize_t n_chosen, int64_t fresh)
{
    if (fresh && apply_chosen(ctx, n_chosen, mask) < 0)
        return -1;
    for (Py_ssize_t i = start; i < ctx->n_act; i++) {
        if (mask & ctx->act_mask[i])
            continue;
        ctx->chosen[n_chosen] = i;
        ctx->chosen_flag[i] = 1;
        int rc = recurse_subsets(ctx, i + 1, mask | ctx->act_mask[i],
                                 n_chosen + 1, fresh + ctx->act_fresh[i]);
        ctx->chosen_flag[i] = 0;
        if (rc < 0)
            return -1;
    }
    return 0;
}

/* Whole optimal-mode expand: startable-action enumeration, active-SWAP
 * restriction, masked subset recursion fused with the redundancy rule,
 * and child construction.  Returns ``(children, restricted,
 * has_startable)``; the caller (compiled.py) adds ``restricted`` to the
 * shared counters and runs the python redundancy fallback when
 * ``children`` is empty but ``has_startable`` is true. */
static PyObject *
expand_optimal(PyObject *self, PyObject *args)
{
    PyObject *capsule, *cls_obj, *node, *rows_obj;
    int active_only;
    if (!PyArg_ParseTuple(args, "OOOO!p", &capsule, &cls_obj, &node,
                          &PyBytes_Type, &rows_obj, &active_only))
        return NULL;
    PackedProblem *pp = PyCapsule_GetPointer(capsule, "repro.packed_problem");
    if (pp == NULL)
        return NULL;
    if (!PyType_Check(cls_obj)) {
        PyErr_SetString(PyExc_TypeError, "expand: cls must be a type");
        return NULL;
    }

    int64_t L = pp->num_logical;
    int64_t P = pp->num_physical;
    int64_t E = pp->num_edges;
    if (P >= 63) {
        PyErr_SetString(PyExc_ValueError,
                        "expand: >62 physical qubits exceeds int64 masks");
        return NULL;
    }

    ExpandCtx ctx;
    memset(&ctx, 0, sizeof(ctx));
    ctx.pp = pp;
    ctx.cls = (PyTypeObject *)cls_obj;
    ctx.node = node;

    PyObject *result = NULL;
    PyObject *t_started = NULL, *t_time = NULL;
    int64_t *block = NULL;
    int8_t flags_stack[512];
    int8_t *flags = flags_stack;
    Py_ssize_t chosen_stack[256];
    Py_ssize_t *chosen_heap = NULL;
    long long restricted = 0;

    /* --- parent attributes ----------------------------------------- */
    t_time = PyObject_GetAttr(node, str_time);
    if (t_time == NULL)
        goto fail;
    ctx.ptime = PyLong_AsLongLong(t_time);
    if (ctx.ptime == -1 && PyErr_Occurred())
        goto fail;
    t_started = PyObject_GetAttr(node, str_started);
    if (t_started == NULL)
        goto fail;
    ctx.pstarted = PyLong_AsLongLong(t_started);
    if (ctx.pstarted == -1 && PyErr_Occurred())
        goto fail;
    ctx.ppos = PyObject_GetAttr(node, str_pos);
    ctx.pinv = PyObject_GetAttr(node, str_inv);
    ctx.pptr = PyObject_GetAttr(node, str_ptr);
    ctx.pinflight = PyObject_GetAttr(node, str_inflight);
    ctx.plast_swaps = PyObject_GetAttr(node, str_last_swaps);
    ctx.pprev = PyObject_GetAttr(node, str_prev_startable);
    if (ctx.ppos == NULL || ctx.pinv == NULL || ctx.pptr == NULL
        || ctx.pinflight == NULL || ctx.plast_swaps == NULL
        || ctx.pprev == NULL)
        goto fail;
    ctx.parent_eff = PyObject_CallMethodNoArgs(node, str_mapping_after_swaps);
    if (ctx.parent_eff == NULL)
        goto fail;
    if (!PyTuple_Check(ctx.pinflight) || !PyTuple_Check(ctx.parent_eff)
        || PyTuple_GET_SIZE(ctx.parent_eff) != 2
        || !PyAnySet_Check(ctx.plast_swaps)
        || !PyAnySet_Check(ctx.pprev)) {
        PyErr_SetString(PyExc_TypeError, "expand: malformed node fields");
        goto fail;
    }
    ctx.n_inflight = PyTuple_GET_SIZE(ctx.pinflight);
    ctx.n_ls = PySet_GET_SIZE(ctx.plast_swaps);

    /* --- one arena for every scratch array -------------------------- */
    Py_ssize_t max_act = L + E;           /* frontier gates + edges */
    Py_ssize_t max_items = ctx.n_inflight + max_act;
    Py_ssize_t need =
        4 * L                              /* pos, ptr, eff_pos, nptr */
        + 2 * L                            /* scr_pos, scr_effpos */
        + 3 * P                            /* inv, eff_inv, scr_inv/effinv */
        + P                                /* (second scr) */
        + 4 * ctx.n_inflight               /* infl rows */
        + 2 * ctx.n_ls                     /* ls pairs */
        + 3 * max_act                      /* act_mask/a/b */
        + 4 * max_act                      /* ni rows */
        + 2 * max_items                    /* completed pairs */
        + 2 * (ctx.n_ls + max_items)       /* kept pairs */
        + 2 * max_act                      /* new-SWAP pairs */
        + L;                               /* frontier gather */
    block = malloc(sizeof(int64_t) * (size_t)(need > 0 ? need : 1));
    if (block == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    int64_t *cursor = block;
    ctx.pos_c = cursor; cursor += L;
    ctx.ptr_c = cursor; cursor += L;
    ctx.eff_pos_c = cursor; cursor += L;
    ctx.nptr = cursor; cursor += L;
    ctx.scr_pos = cursor; cursor += L;
    ctx.scr_effpos = cursor; cursor += L;
    ctx.inv_c = cursor; cursor += P;
    ctx.eff_inv_c = cursor; cursor += P;
    ctx.scr_inv = cursor; cursor += P;
    ctx.scr_effinv = cursor; cursor += P;
    ctx.infl = cursor; cursor += 4 * ctx.n_inflight;
    ctx.ls_a = cursor; cursor += ctx.n_ls;
    ctx.ls_b = cursor; cursor += ctx.n_ls;
    ctx.act_mask = cursor; cursor += max_act;
    ctx.act_a = cursor; cursor += max_act;
    ctx.act_b = cursor; cursor += max_act;
    ctx.ni_fin = cursor; cursor += max_act;
    ctx.ni_kind = cursor; cursor += max_act;
    ctx.ni_a = cursor; cursor += max_act;
    ctx.ni_b = cursor; cursor += max_act;
    ctx.comp_a = cursor; cursor += max_items;
    ctx.comp_b = cursor; cursor += max_items;
    ctx.kept_a = cursor; cursor += ctx.n_ls + max_items;
    ctx.kept_b = cursor; cursor += ctx.n_ls + max_items;
    ctx.nsw_a = cursor; cursor += max_act;
    ctx.nsw_b = cursor; cursor += max_act;
    int64_t *ready = cursor;

    if (3 * max_act > 512) {
        flags = malloc((size_t)(3 * max_act));
        if (flags == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
    }
    ctx.act_swap = flags;
    ctx.act_fresh = flags + max_act;
    ctx.chosen_flag = flags + 2 * max_act;
    memset(ctx.chosen_flag, 0, (size_t)max_act);
    if (max_act > 256) {
        chosen_heap = malloc(sizeof(Py_ssize_t) * (size_t)max_act);
        if (chosen_heap == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        ctx.chosen = chosen_heap;
    } else {
        ctx.chosen = chosen_stack;
    }

    if (tuple_to_i64(ctx.ppos, ctx.pos_c, L) < 0
        || tuple_to_i64(ctx.pptr, ctx.ptr_c, L) < 0
        || tuple_to_i64(ctx.pinv, ctx.inv_c, P) < 0
        || tuple_to_i64(PyTuple_GET_ITEM(ctx.parent_eff, 0),
                        ctx.eff_pos_c, L) < 0
        || tuple_to_i64(PyTuple_GET_ITEM(ctx.parent_eff, 1),
                        ctx.eff_inv_c, P) < 0)
        goto fail;
    for (Py_ssize_t i = 0; i < ctx.n_inflight; i++) {
        PyObject *item = PyTuple_GET_ITEM(ctx.pinflight, i);
        if (tuple_to_i64(item, ctx.infl + 4 * i, 4) < 0)
            goto fail;
    }
    {
        PyObject *it = PyObject_GetIter(ctx.plast_swaps);
        if (it == NULL)
            goto fail;
        Py_ssize_t i = 0;
        PyObject *pair;
        while ((pair = PyIter_Next(it)) != NULL) {
            int64_t row[2];
            if (tuple_to_i64(pair, row, 2) < 0) {
                Py_DECREF(pair);
                Py_DECREF(it);
                goto fail;
            }
            Py_DECREF(pair);
            ctx.ls_a[i] = row[0];
            ctx.ls_b[i] = row[1];
            i++;
        }
        Py_DECREF(it);
        if (PyErr_Occurred())
            goto fail;
    }

    /* --- busy mask & frontier (startable_actions) ------------------- */
    int64_t busy = 0;
    for (Py_ssize_t i = 0; i < ctx.n_inflight; i++) {
        int64_t kind = ctx.infl[i * 4 + 1];
        int64_t a = ctx.infl[i * 4 + 2];
        int64_t b = ctx.infl[i * 4 + 3];
        if (kind == 1) {
            busy |= ((int64_t)1 << a) | ((int64_t)1 << b);
        } else {
            int64_t l1 = pp->gate_l1[a];
            int64_t l2 = pp->gate_l2[a];
            busy |= (int64_t)1 << ctx.pos_c[l1];
            if (l2 >= 0)
                busy |= (int64_t)1 << ctx.pos_c[l2];
        }
    }
    Py_ssize_t n_ready = 0;
    for (int64_t l = 0; l < L; l++) {
        int64_t index = ctx.ptr_c[l];
        if (index >= pp->seq_len[l])
            continue;
        int64_t gate = pp->seq_flat[pp->seq_off[l] + index];
        int64_t l2 = pp->gate_l2[gate];
        if (l2 < 0) {
            ready[n_ready++] = gate;
        } else {
            int64_t l1 = pp->gate_l1[gate];
            if (ctx.ptr_c[l1] == pp->gate_p1[gate]
                && ctx.ptr_c[l2] == pp->gate_p2[gate] && l == l1)
                ready[n_ready++] = gate;
        }
    }
    /* insertion sort: mirror frontier_gates' ready.sort() */
    for (Py_ssize_t i = 1; i < n_ready; i++) {
        int64_t v = ready[i];
        Py_ssize_t j = i;
        while (j > 0 && ready[j - 1] > v) {
            ready[j] = ready[j - 1];
            j--;
        }
        ready[j] = v;
    }

    ctx.n_act = 0;
    for (Py_ssize_t i = 0; i < n_ready; i++) {
        int64_t gate = ready[i];
        int64_t l1 = pp->gate_l1[gate];
        int64_t l2 = pp->gate_l2[gate];
        int64_t mask;
        if (l2 >= 0) {
            int64_t p1 = ctx.pos_c[l1], p2 = ctx.pos_c[l2];
            if (p1 < 0 || p2 < 0)
                continue;
            mask = ((int64_t)1 << p1) | ((int64_t)1 << p2);
            if (pp->dist_flat[p1 * P + p2] != 1)
                continue;
            if (busy & mask)
                continue;
        } else {
            int64_t p1 = ctx.pos_c[l1];
            if (p1 < 0)
                continue;
            mask = (int64_t)1 << p1;
            if (busy & mask)
                continue;
        }
        ctx.act_swap[ctx.n_act] = 0;
        ctx.act_a[ctx.n_act] = gate;
        ctx.act_b[ctx.n_act] = 0;
        ctx.act_mask[ctx.n_act] = mask;
        ctx.n_act++;
    }
    /* --- active-SWAP mask (problem.active_swap_mask) ----------------- */
    int64_t active_mask = -1;
    if (active_only) {
        const int64_t *rows = (const int64_t *)PyBytes_AS_STRING(rows_obj);
        Py_ssize_t total_i64 =
            PyBytes_GET_SIZE(rows_obj) / (Py_ssize_t)sizeof(int64_t);
        Py_ssize_t n_rows = (total_i64 - L) / 5;
        if (n_rows < 0 || n_rows * 5 + L != total_i64) {
            PyErr_SetString(PyExc_ValueError, "expand: malformed rows buffer");
            goto fail;
        }
        active_mask = 0;
        /* seen-pair dedup: comp_a/comp_b are free at this point */
        Py_ssize_t n_seen = 0;
        for (Py_ssize_t i = 0; i < n_rows; i++) {
            int64_t l1 = rows[i * 5];
            int64_t l2 = rows[i * 5 + 1];
            int64_t p1 = ctx.pos_c[l1], p2 = ctx.pos_c[l2];
            if (p1 < 0 || p2 < 0) {
                active_mask = -1;  /* unplaced operand: no restriction */
                break;
            }
            int64_t lo = p1 < p2 ? p1 : p2;
            int64_t hi = p1 < p2 ? p2 : p1;
            int dup = 0;
            for (Py_ssize_t s = 0; s < n_seen; s++) {
                if (ctx.comp_a[s] == lo && ctx.comp_b[s] == hi) {
                    dup = 1;
                    break;
                }
            }
            if (dup)
                continue;
            ctx.comp_a[n_seen] = lo;
            ctx.comp_b[n_seen] = hi;
            n_seen++;
            active_mask |= ((int64_t)1 << p1) | ((int64_t)1 << p2);
            int64_t d = pp->dist_flat[p1 * P + p2];
            if (d > 1) {
                const int64_t *row1 = pp->dist_flat + p1 * P;
                const int64_t *row2 = pp->dist_flat + p2 * P;
                for (int64_t r = 0; r < P; r++) {
                    if (row1[r] + row2[r] == d)
                        active_mask |= (int64_t)1 << r;
                }
            }
        }
    }

    /* --- startable SWAPs -------------------------------------------- */
    for (int64_t e = 0; e < E; e++) {
        int64_t p = pp->edge_p[e], q = pp->edge_q[e];
        int64_t mask = ((int64_t)1 << p) | ((int64_t)1 << q);
        if (busy & mask)
            continue;
        if (ctx.inv_c[p] < 0 && ctx.inv_c[q] < 0)
            continue;
        int in_last = 0;
        for (Py_ssize_t i = 0; i < ctx.n_ls; i++) {
            if (ctx.ls_a[i] == p && ctx.ls_b[i] == q) {
                in_last = 1;
                break;
            }
        }
        if (in_last)
            continue;
        if (!(active_mask & mask)) {
            restricted++;
            continue;
        }
        ctx.act_swap[ctx.n_act] = 1;
        ctx.act_a[ctx.n_act] = p;
        ctx.act_b[ctx.n_act] = q;
        ctx.act_mask[ctx.n_act] = mask;
        ctx.n_act++;
    }

    /* --- python action tuples, freshness, all_startable -------------- */
    ctx.act_tup = calloc((size_t)(ctx.n_act ? ctx.n_act : 1),
                         sizeof(PyObject *));
    if (ctx.act_tup == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < ctx.n_act; i++) {
        PyObject *t;
        if (ctx.act_swap[i]) {
            t = Py_BuildValue("(sLL)", "s", (long long)ctx.act_a[i],
                              (long long)ctx.act_b[i]);
        } else {
            t = Py_BuildValue("(sL)", "g", (long long)ctx.act_a[i]);
        }
        if (t == NULL)
            goto fail;
        ctx.act_tup[i] = t;
        int contains = PySet_Contains(ctx.pprev, t);
        if (contains < 0)
            goto fail;
        ctx.act_fresh[i] = contains ? 0 : 1;
    }
    {
        PyObject *all_list = PyList_New(ctx.n_act);
        if (all_list == NULL)
            goto fail;
        for (Py_ssize_t i = 0; i < ctx.n_act; i++) {
            Py_INCREF(ctx.act_tup[i]);
            PyList_SET_ITEM(all_list, i, ctx.act_tup[i]);
        }
        ctx.all_startable = PyFrozenSet_New(all_list);
        Py_DECREF(all_list);
        if (ctx.all_startable == NULL)
            goto fail;
    }

    /* --- enumerate + apply ------------------------------------------ */
    ctx.children = PyList_New(0);
    if (ctx.children == NULL)
        goto fail;
    if (ctx.n_inflight > 0 && apply_chosen(&ctx, 0, 0) < 0)
        goto fail;
    if (recurse_subsets(&ctx, 0, 0, 0, 0) < 0)
        goto fail;

    result = Py_BuildValue("(OLO)", ctx.children, restricted,
                           ctx.n_act ? Py_True : Py_False);
    /* fall through to cleanup; result may be NULL on BuildValue failure */

fail:
    Py_XDECREF(ctx.children);
    Py_XDECREF(ctx.all_startable);
    if (ctx.act_tup != NULL) {
        for (Py_ssize_t i = 0; i < ctx.n_act; i++)
            Py_XDECREF(ctx.act_tup[i]);
        free(ctx.act_tup);
    }
    Py_XDECREF(ctx.parent_eff);
    Py_XDECREF(ctx.pprev);
    Py_XDECREF(ctx.plast_swaps);
    Py_XDECREF(ctx.pinflight);
    Py_XDECREF(ctx.pptr);
    Py_XDECREF(ctx.pinv);
    Py_XDECREF(ctx.ppos);
    Py_XDECREF(t_started);
    Py_XDECREF(t_time);
    free(chosen_heap);
    if (flags != flags_stack)
        free(flags);
    free(block);
    return result;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef module_methods[] = {
    {"pack_problem", pack_problem, METH_VARARGS,
     "Pack problem arrays into a capsule for the compiled kernels."},
    {"heuristic", heuristic, METH_VARARGS,
     "Full (non-windowed) heuristic_cost over a packed problem."},
    {"profile", profile, METH_VARARGS,
     "State-filter release profile: (qfree tuple, gate_finish dict)."},
    {"dominates", dominates, METH_VARARGS,
     "Dominance check between two Entry objects."},
    {"admit_scan", admit_scan, METH_VARARGS,
     "Whole StateFilter.admit() bucket scan."},
    {"expand", expand_optimal, METH_VARARGS,
     "Optimal-mode node expansion: (children, restricted, has_startable)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef module_def = {
    PyModuleDef_HEAD_INIT,
    "repro.core.kernels._ckernels",
    "Compiled hot kernels for the TOQM search (see kernels/api.py).",
    -1,
    module_methods,
};

PyMODINIT_FUNC
PyInit__ckernels(void)
{
    if (PyType_Ready(&Entry_Type) < 0)
        return NULL;
    str_killed = PyUnicode_InternFromString("killed");
    str_dropped = PyUnicode_InternFromString("dropped");
    str_last_swaps = PyUnicode_InternFromString("last_swaps");
    str_prev_startable = PyUnicode_InternFromString("prev_startable");
    if (str_killed == NULL || str_dropped == NULL || str_last_swaps == NULL
        || str_prev_startable == NULL)
        return NULL;
    str_time = PyUnicode_InternFromString("time");
    str_pos = PyUnicode_InternFromString("pos");
    str_inv = PyUnicode_InternFromString("inv");
    str_ptr = PyUnicode_InternFromString("ptr");
    str_started = PyUnicode_InternFromString("started");
    str_inflight = PyUnicode_InternFromString("inflight");
    str_parent = PyUnicode_InternFromString("parent");
    str_actions = PyUnicode_InternFromString("actions");
    str_prefix_layers = PyUnicode_InternFromString("prefix_layers");
    str_h = PyUnicode_InternFromString("h");
    str_f = PyUnicode_InternFromString("f");
    str_eff = PyUnicode_InternFromString("_eff");
    str_fkey = PyUnicode_InternFromString("_fkey");
    str_mkey = PyUnicode_InternFromString("_mkey");
    str_profile_attr = PyUnicode_InternFromString("_profile");
    str_frontier = PyUnicode_InternFromString("_frontier");
    str_tid = PyUnicode_InternFromString("_tid");
    str_mapping_after_swaps = PyUnicode_InternFromString(
        "mapping_after_swaps");
    empty_args = PyTuple_New(0);
    if (str_time == NULL || str_pos == NULL || str_inv == NULL
        || str_ptr == NULL || str_started == NULL || str_inflight == NULL
        || str_parent == NULL || str_actions == NULL
        || str_prefix_layers == NULL || str_h == NULL || str_f == NULL
        || str_eff == NULL || str_fkey == NULL || str_mkey == NULL
        || str_profile_attr == NULL || str_frontier == NULL
        || str_tid == NULL || str_mapping_after_swaps == NULL
        || empty_args == NULL)
        return NULL;
    PyObject *m = PyModule_Create(&module_def);
    if (m == NULL)
        return NULL;
    Py_INCREF(&Entry_Type);
    if (PyModule_AddObject(m, "Entry", (PyObject *)&Entry_Type) < 0) {
        Py_DECREF(&Entry_Type);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
