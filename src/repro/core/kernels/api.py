"""The kernel backend contract (DESIGN.md §Kernel backends).

The four innermost operations of the search — heuristic evaluation,
filter group hashing, dominance comparison, and open-heap push/pop — are
isolated behind this narrow API so they can be swapped between a pure
python reference, a numpy-vectorized batch evaluator, and an optional
compiled extension without touching the search loops.

Contract (every backend, bit-for-bit):

* ``heuristic_batch(problem, nodes, ...)`` assigns ``node.h`` for every
  node, with values identical to :func:`~repro.core.heuristic
  .heuristic_cost` called node-by-node in list order — including memo
  hit/miss accounting: within a batch, the first node carrying a fresh
  memo key counts as the miss and later duplicates as hits, exactly as
  the sequential evaluation order would produce.
* ``filter_key`` / ``profile`` / ``dominates`` reproduce the state
  filter's grouping hash, release profile, and dominance predicate.
* ``heappush`` / ``heappop`` order the open heap identically (all
  backends currently delegate to :mod:`heapq`, whose C implementation
  is already optimal for the tuple keys the search uses).

Instrumented evaluations (``metrics`` given) always take the per-node
pure path so telemetry counters, spans, and histograms keep their
per-evaluation semantics regardless of backend.

The pure profile/dominance implementations live here (not in
``filters``) because ``filters`` imports this package; keeping the
reference code on this side of the boundary avoids an import cycle.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..expander import expand as _py_expand
from ..heuristic import HeuristicMemo, heuristic_cost, memo_key
from ..problem import MappingProblem
from ..state import K_SWAP, SearchNode


def pure_profile(
    problem: MappingProblem, node: SearchNode
) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """Per-physical-qubit release times and in-flight gate finish times.

    Cached on the node (``node._profile``): the practical mapper admits
    the same node against several filter generations, and ``qfree`` is
    tupled exactly once per node this way (dominance comparisons reuse
    the stored tuple).
    """
    cached = node._profile
    if cached is not None:
        return cached
    qfree = [node.time] * problem.num_physical
    gate_finish: Dict[int, int] = {}
    for finish, kind, a, b in node.inflight:
        if kind == K_SWAP:
            if finish > qfree[a]:
                qfree[a] = finish
            if finish > qfree[b]:
                qfree[b] = finish
        else:
            gate_finish[a] = finish
            for logical in problem.gate_qubits[a]:
                p = node.pos[logical]
                if finish > qfree[p]:
                    qfree[p] = finish
    profile = (tuple(qfree), gate_finish)
    node._profile = profile
    return profile


def pure_dominates(better, worse) -> bool:
    """True when ``better`` can mimic any completion of ``worse``.

    Beyond the timing conditions (no later anywhere), the dominating node
    must not be more *restricted* than the dominated one: its subtree
    prunes first steps recorded in ``prev_startable`` (could-have-started-
    earlier redundancy) and immediate-undo SWAPs recorded in
    ``last_swaps``, so those sets must be subsets of the loser's —
    otherwise a completion available under ``worse`` may be pruned under
    ``better`` and optimality is lost.
    """
    better_time = better.time
    worse_time = worse.time
    if better_time > worse_time:
        return False
    for rb, rw in zip(better.qfree, worse.qfree):
        if rb > rw:
            return False
    bf = better.gate_finish
    wf = worse.gate_finish
    if bf or wf:
        for gate, finish_better in bf.items():
            if finish_better > wf.get(gate, worse_time):
                return False
        for gate, finish_worse in wf.items():
            if gate not in bf and better_time > finish_worse:
                return False
    if not better.node.last_swaps <= worse.node.last_swaps:
        return False
    if not better.node.prev_startable <= worse.node.prev_startable:
        return False
    return True


class KernelBackend:
    """Base backend: the pure python reference implementations.

    Subclasses override :meth:`_eval_nodes` (the batch scorer for
    memo-miss nodes) and, for the compiled backend, the ``admit_scan`` /
    ``make_entry`` hooks the state filter consumes.
    """

    name = "base"

    #: Open-heap operations.  heapq is already a C implementation; the
    #: backends expose them so the search loop binds push/pop through
    #: the same seam as the other kernels.
    heappush = staticmethod(heapq.heappush)
    heappop = staticmethod(heapq.heappop)

    #: Compiled-only hooks: a fused bucket scan for StateFilter.admit()
    #: and the matching entry constructor.  ``None`` means the filter
    #: runs its pure python scan.
    admit_scan = None
    make_entry = None

    def filter_key(self, node: SearchNode) -> Tuple:
        """The equivalence/dominance grouping hash (node-cached)."""
        return node.filter_key()

    def profile(
        self, problem: MappingProblem, node: SearchNode
    ) -> Tuple[Tuple[int, ...], Dict[int, int]]:
        return pure_profile(problem, node)

    def dominates(self, better, worse) -> bool:
        return pure_dominates(better, worse)

    # -- node expansion -------------------------------------------------

    def expand(
        self,
        problem: MappingProblem,
        node: SearchNode,
        config,
        counters: Optional[Dict[str, int]] = None,
    ) -> List[SearchNode]:
        """All non-redundant children of ``node`` (reference expander).

        Backends may accelerate the optimal-mode configurations; the
        children must be *identical* to the reference — same values in
        the same order — because the open heap's tie-break counter and
        the state filter's admit order both depend on generation order.
        """
        return _py_expand(problem, node, config, counters=counters)

    # -- heuristic evaluation -------------------------------------------

    def _eval_nodes(
        self,
        problem: MappingProblem,
        nodes: List[SearchNode],
        window: Optional[int],
        swap_aware: bool,
    ) -> List[int]:
        """Score ``nodes`` (all memo misses); pure per-node reference."""
        return [
            heuristic_cost(problem, node, window=window, swap_aware=swap_aware)
            for node in nodes
        ]

    def heuristic_batch(
        self,
        problem: MappingProblem,
        nodes: List[SearchNode],
        window: Optional[int] = None,
        swap_aware: bool = True,
        metrics=None,
        memo: Optional[HeuristicMemo] = None,
    ) -> None:
        """Assign ``node.h`` for every node in ``nodes``.

        Bit-identical to evaluating :func:`heuristic_cost` node by node
        in list order, including memo hit/miss totals (duplicate keys
        within the batch count first-as-miss, rest-as-hits).
        """
        if not nodes:
            return
        if metrics is not None:
            # Instrumented runs keep per-evaluation counter semantics.
            for node in nodes:
                node.h = heuristic_cost(
                    problem, node, window, swap_aware, metrics, memo
                )
            return
        if memo is None:
            values = self._eval_nodes(problem, nodes, window, swap_aware)
            for node, value in zip(nodes, values):
                node.h = value
            return
        table = memo.table
        miss_nodes: List[SearchNode] = []
        miss_keys: List[Tuple] = []
        pending: Dict[Tuple, int] = {}
        dups: List[Tuple[SearchNode, int]] = []
        hits = 0
        for node in nodes:
            key = memo_key(node)
            cached = table.get(key)
            if cached is not None:
                hits += 1
                node.h = cached
                continue
            slot = pending.get(key)
            if slot is None:
                pending[key] = len(miss_nodes)
                miss_nodes.append(node)
                miss_keys.append(key)
            else:
                hits += 1
                dups.append((node, slot))
        memo.hits += hits
        memo.misses += len(miss_nodes)
        if memo._m_hits is not None and hits:
            memo._m_hits.inc(hits)
        if memo._m_misses is not None and miss_nodes:
            memo._m_misses.inc(len(miss_nodes))
        if miss_nodes:
            values = self._eval_nodes(problem, miss_nodes, window, swap_aware)
            for node, key, value in zip(miss_nodes, miss_keys, values):
                node.h = value
                table[key] = value
            for node, slot in dups:
                node.h = values[slot]
