"""The ``compiled`` backend: C-extension hot kernels.

Requires the optional ``repro.core.kernels._ckernels`` extension (built
by ``python setup.py build_ext --inplace`` or a ``repro[fast]`` wheel);
importing this module raises ``ImportError`` when it is absent, which
the registry turns into "backend unavailable".

The problem is packed once per instance (flat int64 arrays behind a
capsule, cached on the problem object), and the pending-gate rows per
``ptr`` are packed into a reusable bytes buffer mirroring the
``problem.pending_rows`` cache.  Windowed evaluation stays on the pure
path — the practical mapper's truncated lookahead is not worth a C
variant (set building dominates it).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from ..expander import (
    _action_mask,
    _enumerate_masked,
    apply_action_set,
    startable_actions,
)
from ..problem import PROBLEM_CACHE_CAP, MappingProblem
from ..state import SearchNode
from .api import KernelBackend


class CompiledBackend(KernelBackend):
    name = "compiled"

    def __init__(self) -> None:
        from . import _ckernels

        self._ck = _ckernels
        self.make_entry = _ckernels.Entry
        self.admit_scan = _ckernels.admit_scan

    def _packed(self, problem: MappingProblem):
        packed = getattr(problem, "_ck_packed", None)
        if packed is None:
            packed = self._ck.pack_problem(
                problem.num_logical,
                problem.num_physical,
                problem.swap_len,
                1 if problem.has_singles else 0,
                problem.dist_flat,
                problem.gate_l1,
                problem.gate_l2,
                tuple(len(chain) for chain in problem.seq),
                tuple(problem.single_prefix),
                problem.gate_latency,
                problem.gate_p1,
                problem.gate_p2,
                tuple(g for chain in problem.seq for g in chain),
                tuple(e[0] for e in problem.edges),
                tuple(e[1] for e in problem.edges),
            )
            problem._ck_packed = packed
        return packed

    def _rows(self, problem: MappingProblem, ptr) -> bytes:
        cache = getattr(problem, "_ck_rows", None)
        if cache is None:
            cache = {}
            problem._ck_rows = cache
        buf = cache.get(ptr)
        if buf is None:
            flat = array("q")
            for row in problem.pending_rows(ptr):
                flat.extend(row)
            flat.extend(ptr)  # singles-fold seed; see _ckernels.c
            buf = flat.tobytes()
            if len(cache) < PROBLEM_CACHE_CAP:
                cache[ptr] = buf
            else:
                problem.note_cache_overflow("ck_rows")
        return buf

    def _eval_nodes(
        self,
        problem: MappingProblem,
        nodes: List[SearchNode],
        window: Optional[int],
        swap_aware: bool,
    ) -> List[int]:
        if window is not None:
            return super()._eval_nodes(problem, nodes, window, swap_aware)
        packed = self._packed(problem)
        heuristic = self._ck.heuristic
        rows = self._rows
        out: List[int] = []
        for node in nodes:
            if node.inflight:
                pos_after = node.mapping_after_swaps()[0]
            else:
                pos_after = node.pos
            out.append(
                heuristic(
                    packed,
                    rows(problem, node.ptr),
                    node.time,
                    node.inflight,
                    pos_after,
                    node.inv,
                    swap_aware,
                )
            )
        return out

    def expand(
        self,
        problem: MappingProblem,
        node: SearchNode,
        config,
        counters: Optional[Dict[str, int]] = None,
    ) -> List[SearchNode]:
        # The C expander mirrors exactly the optimal-mode path: plain
        # subset enumeration with the redundancy rule fused in, no
        # greedy/frontier/protection restrictions, no SWAP budget.  It
        # also packs qubit sets into int64 masks and bounds its action
        # stack, hence the size gates.
        if (
            config.greedy_gates
            or config.frontier_swaps_only
            or config.protect_satisfied_frontier
            or config.max_swaps_per_step is not None
            or config.max_candidate_swaps is not None
            or problem.num_physical >= 63
            or problem.num_logical + len(problem.edges) > 160
        ):
            return super().expand(problem, node, config, counters=counters)
        children, restricted, has_startable = self._ck.expand(
            self._packed(problem),
            SearchNode,
            node,
            self._rows(problem, node.ptr),
            1 if config.active_swaps_only else 0,
        )
        if restricted and counters is not None:
            counters["swaps_restricted"] = (
                counters.get("swaps_restricted", 0) + restricted
            )
        if not children and has_startable:
            # Redundancy fallback (see expander.expand): regenerate with
            # every action treated as fresh so the node is not a dead
            # end.  Rare — only bounded-queue searches reach it — so the
            # python path is fine.  ``counters=None``: the C call above
            # already accounted the restricted SWAPs.
            gates, swaps = startable_actions(problem, node, config, None)
            all_startable = frozenset(gates) | frozenset(swaps)
            parent_eff = node.mapping_after_swaps()
            startable_pairs = [
                (a, _action_mask(problem, node, a))
                for a in list(gates) + list(swaps)
            ]
            masks = dict(startable_pairs)
            fallback_sets = [
                s for s, _m in _enumerate_masked(
                    [(a, m, True) for a, m in startable_pairs],
                    config.max_swaps_per_step, frozenset(),
                    include_empty=False,
                )
            ]
            for action_set in fallback_sets:
                child = apply_action_set(
                    problem, node, action_set, all_startable,
                    masks=masks, parent_eff=parent_eff,
                )
                if child is not None:
                    children.append(child)
        return children

    def profile(self, problem: MappingProblem, node: SearchNode):
        cached = node._profile
        if cached is not None:
            return cached
        profile = self._ck.profile(
            self._packed(problem), node.time, node.inflight, node.pos
        )
        node._profile = profile
        return profile
