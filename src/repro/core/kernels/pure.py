"""The ``pure`` backend: the python reference implementations.

This is :class:`~repro.core.kernels.api.KernelBackend` unchanged — the
bit-identical baseline every other backend is validated against.
"""

from __future__ import annotations

from .api import KernelBackend


class PureBackend(KernelBackend):
    name = "pure"
