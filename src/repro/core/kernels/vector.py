"""The ``vector`` backend: numpy batch evaluation of the heuristic.

Scores a whole expansion fan-out in one shot: nodes are grouped by
``ptr`` (same pending-gate rows), the per-qubit ``head``/``load``
recurrences run as ``(batch, num_logical)`` int64 arrays, and the
SWAP-split minimization is evaluated in closed form over the same ≤6
candidate splits the scalar code uses — all in integer arithmetic, so
values are bit-identical to the pure path (numpy ``//`` floors exactly
like python's).

Batching only pays when the fan-out amortizes array setup: batches (or
ptr groups) smaller than the thresholds below fall back to the pure
per-node path, as do windowed evaluations (the practical mapper's
truncated lookahead is set-building-bound, not arithmetic-bound).
"""

from __future__ import annotations

from typing import List, Optional

from ..heuristic import heuristic_cost
from ..problem import MappingProblem
from ..state import K_SWAP, SearchNode
from .api import KernelBackend

#: Below these sizes the numpy path costs more than it saves (typical
#: exact-search fan-outs admit only a handful of children).
_MIN_BATCH = 8
_MIN_GROUP = 4


def _split_delay_vec(np, d, s1, s2, swap_len):
    """Vectorized :func:`~repro.core.heuristic._swap_split_delay`.

    ``d <= 1`` rows (including unplaced operands mapped to ``d = 1``)
    land on the zero-delay plateau: slacks are non-negative by the
    head/load invariant, so ``s1//L + s2//L >= k`` holds for ``k <= 0``.
    """
    k = d - 1
    q1 = s1 // swap_len
    q2 = s2 // swap_len
    plateau = (q1 + q2) >= k
    crossing = (k * swap_len + s1 - s2) // (2 * swap_len)
    cands = np.stack((np.zeros_like(k), k, crossing, crossing + 1, q1, k - q2))
    cands = np.clip(cands, 0, np.maximum(k, 0))
    delay1 = np.maximum(cands * swap_len - s1, 0)
    delay2 = np.maximum((k - cands) * swap_len - s2, 0)
    best = np.maximum(delay1, delay2).min(axis=0)
    return np.where(plateau, 0, best)


class VectorBackend(KernelBackend):
    name = "vector"

    def __init__(self) -> None:
        import numpy

        self._np = numpy

    def _dist_array(self, problem: MappingProblem):
        dist = getattr(problem, "_np_dist", None)
        if dist is None:
            dist = self._np.asarray(problem.dist_flat, dtype=self._np.int64)
            problem._np_dist = dist
        return dist

    def _eval_nodes(
        self,
        problem: MappingProblem,
        nodes: List[SearchNode],
        window: Optional[int],
        swap_aware: bool,
    ) -> List[int]:
        if window is not None or len(nodes) < _MIN_BATCH:
            return super()._eval_nodes(problem, nodes, window, swap_aware)
        groups = {}
        for index, node in enumerate(nodes):
            groups.setdefault(node.ptr, []).append(index)
        out: List[int] = [0] * len(nodes)
        for ptr, indices in groups.items():
            rows = problem.pending_rows(ptr)
            if len(indices) < _MIN_GROUP or not rows:
                for i in indices:
                    out[i] = heuristic_cost(
                        problem, nodes[i], swap_aware=swap_aware
                    )
                continue
            values = self._eval_group(
                problem, [nodes[i] for i in indices], rows, swap_aware
            )
            for i, value in zip(indices, values):
                out[i] = value
        return out

    def _eval_group(self, problem, nodes, rows, swap_aware):
        np = self._np
        batch = len(nodes)
        num_logical = problem.num_logical
        head = np.zeros((batch, num_logical), dtype=np.int64)
        load = np.zeros((batch, num_logical), dtype=np.int64)
        h = np.zeros(batch, dtype=np.int64)
        posm = np.empty((batch, num_logical), dtype=np.int64)
        gate_qubits = problem.gate_qubits

        # Per-node in-flight prologue: tiny tuples, scalar python wins.
        for bi, node in enumerate(nodes):
            time = node.time
            inflight = node.inflight
            if inflight:
                hrow = head[bi]
                lrow = load[bi]
                inv_after = list(node.inv)
                best = 0
                for finish, kind, a, b in inflight:
                    remaining = finish - time
                    if remaining > best:
                        best = remaining
                    if kind == K_SWAP:
                        l1, l2 = inv_after[a], inv_after[b]
                        inv_after[a], inv_after[b] = l2, l1
                        if l1 >= 0:
                            hrow[l1] = remaining
                            lrow[l1] = remaining
                        if l2 >= 0:
                            hrow[l2] = remaining
                            lrow[l2] = remaining
                    else:
                        for logical in gate_qubits[a]:
                            hrow[logical] = remaining
                            lrow[logical] = remaining
                h[bi] = best
                posm[bi] = node.mapping_after_swaps()[0]
            else:
                posm[bi] = node.pos

        dist = self._dist_array(problem)
        num_physical = problem.num_physical
        swap_len = problem.swap_len
        use_swap = swap_aware and swap_len > 0
        has_singles = problem.has_singles
        single_prefix = problem.single_prefix
        chain_i = list(nodes[0].ptr) if has_singles else None

        for l1, l2, length, p1c, p2c in rows:
            if has_singles:
                # ptr is group-shared, so the singles-fold runs are
                # scalars applied to whole columns.
                ci = chain_i[l1]
                if p1c > ci:
                    prefix = single_prefix[l1]
                    run = prefix[p1c] - prefix[ci]
                    if run:
                        head[:, l1] += run
                        load[:, l1] += run
                chain_i[l1] = p1c + 1
                ci = chain_i[l2]
                if p2c > ci:
                    prefix = single_prefix[l2]
                    run = prefix[p2c] - prefix[ci]
                    if run:
                        head[:, l2] += run
                        load[:, l2] += run
                chain_i[l2] = p2c + 1
            u = np.maximum(head[:, l1], head[:, l2])
            if use_swap:
                p1 = posm[:, l1]
                p2 = posm[:, l2]
                valid = (p1 >= 0) & (p2 >= 0)
                index = np.where(valid, p1 * num_physical + p2, 0)
                d = np.where(valid, dist[index], 1)
                u = u + _split_delay_vec(
                    np, d, u - load[:, l1], u - load[:, l2], swap_len
                )
            end = u + length
            head[:, l1] = end
            head[:, l2] = end
            load[:, l1] += length
            load[:, l2] += length
            np.maximum(h, end, out=h)

        if has_singles:
            seq = problem.seq
            for logical in range(num_logical):
                prefix = single_prefix[logical]
                tail = prefix[len(seq[logical])] - prefix[chain_i[logical]]
                if tail:
                    np.maximum(h, head[:, logical] + tail, out=h)
        return [int(value) for value in h]
