"""Preprocessed mapping-problem instance shared by the search components.

Bundles the circuit, architecture and latency model together with the
derived structures every search step needs: per-logical-qubit gate chains
(the dependency DAG of Fig. 7 in per-qubit form), per-gate latencies, and
the architecture's distance matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency


class MappingProblem:
    """An instance of the qubit-mapping problem.

    Attributes:
        circuit: The logical input circuit.
        coupling: The hardware coupling graph.
        latency: Gate latency model.
        num_logical: Number of logical qubits.
        num_physical: Number of physical qubits (``>= num_logical``).
        gate_qubits: Per-gate operand tuples.
        gate_latency: Per-gate latency in cycles.
        swap_len: Latency of an inserted SWAP.
        seq: ``seq[l]`` lists the gate indices touching logical qubit ``l``
            in program order.
        gate_pos: ``gate_pos[g][l]`` is the position of gate ``g`` within
            ``seq[l]``.
        dist: All-pairs physical shortest-path distances.
    """

    def __init__(
        self,
        circuit: Circuit,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if circuit.num_qubits > coupling.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} logical qubits but "
                f"{coupling.name or 'architecture'} has only "
                f"{coupling.num_qubits} physical qubits"
            )
        self.circuit = circuit
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.num_logical = circuit.num_qubits
        self.num_physical = coupling.num_qubits
        self.gate_qubits: Tuple[Tuple[int, ...], ...] = tuple(
            g.qubits for g in circuit
        )
        self.gate_latency: Tuple[int, ...] = tuple(
            self.latency.gate_latency(g) for g in circuit
        )
        self.swap_len: int = self.latency.swap_latency()
        self.num_gates = len(circuit)

        self.seq: List[List[int]] = [[] for _ in range(self.num_logical)]
        self.gate_pos: List[Dict[int, int]] = []
        for index, qubits in enumerate(self.gate_qubits):
            positions: Dict[int, int] = {}
            for q in qubits:
                positions[q] = len(self.seq[q])
                self.seq[q].append(index)
            self.gate_pos.append(positions)

        # suffix_load[l][i] = total latency of seq[l][i:] — a qubit must
        # run its remaining gates serially, so this is a cheap O(1) lower
        # bound on its remaining busy time (used to keep the truncated
        # practical-mode cost comparable across progress levels).
        self.suffix_load: List[List[int]] = []
        for logical in range(self.num_logical):
            suffix = [0] * (len(self.seq[logical]) + 1)
            for i in range(len(self.seq[logical]) - 1, -1, -1):
                suffix[i] = suffix[i + 1] + self.gate_latency[self.seq[logical][i]]
            self.suffix_load.append(suffix)

        self.dist = coupling.distance_matrix
        self.edges = coupling.edges
        self.neighbors = [coupling.neighbors(p) for p in range(self.num_physical)]

    def ideal_depth(self) -> int:
        """Depth on an all-to-all architecture (cost lower bound)."""
        return self.circuit.depth(self.latency)

    def trivial_mapping(self) -> Tuple[int, ...]:
        """The identity initial mapping (logical ``l`` on physical ``l``)."""
        return tuple(range(self.num_logical))

    def is_gate_started(self, gate_index: int, ptr: Tuple[int, ...]) -> bool:
        """True when ``gate_index`` has been scheduled under pointers ``ptr``.

        ``ptr[l]`` is the per-qubit count of scheduled gates; a gate is
        started once the pointer of (any of) its operand qubits has moved
        past it — the expander bumps all operand pointers atomically.
        """
        qubit = self.gate_qubits[gate_index][0]
        return ptr[qubit] > self.gate_pos[gate_index][qubit]
