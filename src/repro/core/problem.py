"""Preprocessed mapping-problem instance shared by the search components.

Bundles the circuit, architecture and latency model together with the
derived structures every search step needs: per-logical-qubit gate chains
(the dependency DAG of Fig. 7 in per-qubit form), per-gate latencies, and
the architecture's distance matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency

#: Cap on the per-problem memo dictionaries (``_pending_rows``,
#: ``_active_masks``, and the compiled kernel's row cache).  A safety
#: valve for enormous runs: past the cap the caches stop admitting new
#: entries and count the overflow instead of growing without bound.
PROBLEM_CACHE_CAP = 32768


class MappingProblem:
    """An instance of the qubit-mapping problem.

    Attributes:
        circuit: The logical input circuit.
        coupling: The hardware coupling graph.
        latency: Gate latency model.
        num_logical: Number of logical qubits.
        num_physical: Number of physical qubits (``>= num_logical``).
        gate_qubits: Per-gate operand tuples.
        gate_latency: Per-gate latency in cycles.
        swap_len: Latency of an inserted SWAP.
        seq: ``seq[l]`` lists the gate indices touching logical qubit ``l``
            in program order.
        gate_pos: ``gate_pos[g][l]`` is the position of gate ``g`` within
            ``seq[l]``.
        dist: All-pairs physical shortest-path distances (2-D, row per
            physical qubit).
        dist_flat: The same matrix flattened row-major into one tuple;
            ``dist_flat[p * num_physical + q] == dist[p][q]``.  The search
            hot paths use this single-index form.
        gate_l1 / gate_l2: Flat per-gate operand arrays; ``gate_l2[g]`` is
            ``-1`` for single-qubit gates.  Avoids tuple unpacking in the
            heuristic's inner loop.
        gate_p1 / gate_p2: Flat per-gate chain positions of the gate within
            ``seq[gate_l1[g]]`` / ``seq[gate_l2[g]]`` (``-1`` when absent).
        gate_next: ``gate_next[g]`` — per-operand successor gate index on
            each operand's chain (``-1`` past the chain end), aligned with
            ``gate_qubits[g]``.
        own2: ``own2[l]`` — the two-qubit gates *owned* by logical ``l``
            (a gate is owned by its first operand), in program order.
            Every two-qubit gate appears in exactly one owner list, so the
            pending two-qubit gates under pointers ``ptr`` are exactly the
            merge of the per-owner suffixes ``own2[l][own2_start[l][ptr[l]]:]``
            — already-sorted runs, no set building required.
        own2_start: ``own2_start[l][p]`` — index into ``own2[l]`` of the
            first owned gate whose chain position is ``>= p``.
        single_prefix: ``single_prefix[l][i]`` — total latency of the
            single-qubit gates among ``seq[l][:i]``.  Because every gate at
            chain position ``>= ptr[l]`` is pending and two-qubit gates are
            enumerated explicitly, any chain segment between consecutive
            pending two-qubit gates is all singles, and its latency is one
            subtraction of prefix sums.
        pending_total: ``pending_total[l][p]`` — number of gates owned by
            ``l`` (counting single-qubit gates, which are owned by their
            only operand) at chain positions ``>= p``; summing over ``l``
            counts the distinct pending gates without materializing them.
    """

    def __init__(
        self,
        circuit: Circuit,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if circuit.num_qubits > coupling.num_qubits:
            raise ValueError(
                f"circuit has {circuit.num_qubits} logical qubits but "
                f"{coupling.name or 'architecture'} has only "
                f"{coupling.num_qubits} physical qubits"
            )
        self.circuit = circuit
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.num_logical = circuit.num_qubits
        self.num_physical = coupling.num_qubits
        self.gate_qubits: Tuple[Tuple[int, ...], ...] = tuple(
            g.qubits for g in circuit
        )
        self.gate_latency: Tuple[int, ...] = tuple(
            self.latency.gate_latency(g) for g in circuit
        )
        self.swap_len: int = self.latency.swap_latency()
        self.num_gates = len(circuit)

        self.seq: List[List[int]] = [[] for _ in range(self.num_logical)]
        self.gate_pos: List[Dict[int, int]] = []
        for index, qubits in enumerate(self.gate_qubits):
            positions: Dict[int, int] = {}
            for q in qubits:
                positions[q] = len(self.seq[q])
                self.seq[q].append(index)
            self.gate_pos.append(positions)

        # suffix_load[l][i] = total latency of seq[l][i:] — a qubit must
        # run its remaining gates serially, so this is a cheap O(1) lower
        # bound on its remaining busy time (used to keep the truncated
        # practical-mode cost comparable across progress levels).
        self.suffix_load: List[List[int]] = []
        for logical in range(self.num_logical):
            suffix = [0] * (len(self.seq[logical]) + 1)
            for i in range(len(self.seq[logical]) - 1, -1, -1):
                suffix[i] = suffix[i + 1] + self.gate_latency[self.seq[logical][i]]
            self.suffix_load.append(suffix)

        self.dist = coupling.distance_matrix
        # The flattened matrix only depends on the coupling graph, so it
        # is memoized on the graph instance: every problem sharing the
        # architecture (e.g. a corpus sweep) reuses one tuple.
        flat = getattr(coupling, "_dist_flat", None)
        if flat is None:
            flat = tuple(d for row in self.dist for d in row)
            coupling._dist_flat = flat
        self.dist_flat: Tuple[int, ...] = flat
        self.edges = coupling.edges
        self.neighbors = [coupling.neighbors(p) for p in range(self.num_physical)]

        # Flat per-gate operand/position arrays for the heuristic hot loop.
        gate_l1, gate_l2, gate_p1, gate_p2 = [], [], [], []
        for index, qubits in enumerate(self.gate_qubits):
            l1 = qubits[0]
            l2 = qubits[1] if len(qubits) > 1 else -1
            gate_l1.append(l1)
            gate_l2.append(l2)
            gate_p1.append(self.gate_pos[index][l1])
            gate_p2.append(self.gate_pos[index][l2] if l2 >= 0 else -1)
        self.gate_l1: Tuple[int, ...] = tuple(gate_l1)
        self.gate_l2: Tuple[int, ...] = tuple(gate_l2)
        self.gate_p1: Tuple[int, ...] = tuple(gate_p1)
        self.gate_p2: Tuple[int, ...] = tuple(gate_p2)
        #: One row per gate for the heuristic's inner loop:
        #: ``(l1, l2, latency, chain_pos1, chain_pos2)`` — one tuple
        #: unpack instead of five indexed lookups.
        self.gate_row: Tuple[Tuple[int, int, int, int, int], ...] = tuple(
            (gate_l1[g], gate_l2[g], self.gate_latency[g],
             gate_p1[g], gate_p2[g])
            for g in range(self.num_gates)
        )
        #: True when the circuit contains single-qubit gates; all-two-qubit
        #: circuits skip the single-run folding bookkeeping entirely.
        self.has_singles: bool = any(
            len(qubits) == 1 for qubits in self.gate_qubits
        )
        #: Closed-form SWAP-split cache (see ``heuristic._swap_split_delay``),
        #: keyed ``(d << 28) | (slack1 << 14) | slack2`` — per-problem so the
        #: constant ``swap_len`` stays out of the key.
        self.split_lut: Dict[int, int] = {}
        #: ``ptr -> tuple of gate_row entries`` cache for the heuristic:
        #: the pending two-qubit gates (and their operand rows) depend
        #: only on the pointer vector, which far fewer distinct values
        #: take than there are generated nodes.
        self._pending_rows: Dict[Tuple[int, ...], Tuple] = {}
        #: ``(pos, ptr) -> active-position bitmask`` cache for the
        #: expander's SWAP-candidate restriction (see
        #: :meth:`active_swap_mask`); capped like ``_pending_rows``.
        self._active_masks: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}
        #: Per-cache count of entries dropped because the cache hit
        #: :data:`PROBLEM_CACHE_CAP` — surfaced in search stats as
        #: ``problem_cache_overflow`` instead of silently stop-filling.
        self.cache_overflows: Dict[str, int] = {}

        # Per-gate successors along each operand chain.
        self.gate_next: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                self.seq[q][self.gate_pos[index][q] + 1]
                if self.gate_pos[index][q] + 1 < len(self.seq[q])
                else -1
                for q in qubits
            )
            for index, qubits in enumerate(self.gate_qubits)
        )

        # Owner-run structures: every two-qubit gate is owned by its first
        # operand, single-qubit gates by their only operand.  The pending
        # set under any pointer vector is then a union of per-owner chain
        # suffixes — disjoint, precomputed, and already in program order.
        self.own2: List[Tuple[int, ...]] = []
        self.own2_start: List[Tuple[int, ...]] = []
        self.single_prefix: List[Tuple[int, ...]] = []
        self.pending_total: List[Tuple[int, ...]] = []
        owned2_pos: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.num_logical)
        ]
        owned_any: List[List[int]] = [[] for _ in range(self.num_logical)]
        for index, qubits in enumerate(self.gate_qubits):
            owner = qubits[0]
            owned_any[owner].append(self.gate_pos[index][owner])
            if len(qubits) > 1:
                owned2_pos[owner].append((self.gate_pos[index][owner], index))
        for logical in range(self.num_logical):
            chain = self.seq[logical]
            chain_len = len(chain)
            pairs = owned2_pos[logical]  # built in program order
            self.own2.append(tuple(g for _p, g in pairs))
            start = [0] * (chain_len + 1)
            cursor = 0
            for p in range(chain_len + 1):
                while cursor < len(pairs) and pairs[cursor][0] < p:
                    cursor += 1
                start[p] = cursor
            self.own2_start.append(tuple(start))
            prefix = [0] * (chain_len + 1)
            for i, gate in enumerate(chain):
                lat = self.gate_latency[gate]
                prefix[i + 1] = prefix[i] + (
                    lat if len(self.gate_qubits[gate]) == 1 else 0
                )
            self.single_prefix.append(tuple(prefix))
            owned_positions = owned_any[logical]
            total = [0] * (chain_len + 1)
            cursor = 0
            for p in range(chain_len + 1):
                while cursor < len(owned_positions) and owned_positions[cursor] < p:
                    cursor += 1
                total[p] = len(owned_positions) - cursor
            self.pending_total.append(tuple(total))

    def pending_two_qubit_gates(self, ptr: Tuple[int, ...]) -> List[int]:
        """Pending (unstarted) two-qubit gate indices, in program order.

        Merges the precomputed per-owner suffix runs instead of building
        and sorting a set: each run is ascending and the runs are
        disjoint, so one Timsort pass over the concatenation is a pure
        run merge.
        """
        pending: List[int] = []
        own2 = self.own2
        own2_start = self.own2_start
        for logical in range(self.num_logical):
            start = own2_start[logical][ptr[logical]]
            run = own2[logical]
            if start < len(run):
                pending.extend(run[start:])
        pending.sort()
        return pending

    def pending_rows(self, ptr: Tuple[int, ...]) -> Tuple:
        """``gate_row`` entries of the pending two-qubit gates under ``ptr``.

        Program order, cached per pointer vector: the heuristic evaluates
        many nodes that share scheduling progress but differ in mapping,
        and the pending enumeration only depends on ``ptr``.  The cache
        is capped at :data:`PROBLEM_CACHE_CAP` vectors as a safety valve
        for enormous runs; overflow is counted in ``cache_overflows``.
        """
        cache = self._pending_rows
        rows = cache.get(ptr)
        if rows is None:
            gate_row = self.gate_row
            rows = tuple(
                gate_row[g] for g in self.pending_two_qubit_gates(ptr)
            )
            if len(cache) < PROBLEM_CACHE_CAP:
                cache[ptr] = rows
            else:
                self.note_cache_overflow("pending_rows")
        return rows

    def active_swap_mask(
        self, pos: Tuple[int, ...], ptr: Tuple[int, ...]
    ) -> int:
        """Bitmask of *active* physical qubits under ``(pos, ptr)``.

        A physical qubit is active when it holds an operand of a pending
        two-qubit gate, or lies on **any** shortest path between the two
        operand positions of such a gate (``dist(a, r) + dist(r, b) ==
        dist(a, b)`` over the 1-D distance table).  SWAPs incident to no
        active qubit only rearrange bystander qubits — qubits with no
        pending two-qubit interaction, whose positions block no pending
        route — and can therefore never shorten a schedule: every pending
        operand can already reach any position through SWAPs incident to
        its own (active) position, and a SWAP costs the same whether the
        stepped-onto position is occupied or free.

        Cached per ``(pos, ptr)``: many generated nodes share both the
        mapping and the progress vector (they differ in timing only), and
        the cache is capped as a safety valve for enormous runs.

        Returns ``-1`` (all qubits active) when any pending operand is
        still unplaced — the restriction is only meaningful once every
        interacting qubit has a position.
        """
        key = (pos, ptr)
        cache = self._active_masks
        mask = cache.get(key)
        if mask is not None:
            return mask
        mask = 0
        dist_flat = self.dist_flat
        num_physical = self.num_physical
        seen_pairs = set()
        for l1, l2, _length, _p1c, _p2c in self.pending_rows(ptr):
            p1, p2 = pos[l1], pos[l2]
            if p1 < 0 or p2 < 0:
                return -1  # unplaced operand: no sound restriction
            pair = (p1, p2) if p1 < p2 else (p2, p1)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            mask |= (1 << p1) | (1 << p2)
            row1 = p1 * num_physical
            row2 = p2 * num_physical
            d = dist_flat[row1 + p2]
            if d > 1:
                for r in range(num_physical):
                    if dist_flat[row1 + r] + dist_flat[row2 + r] == d:
                        mask |= 1 << r
        if len(cache) < PROBLEM_CACHE_CAP:
            cache[key] = mask
        else:
            self.note_cache_overflow("active_masks")
        return mask

    def note_cache_overflow(self, name: str) -> None:
        """Record one entry refused by a capped per-problem cache."""
        self.cache_overflows[name] = self.cache_overflows.get(name, 0) + 1

    def cache_overflow_total(self) -> int:
        """Total entries refused across all capped per-problem caches."""
        return sum(self.cache_overflows.values())

    def num_pending_gates(self, ptr: Tuple[int, ...]) -> int:
        """Distinct pending gates under ``ptr`` (singles included), O(L)."""
        pending_total = self.pending_total
        return sum(
            pending_total[logical][ptr[logical]]
            for logical in range(self.num_logical)
        )

    def ideal_depth(self) -> int:
        """Depth on an all-to-all architecture (cost lower bound)."""
        return self.circuit.depth(self.latency)

    def trivial_mapping(self) -> Tuple[int, ...]:
        """The identity initial mapping (logical ``l`` on physical ``l``)."""
        return tuple(range(self.num_logical))

    def is_gate_started(self, gate_index: int, ptr: Tuple[int, ...]) -> bool:
        """True when ``gate_index`` has been scheduled under pointers ``ptr``.

        ``ptr[l]`` is the per-qubit count of scheduled gates; a gate is
        started once the pointer of (any of) its operand qubits has moved
        past it — the expander bumps all operand pointers atomically.
        """
        qubit = self.gate_qubits[gate_index][0]
        return ptr[qubit] > self.gate_pos[gate_index][qubit]
