"""Mapping results: cycle-accurate schedules of transformed circuits.

Every mapper in this library — the optimal TOQM search, the practical
heuristic variant, and all baselines — returns a :class:`MappingResult`:
the initial logical→physical mapping plus a list of :class:`ScheduledOp`
(original gates and inserted SWAPs) with explicit start cycles.  The result's
``depth`` is the paper's *cycle* metric: the finish time of the last gate of
the whole transformed circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.gate import Gate, SWAP_NAME
from ..circuit.latency import LatencyModel


@dataclass(frozen=True)
class ScheduledOp:
    """One operation in the transformed circuit with explicit timing.

    Attributes:
        gate_index: Index of the original gate in the input circuit, or
            ``None`` for an inserted SWAP.
        name: Gate mnemonic (``"swap"`` for inserted SWAPs).
        logical_qubits: Logical operands at execution time (for an inserted
            SWAP, the two logical qubits whose states it exchanges; a dummy
            slot is ``-1`` when a SWAP moves an unused physical qubit).
        physical_qubits: Physical qubits the operation runs on.
        start: Start cycle (0-based).
        duration: Latency in cycles.
    """

    gate_index: Optional[int]
    name: str
    logical_qubits: Tuple[int, ...]
    physical_qubits: Tuple[int, ...]
    start: int
    duration: int

    @property
    def end(self) -> int:
        """First cycle after the operation completes."""
        return self.start + self.duration

    @property
    def is_inserted_swap(self) -> bool:
        """True for SWAPs added by the mapper (not in the input circuit)."""
        return self.gate_index is None

    def __str__(self) -> str:
        phys = ",".join(f"Q{p}" for p in self.physical_qubits)
        logical = ",".join(
            "·" if q < 0 else f"q{q}" for q in self.logical_qubits
        )
        tag = "SWAP" if self.is_inserted_swap else self.name
        return f"[{self.start:>4}..{self.end:>4}) {tag:<6} {phys} ({logical})"


@dataclass
class MappingResult:
    """A transformed, hardware-compliant circuit with its schedule.

    Attributes:
        circuit: The original logical circuit.
        coupling: Target architecture.
        latency: Latency model the schedule was computed under.
        initial_mapping: ``initial_mapping[l]`` is the physical qubit the
            logical qubit ``l`` starts on.
        ops: Scheduled operations sorted by start cycle.
        depth: Total cycles of the transformed circuit (max op end).
        optimal: True when produced by the exact search (Section 5).
        stats: Mapper-specific counters (nodes expanded, pruned, ...).
    """

    circuit: Circuit
    coupling: CouplingGraph
    latency: LatencyModel
    initial_mapping: Tuple[int, ...]
    ops: List[ScheduledOp]
    depth: int
    optimal: bool = False
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def num_inserted_swaps(self) -> int:
        """Number of SWAP gates the mapper inserted."""
        return sum(1 for op in self.ops if op.is_inserted_swap)

    @property
    def ideal_depth(self) -> int:
        """Depth of the original circuit on an all-to-all architecture."""
        return self.circuit.depth(self.latency)

    def final_mapping(self) -> Tuple[int, ...]:
        """Logical→physical mapping after all *inserted* SWAPs complete.

        A SWAP gate that was part of the input circuit is a computational
        operation on two logical qubits (it exchanges their states, not
        their homes), so only mapper-inserted SWAPs move logical qubits.
        """
        position = list(self.initial_mapping)
        inverse: Dict[int, int] = {p: l for l, p in enumerate(position)}
        for op in sorted(self.ops, key=lambda o: o.end):
            if op.is_inserted_swap:
                p, q = op.physical_qubits
                lp, lq = inverse.get(p, -1), inverse.get(q, -1)
                if lp >= 0:
                    position[lp] = q
                if lq >= 0:
                    position[lq] = p
                inverse[p], inverse[q] = lq, lp
        return tuple(position)

    def to_physical_circuit(self) -> Circuit:
        """The transformed circuit on physical qubits, in start order.

        Ties in start cycle are broken by physical qubit index, which keeps
        the output deterministic.  The result is a plain :class:`Circuit`
        over ``coupling.num_qubits`` qubits whose two-qubit gates all lie
        on coupling edges.
        """
        physical = Circuit(
            self.coupling.num_qubits,
            name=f"{self.circuit.name}@{self.coupling.name}",
        )
        for op in sorted(self.ops, key=lambda o: (o.start, o.physical_qubits)):
            if op.gate_index is not None:
                template = self.circuit[op.gate_index]
                physical.append(template.on(*op.physical_qubits))
            else:
                physical.append(Gate(SWAP_NAME, op.physical_qubits))
        return physical

    def describe(self, max_ops: int = 60) -> str:
        """Human-readable multi-line summary of the schedule."""
        lines = [
            f"circuit  : {self.circuit.name or '<unnamed>'} "
            f"({self.circuit.num_qubits} qubits, {len(self.circuit)} gates)",
            f"arch     : {self.coupling.name} "
            f"({self.coupling.num_qubits} qubits)",
            f"depth    : {self.depth} cycles "
            f"(ideal {self.ideal_depth}, "
            f"{'optimal' if self.optimal else 'heuristic'})",
            f"swaps    : {self.num_inserted_swaps} inserted",
            f"mapping  : "
            + " ".join(
                f"q{l}->Q{p}" for l, p in enumerate(self.initial_mapping)
            ),
        ]
        shown = self.ops[:max_ops]
        lines += [str(op) for op in shown]
        if len(self.ops) > max_ops:
            lines.append(f"... ({len(self.ops) - max_ops} more ops)")
        return "\n".join(lines)
