"""Search-node representation (the paper's circuit *states*, Section 4.1).

A node captures the circuit's state at a cycle: the logical→physical
mapping, per-qubit scheduling progress, and the busy/idle status of every
qubit — for busy qubits, which action is executing and when it finishes.

The search advances between *event times* (cycles where some in-flight
action finishes): in any schedule normalized so no action can start one
cycle earlier, actions only ever start at cycle 0 or at a finish event
(DESIGN.md §4), so expanding at event times explores exactly the paper's
cycle-by-cycle space without materializing idle intermediate nodes.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

#: An action: ``("g", gate_index)`` starts an original gate, ``("s", p, q)``
#: starts an inserted SWAP on physical qubits ``p < q``.
Action = Tuple

#: An in-flight item: ``(finish_cycle, kind, a, b)`` where ``kind`` is
#: ``K_GATE`` (``a`` = gate index, ``b`` = 0) or ``K_SWAP`` (``a, b`` =
#: physical qubits).
K_GATE = 0
K_SWAP = 1


class SearchNode:
    """One state in the search graph.

    Attributes:
        time: Current cycle (the node's ``g(v)`` cost once past the free
            initial-mapping prefix).
        pos: ``pos[l]`` — physical position of logical qubit ``l``
            (``-1`` when the heuristic mapper has not yet placed it).
        inv: ``inv[p]`` — logical qubit on physical ``p`` (``-1`` if free).
        ptr: per-logical-qubit count of already-started gates.
        started: number of original gates started (progress measure).
        inflight: sorted tuple of in-flight items (see module docstring).
        last_swaps: physical pairs whose SWAP just completed with no later
            action touching either qubit — an identical SWAP would cancel
            it (the expander's cyclic-SWAP redundancy check).
        prev_startable: actions startable at the parent's decision point
            and compatible with the parent's chosen set — a child starting
            only such actions is redundant (Section 4.2, Redundancy).
        parent: parent node (``None`` at the root).
        actions: the action set this node's creation started, at cycle
            ``parent.time``.
        prefix_layers: number of free initial-mapping SWAP layers consumed
            (Section 5.3 mode 2); ``-1`` once real scheduling has begun.
        h: heuristic cost-to-go; ``f = time + h``.
        killed: set when a dominating node made this one obsolete.
        dropped: set when the practical mapper removes the node from its
            open list (trim or expansion); dropped nodes no longer count
            for equivalence/dominance filtering, so bounded-queue searches
            cannot starve themselves by blacklisting trimmed states.

    Derived-value caches (lazy, hot-path): ``_eff`` memoizes
    :meth:`mapping_after_swaps`, ``_fkey`` the filter key, ``_mkey``
    the heuristic memo key (:func:`~repro.core.heuristic.memo_key`),
    ``_profile`` the per-physical-qubit release profile the state filter
    computes, and ``_frontier`` the dependency-ready gate list.  All are invalidated by
    :meth:`invalidate_caches` when the practical mapper mutates ``pos`` /
    ``inv`` in place during on-the-fly placement.  ``_tid`` is the lazy
    trace id :meth:`repro.obs.trace.TraceRecorder.node_id` assigns
    (``-1`` = unassigned; survives cache invalidation — identity, not a
    derived value).
    """

    __slots__ = (
        "time",
        "pos",
        "inv",
        "ptr",
        "started",
        "inflight",
        "last_swaps",
        "prev_startable",
        "parent",
        "actions",
        "prefix_layers",
        "h",
        "f",
        "killed",
        "dropped",
        "_eff",
        "_fkey",
        "_mkey",
        "_profile",
        "_frontier",
        "_tid",
    )

    def __init__(
        self,
        time: int,
        pos: Tuple[int, ...],
        inv: Tuple[int, ...],
        ptr: Tuple[int, ...],
        started: int,
        inflight: Tuple[Tuple[int, int, int, int], ...],
        last_swaps: FrozenSet[Tuple[int, int]],
        prev_startable: FrozenSet[Action],
        parent: Optional["SearchNode"],
        actions: Tuple[Action, ...],
        prefix_layers: int = -1,
    ) -> None:
        self.time = time
        self.pos = pos
        self.inv = inv
        self.ptr = ptr
        self.started = started
        self.inflight = inflight
        self.last_swaps = last_swaps
        self.prev_startable = prev_startable
        self.parent = parent
        self.actions = actions
        self.prefix_layers = prefix_layers
        self.h = 0
        self.f = 0
        self.killed = False
        self.dropped = False
        self._eff = None
        self._fkey = None
        self._mkey = None
        self._profile = None
        self._frontier = None
        self._tid = -1

    def invalidate_caches(self) -> None:
        """Drop derived-value caches after in-place ``pos``/``inv`` edits."""
        self._eff = None
        self._fkey = None
        self._mkey = None
        self._profile = None
        # _frontier depends only on ptr/seq, which are never mutated in
        # place, so it deliberately survives placement updates.

    @property
    def in_prefix(self) -> bool:
        """True while the node is still in the free initial-SWAP prefix."""
        return self.prefix_layers >= 0

    def is_terminal(self, total_started: int) -> bool:
        """All gates started and nothing in flight ⇒ circuit finished."""
        return self.started == total_started and not self.inflight

    def busy_physical(self, gate_qubits) -> FrozenSet[int]:
        """Physical qubits currently executing an in-flight action.

        Args:
            gate_qubits: ``problem.gate_qubits`` — needed to resolve the
                physical operands of in-flight original gates (a logical
                qubit cannot move while it is executing, so its current
                ``pos`` is where the gate runs).
        """
        busy = set()
        for _finish, kind, a, b in self.inflight:
            if kind == K_SWAP:
                busy.add(a)
                busy.add(b)
            else:
                for logical in gate_qubits[a]:
                    busy.add(self.pos[logical])
        return frozenset(busy)

    def mapping_after_swaps(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(pos, inv) assuming all in-flight SWAPs have taken effect.

        This is the mapping the filter hashes on (Section 4.2, Filter) and
        the heuristic's π_rem (Section 5.1).  Computed once per node and
        cached — the filter key and the heuristic memo key share it.
        """
        eff = self._eff
        if eff is not None:
            return eff
        if not self.inflight:
            eff = (self.pos, self.inv)
            self._eff = eff
            return eff
        pos = list(self.pos)
        inv = list(self.inv)
        for _finish, kind, a, b in self.inflight:
            if kind == K_SWAP:
                l1, l2 = inv[a], inv[b]
                inv[a], inv[b] = l2, l1
                if l1 >= 0:
                    pos[l1] = b
                if l2 >= 0:
                    pos[l2] = a
        eff = (tuple(pos), tuple(inv))
        self._eff = eff
        return eff

    def filter_key(self) -> Tuple:
        """Hash key for equivalence/dominance grouping (cached)."""
        key = self._fkey
        if key is None:
            _pos, inv = self.mapping_after_swaps()
            key = (inv, self.ptr)
            self._fkey = key
        return key

    def path_actions(self):
        """Yield ``(decision_time, actions, node)`` from the root down."""
        chain = []
        node = self
        while node.parent is not None:
            chain.append(node)
            node = node.parent
        for child in reversed(chain):
            yield child.parent.time, child.actions, child

    def __repr__(self) -> str:
        phase = f" prefix={self.prefix_layers}" if self.in_prefix else ""
        return (
            f"<Node t={self.time} started={self.started} "
            f"inflight={len(self.inflight)} f={self.f}{phase}>"
        )
