"""Per-process architecture warm cache for corpus-scale batch mapping.

A corpus sweep maps hundreds of circuits against the *same* device
(coupling graph + latency model).  Much of the per-task setup cost is
architecture-bound and identical across tasks: the all-pairs distance
matrix and automorphism group of the coupling graph, the SWAP-split LUT
(a function of the latency model only), and — when the same circuit
recurs in a request stream — the whole :class:`MappingProblem` with its
pending-row / active-mask caches and the compiled kernel's packed
capsule.

This module keys those artifacts by an explicit **architecture
fingerprint** (coupling + latency, hashed structurally) so every task a
worker process executes against the same device shares one
:class:`ArchContext`.  Contexts live in a process-level registry: in a
batch worker the first task pays the warm-up and the rest hit.

Sharing is *transparent by construction*: every cached structure is a
pure deterministic function of (circuit, coupling, latency) — caches of
values the search would recompute identically — so warm-cache runs are
bit-identical to cold runs.  The counters exist so the fleet rollup can
prove the cache is actually hitting (see ``obs/export.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.latency import LatencyModel, uniform_latency
from .heuristic import HeuristicMemo
from .problem import MappingProblem

#: Default cap on fully-built ``MappingProblem`` instances retained per
#: context (LRU).  Each problem carries per-circuit caches, so this
#: bounds memory on corpora with many distinct circuits while keeping
#: repeated circuits (the request-stream case) fully warm.
DEFAULT_MAX_PROBLEMS = 64

#: Size past which a retained heuristic memo is discarded and rebuilt
#: rather than reused — bounds each memo at roughly one large run's
#: footprint (the memos hang off LRU-managed problems, so eviction of
#: the problem drops its memos too).
MEMO_TABLE_CAP = 1 << 20


def coupling_fingerprint(coupling: CouplingGraph) -> str:
    """Structural digest of a coupling graph (qubit count + edge set)."""
    payload = f"{coupling.num_qubits}|{sorted(coupling.edges)!r}"
    return hashlib.sha256(payload.encode()).hexdigest()


def latency_fingerprint(latency: LatencyModel) -> str:
    """Structural digest of a latency model (defaults + sorted table)."""
    payload = (
        f"{latency.single_qubit_cycles}|{latency.two_qubit_cycles}|"
        f"{latency.swap_cycles}|{sorted(latency.table.items())!r}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def arch_fingerprint(
    coupling: CouplingGraph, latency: Optional[LatencyModel]
) -> str:
    """Digest identifying one (device, latency model) pair.

    ``latency=None`` resolves to the uniform default exactly as
    :class:`MappingProblem` resolves it, so the fingerprint never
    conflates an explicit model with the implicit default it happens to
    equal — both hash the same resolved structure.
    """
    resolved = latency if latency is not None else uniform_latency()
    payload = coupling_fingerprint(coupling) + "/" + latency_fingerprint(resolved)
    return hashlib.sha256(payload.encode()).hexdigest()


def circuit_fingerprint(circuit: Circuit) -> str:
    """Structural digest of a circuit (qubit count + full gate list)."""
    digest = hashlib.sha256()
    digest.update(str(circuit.num_qubits).encode())
    for gate in circuit:
        digest.update(
            f"|{gate.name}:{gate.qubits!r}:{gate.params!r}".encode()
        )
    return digest.hexdigest()


class ArchContext:
    """Shared per-device artifacts plus an LRU of built problems.

    Attributes:
        coupling / latency: The canonical device pair every cached
            problem is built against.
        split_lut: One SWAP-split LUT shared by every problem in the
            context (the split delay depends only on the latency model's
            ``swap_len``, never on the circuit).
        problem_hits / problem_misses / problem_evictions: LRU counters.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
        max_problems: int = DEFAULT_MAX_PROBLEMS,
    ) -> None:
        self.coupling = coupling
        self.latency = latency if latency is not None else uniform_latency()
        self.fingerprint = arch_fingerprint(coupling, self.latency)
        self.max_problems = max_problems
        self.split_lut: Dict[int, int] = {}
        self._problems: "OrderedDict[str, MappingProblem]" = OrderedDict()
        self.problem_hits = 0
        self.problem_misses = 0
        self.problem_evictions = 0
        # Pay the architecture-bound warm-up once, up front: the
        # distance matrix is built by CouplingGraph.__init__, the
        # automorphism group and flattened distance table are memoized
        # on the graph instance by their first use.
        coupling.automorphisms()
        if getattr(coupling, "_dist_flat", None) is None:
            coupling._dist_flat = tuple(
                d for row in coupling.distance_matrix for d in row
            )

    def problem(self, circuit: Circuit) -> MappingProblem:
        """The shared :class:`MappingProblem` for ``circuit``.

        Hits return the retained instance — pending-row and active-mask
        caches, the compiled kernel's packed capsule and row cache all
        stay warm.  Misses build a fresh problem wired to the shared
        SWAP-split LUT, evicting the least-recently-used entry past
        ``max_problems``.
        """
        key = circuit_fingerprint(circuit)
        cached = self._problems.get(key)
        if cached is not None:
            self.problem_hits += 1
            self._problems.move_to_end(key)
            return cached
        self.problem_misses += 1
        built = MappingProblem(circuit, self.coupling, self.latency)
        built.split_lut = self.split_lut
        self._problems[key] = built
        while len(self._problems) > self.max_problems:
            self._problems.popitem(last=False)
            self.problem_evictions += 1
        return built

    def memo(self, problem: MappingProblem, config_key) -> HeuristicMemo:
        """Persistent heuristic memo for ``(problem, search config)``.

        The memo is a pure evaluation cache keyed on node signatures, so
        repeated maps of the same circuit under the same search
        configuration skip re-evaluating every previously seen state —
        while staying bit-identical (a hit returns exactly the value a
        recomputation would).  ``config_key`` must pin every parameter
        the memo's soundness invariant fixes (window, swap-awareness);
        callers use disjoint key spaces per mapper type.

        Memos hang off the problem instance, so the problem LRU bounds
        their lifetime; a memo that grew past :data:`MEMO_TABLE_CAP` is
        replaced rather than reused.
        """
        pool = getattr(problem, "_warm_memos", None)
        if pool is None:
            pool = {}
            problem._warm_memos = pool
        memo = pool.get(config_key)
        if memo is None or len(memo.table) > MEMO_TABLE_CAP:
            memo = HeuristicMemo()
            pool[config_key] = memo
        return memo

    def counters(self) -> Dict[str, int]:
        """Snapshot of this context's hit/miss/evict counters."""
        return {
            "problem_hits": self.problem_hits,
            "problem_misses": self.problem_misses,
            "problem_evictions": self.problem_evictions,
            "problems_retained": len(self._problems),
        }


class WarmCachePool:
    """A registry of :class:`ArchContext` keyed by architecture fingerprint.

    Distinct coupling-graph *instances* with identical structure resolve
    to the same context — that is the point: batch tasks each unpickle
    their own copy of the architecture, and the fingerprint collapses
    them back onto one shared set of artifacts.

    The batch runner gives every worker process one pool spanning its
    batch lifetime, and the in-process (``max_workers=1``) path a fresh
    pool per call — so sequential reference runs see exactly the warmth
    a fresh worker process would, independent of process history.
    """

    def __init__(self, max_problems: int = DEFAULT_MAX_PROBLEMS) -> None:
        self.max_problems = max_problems
        self._contexts: Dict[str, ArchContext] = {}
        self.arch_hits = 0
        self.arch_misses = 0

    def context(
        self,
        coupling: CouplingGraph,
        latency: Optional[LatencyModel] = None,
    ) -> ArchContext:
        """The shared :class:`ArchContext` for a (device, latency) pair."""
        key = arch_fingerprint(coupling, latency)
        context = self._contexts.get(key)
        if context is not None:
            self.arch_hits += 1
            return context
        self.arch_misses += 1
        context = ArchContext(
            coupling, latency, max_problems=self.max_problems
        )
        self._contexts[key] = context
        return context

    def counters(self) -> Dict[str, int]:
        """Cumulative warm-cache counters across every context."""
        totals = {
            "arch_hits": self.arch_hits,
            "arch_misses": self.arch_misses,
            "problem_hits": 0,
            "problem_misses": 0,
            "problem_evictions": 0,
            "contexts": len(self._contexts),
        }
        for context in self._contexts.values():
            totals["problem_hits"] += context.problem_hits
            totals["problem_misses"] += context.problem_misses
            totals["problem_evictions"] += context.problem_evictions
        return totals

    def reset(self) -> None:
        """Drop every context and zero the registry counters."""
        self._contexts.clear()
        self.arch_hits = 0
        self.arch_misses = 0


#: Process-level pool (the default shared registry for long-lived
#: processes; batch worker processes are short-lived, so for them this
#: is effectively per-batch state).
_GLOBAL_POOL = WarmCachePool()


def get_arch_context(
    coupling: CouplingGraph,
    latency: Optional[LatencyModel] = None,
) -> ArchContext:
    """Process-level :meth:`WarmCachePool.context` convenience."""
    return _GLOBAL_POOL.context(coupling, latency)


def warm_cache_counters() -> Dict[str, int]:
    """Cumulative warm-cache counters for the process-level pool."""
    return _GLOBAL_POOL.counters()


def reset_warm_cache() -> None:
    """Reset the process-level pool (tests)."""
    _GLOBAL_POOL.reset()
