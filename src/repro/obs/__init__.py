"""Dependency-free observability: spans, metrics, progress events.

Three cooperating pieces, bundled by :class:`Telemetry`:

* :class:`Tracer` — nested timed spans (``search`` > ``expand`` >
  ``heuristic``/``filter``, plus ``prefix``) with a JSONL sink and a
  human-readable tree renderer;
* :class:`MetricsRegistry` — counters / gauges / histograms snapshotable
  at any point, including on budget exhaustion;
* :class:`ProgressPublisher` — a live :class:`SearchProgressEvent`
  stream emitted every N expansions;
* :class:`TraceRecorder` — an expansion-level search trace with exact
  prune attribution (which rule discarded which subtree), analyzed
  offline by ``repro diagnose``;
* :class:`ResourceSampler` / :class:`SamplingProfiler` — the flight
  recorder: background RSS/CPU/GC sampling and a wall-clock sampling
  profiler with span + kernel-backend attribution, both off the hot
  path (compose with ``hot_path=False`` for near-zero overhead);
* :class:`TelemetrySpec` — picklable per-worker telemetry recipe for
  process-pool fleets; shards merge into a rollup via
  :mod:`repro.obs.export`;
* :class:`RunLedger` — the persistent run ledger
  (:mod:`repro.obs.ledger`): append-only index + per-run artifact
  directories, with the ``run_id`` threaded through telemetry as a
  correlation ID;
* :class:`FleetMonitor` — the ``repro top`` live view over an active
  fleet's telemetry directory (:mod:`repro.obs.monitor`).

:mod:`repro.obs.schema` defines the normalized ``MappingResult.stats``
key set every mapper emits.  The default path (``telemetry=None``) is
near-zero overhead: one flag check per expansion.
"""

from .events import ProgressPublisher, SearchProgressEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .schema import (
    MAPPER_NAMES,
    REQUIRED_STAT_KEYS,
    base_stats,
    missing_stat_keys,
    stats_row,
    validate_stats,
)
from .profiler import DEFAULT_PROFILE_INTERVAL, SamplingProfiler
from .runtime import (
    DEFAULT_RESOURCE_INTERVAL,
    GcPauseTracker,
    ResourceSampler,
    peak_rss_bytes,
    read_rss_bytes,
)
from .ledger import (
    LedgerRun,
    RunLedger,
    config_fingerprint,
    default_ledger_dir,
    git_sha,
    new_run_id,
)
from .monitor import FleetMonitor
from .sinks import FanoutSink, JsonlSink, MemorySink, Sink, read_jsonl
from .telemetry import NULL_TELEMETRY, Telemetry, TelemetrySpec, resolve
from .trace import (
    REASON_TO_STAT,
    TRACE_MODES,
    TraceRecorder,
    TraceSpec,
)
from .tracer import DEFAULT_MAX_SPANS, NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "resolve",
    "Tracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "DEFAULT_MAX_SPANS",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ProgressPublisher",
    "SearchProgressEvent",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "FanoutSink",
    "read_jsonl",
    "TraceRecorder",
    "TraceSpec",
    "TelemetrySpec",
    "RunLedger",
    "LedgerRun",
    "FleetMonitor",
    "new_run_id",
    "git_sha",
    "config_fingerprint",
    "default_ledger_dir",
    "ResourceSampler",
    "SamplingProfiler",
    "GcPauseTracker",
    "DEFAULT_RESOURCE_INTERVAL",
    "DEFAULT_PROFILE_INTERVAL",
    "peak_rss_bytes",
    "read_rss_bytes",
    "TRACE_MODES",
    "REASON_TO_STAT",
    "REQUIRED_STAT_KEYS",
    "MAPPER_NAMES",
    "base_stats",
    "missing_stat_keys",
    "stats_row",
    "validate_stats",
]
