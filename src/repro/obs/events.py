"""Live search-progress events.

Long mapping runs were previously silent until they finished (or blew
their budget).  A :class:`SearchProgressEvent` is a periodic snapshot of
the search frontier — emitted every N expansions — that subscribers
receive *while the search runs*: a CLI progress printer, a benchmark
harness persisting JSONL, or a test asserting cadence.

Publishing is pull-free: the search calls
:meth:`ProgressPublisher.publish`; subscriber exceptions are contained so
a broken consumer cannot abort a mapping run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List


@dataclass
class SearchProgressEvent:
    """One periodic snapshot of a running search.

    Attributes:
        mapper: Canonical mapper name emitting the event.
        phase: ``"search"`` for the main loop, ``"prefix"`` while the
            mode-2 free-SWAP prefix is being explored, ``"done"`` for the
            final event of a finished run.
        nodes_expanded: Expansions so far.
        nodes_generated: Generated successors so far.
        heap_size: Open-list size at emission time.
        best_f: Smallest f-value popped most recently (the frontier).
        elapsed_seconds: Wall-clock time since the search started.
        extra: Mapper-specific additions (filter drops, trims, ...).
    """

    mapper: str
    phase: str
    nodes_expanded: int
    nodes_generated: int
    heap_size: int
    best_f: int
    elapsed_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    def to_record(self) -> Dict:
        """Flat JSONL record for this event."""
        record = {
            "type": "progress",
            "mapper": self.mapper,
            "phase": self.phase,
            "nodes_expanded": self.nodes_expanded,
            "nodes_generated": self.nodes_generated,
            "heap_size": self.heap_size,
            "best_f": self.best_f,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        record.update(self.extra)
        return record

    def __str__(self) -> str:
        return (
            f"[{self.mapper}:{self.phase}] "
            f"expanded={self.nodes_expanded} "
            f"generated={self.nodes_generated} "
            f"heap={self.heap_size} f={self.best_f} "
            f"t={self.elapsed_seconds:.2f}s"
        )


Subscriber = Callable[[SearchProgressEvent], None]


class ProgressPublisher:
    """Fan-out of progress events to registered subscribers."""

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self.published = 0

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register ``callback``; returns a zero-arg unsubscribe handle."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers)

    def publish(self, event: SearchProgressEvent) -> None:
        """Deliver ``event`` to every subscriber, swallowing their errors."""
        self.published += 1
        for callback in list(self._subscribers):
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - a consumer must not kill a run
                pass
