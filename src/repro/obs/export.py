"""Telemetry export: shard merging, human summaries, Prometheus text.

Two consumers, one module:

* **Fleet rollups** — a batch run with ``--telemetry-dir`` leaves one
  JSONL shard per worker process (``worker-<pid>.jsonl``, written by
  :class:`~repro.obs.telemetry.TelemetrySpec`-built telemetries).
  :func:`fleet_rollup` merges them into per-worker aggregates plus a
  fleet-wide view (circuits/min, nodes/sec, queue-wait vs run time,
  peak RSS per worker); :func:`write_fleet_rollup` persists it as
  ``fleet.json`` next to the shards.
* **Run summaries** — a single-run telemetry JSONL (spans, progress,
  metrics, resource, profile records) summarized by
  :func:`summarize_run`.

Both render two ways: a human table (``render_fleet_table`` /
``render_run_summary``, the default ``repro obs-report`` output) and
Prometheus text exposition format (``fleet_to_prometheus`` /
``run_to_prometheus``) for scrape-file ingestion (node-exporter textfile
collector, pushgateway, CI artifact diffing).

Prometheus conventions: metric names are sanitized (dots → underscores)
and prefixed ``repro_``; per-worker series carry a ``worker`` label;
histogram summaries export ``_count`` / ``_sum`` / ``_min`` / ``_max``
scalars (the registry's power-of-two buckets are not cumulative
``le``-buckets, so exporting them as such would lie to PromQL).
"""

from __future__ import annotations

import glob
import json
import os
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .sinks import read_jsonl

#: Rollup filename written next to the worker shards.
FLEET_ROLLUP_NAME = "fleet.json"

#: Coordinator-side metadata stream written before worker dispatch.
FLEET_META_NAME = "coordinator.jsonl"

_SHARD_GLOB = "worker-*.jsonl"


def list_shards(directory: str) -> List[str]:
    """Worker shard paths under ``directory``, sorted for determinism."""
    return sorted(glob.glob(os.path.join(directory, _SHARD_GLOB)))


def write_fleet_meta(
    directory: str,
    total_tasks: int,
    workers: int,
    scheduler: str,
    run_id: Optional[str] = None,
) -> Dict:
    """Append one ``fleet_meta`` record to the coordinator stream.

    Written *before* dispatch so a live consumer (``repro top``) knows
    the planned task total — queue depth is ``total_tasks`` minus
    completed ``worker_task`` records, which shards alone cannot tell.
    Appended (not truncated) so re-runs into one directory keep history;
    readers take the last record.
    """
    record = {
        "type": "fleet_meta",
        "total_tasks": int(total_tasks),
        "workers": int(workers),
        "scheduler": scheduler,
        "started_ts": time.time(),
    }
    if run_id is not None:
        record["run_id"] = run_id
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, FLEET_META_NAME)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
    return record


def read_fleet_meta(directory: str) -> Dict:
    """The latest ``fleet_meta`` record, or ``{}`` when none exists.

    Tolerant of a torn tail (``strict=False``): the monitor reads this
    while the coordinator may still be writing.
    """
    path = os.path.join(directory, FLEET_META_NAME)
    if not os.path.exists(path):
        return {}
    records = [
        r for r in read_jsonl(path) if r.get("type") == "fleet_meta"
    ]
    return records[-1] if records else {}


# ----------------------------------------------------------------------
# Fleet rollup
# ----------------------------------------------------------------------

def _summarize_shard(path: str) -> Dict:
    """Per-worker aggregates from one shard's records."""
    records = read_jsonl(path)
    meta: Dict = {}
    tasks = ok = 0
    run_s = queue_wait_s = 0.0
    nodes = 0
    peak_rss = 0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    resource_samples = 0
    last_resource: Dict = {}
    last_warm: Dict = {}
    failures: Dict[str, int] = {}
    run_id: Optional[str] = None
    for record in records:
        kind = record.get("type")
        if run_id is None and record.get("run_id"):
            run_id = record["run_id"]
        if kind == "worker_meta" and not meta:
            meta = record
        elif kind == "worker_task":
            tasks += 1
            if record.get("ok"):
                ok += 1
            else:
                reason = str(record.get("error_type") or "unknown")
                failures[reason] = failures.get(reason, 0) + 1
            run_s += float(record.get("seconds") or 0.0)
            queue_wait_s += float(record.get("queue_wait_s") or 0.0)
            nodes += int(record.get("nodes_expanded") or 0)
            warm = record.get("warm_cache")
            if isinstance(warm, dict):
                # Cumulative per worker — the last snapshot wins.
                last_warm = warm
            rss = record.get("peak_rss_bytes")
            if rss and rss > peak_rss:
                peak_rss = rss
            ts = record.get("ts")
            if ts is not None:
                if first_ts is None or ts < first_ts:
                    first_ts = ts
                if last_ts is None or ts > last_ts:
                    last_ts = ts
        elif kind == "resource":
            resource_samples += 1
            last_resource = record
            rss = record.get("peak_rss_bytes")
            if rss and rss > peak_rss:
                peak_rss = rss
    worker = meta.get("worker")
    if worker is None:
        match = re.search(r"worker-(\w+)\.jsonl$", os.path.basename(path))
        worker = match.group(1) if match else os.path.basename(path)
    started = meta.get("started_ts", first_ts)
    return {
        "worker": worker,
        "run_id": run_id,
        "shard": os.path.basename(path),
        "tasks": tasks,
        "ok": ok,
        "failed": tasks - ok,
        "run_s": round(run_s, 6),
        "queue_wait_s": round(queue_wait_s, 6),
        "nodes_expanded": nodes,
        "nodes_per_sec": round(nodes / run_s, 2) if run_s > 0 else 0.0,
        "peak_rss_bytes": peak_rss,
        "warm_cache": last_warm,
        "failures": dict(sorted(failures.items())),
        "resource_samples": resource_samples,
        "cpu_user_s": last_resource.get("cpu_user_s", 0.0),
        "cpu_sys_s": last_resource.get("cpu_sys_s", 0.0),
        "gc_suspended_s": last_resource.get("gc_suspended_s", 0.0),
        "started_ts": started,
        "first_task_ts": first_ts,
        "last_task_ts": last_ts,
    }


def merge_worker_shards(directory: str) -> List[Dict]:
    """One summary dict per worker shard in ``directory`` (sorted)."""
    return [_summarize_shard(path) for path in list_shards(directory)]


def fleet_rollup(directory: str) -> Dict:
    """Merge every worker shard into ``{"workers": [...], "fleet": {...}}``.

    The fleet view answers the capacity questions a batch operator
    actually asks: how many circuits per minute did the pool sustain,
    what fraction of worker time was queue wait versus search, which
    worker's RSS peaked highest, and whether throughput was balanced
    (per-worker ``nodes_per_sec`` side by side).

    The fleet dict carries the coordinating run's ``run_id`` (from the
    coordinator's ``fleet_meta`` record, falling back to the first
    worker-stamped one), so ``fleet.json`` joins back to the run-ledger
    entry that requested the batch.
    """
    meta = read_fleet_meta(directory)
    workers = merge_worker_shards(directory)
    tasks = sum(w["tasks"] for w in workers)
    ok = sum(w["ok"] for w in workers)
    run_s = sum(w["run_s"] for w in workers)
    queue_wait_s = sum(w["queue_wait_s"] for w in workers)
    nodes = sum(w["nodes_expanded"] for w in workers)
    warm_totals: Dict[str, int] = {}
    failures_by_type: Dict[str, int] = {}
    for w in workers:
        for key, value in (w.get("warm_cache") or {}).items():
            if isinstance(value, (int, float)):
                warm_totals[key] = warm_totals.get(key, 0) + value
        for reason, count in (w.get("failures") or {}).items():
            failures_by_type[reason] = failures_by_type.get(reason, 0) + count
    warm_lookups = (
        warm_totals.get("problem_hits", 0)
        + warm_totals.get("problem_misses", 0)
    )
    starts = [w["started_ts"] for w in workers if w["started_ts"] is not None]
    ends = [w["last_task_ts"] for w in workers if w["last_task_ts"] is not None]
    wall_s = max(ends) - min(starts) if starts and ends else 0.0
    busy = queue_wait_s + run_s
    run_id = meta.get("run_id") or next(
        (w["run_id"] for w in workers if w.get("run_id")), None
    )
    fleet = {
        "run_id": run_id,
        "scheduler": meta.get("scheduler"),
        "total_tasks": meta.get("total_tasks"),
        "workers": len(workers),
        "tasks": tasks,
        "ok": ok,
        "failed": tasks - ok,
        "run_s": round(run_s, 6),
        "queue_wait_s": round(queue_wait_s, 6),
        "queue_wait_frac": round(queue_wait_s / busy, 4) if busy else 0.0,
        "wall_s": round(wall_s, 6),
        "circuits_per_min": (
            round(60.0 * tasks / wall_s, 2) if wall_s > 0 else 0.0
        ),
        "nodes_expanded": nodes,
        "nodes_per_sec": round(nodes / run_s, 2) if run_s > 0 else 0.0,
        "peak_rss_bytes": max(
            (w["peak_rss_bytes"] for w in workers), default=0
        ),
        "warm_cache": dict(sorted(warm_totals.items())),
        "warm_cache_hit_rate": (
            round(warm_totals.get("problem_hits", 0) / warm_lookups, 4)
            if warm_lookups
            else 0.0
        ),
        "failures": dict(sorted(failures_by_type.items())),
    }
    return {"workers": workers, "fleet": fleet}


def write_fleet_rollup(directory: str, filename: str = FLEET_ROLLUP_NAME) -> Dict:
    """Compute :func:`fleet_rollup` and persist it next to the shards.

    No-shards is not an error (a fleet run whose every worker crashed
    before first emit still gets a rollup saying so).
    """
    rollup = fleet_rollup(directory)
    path = os.path.join(directory, filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(rollup, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return rollup


# ----------------------------------------------------------------------
# Single-run summaries
# ----------------------------------------------------------------------

def summarize_run(records: Sequence[Dict]) -> Dict:
    """Digest one telemetry JSONL stream (a single instrumented run)."""
    by_type: Dict[str, int] = {}
    final_metrics: Dict = {}
    resources: Dict = {}
    profile: Dict = {}
    peak_rss = 0
    for record in records:
        kind = str(record.get("type", "unknown"))
        by_type[kind] = by_type.get(kind, 0) + 1
        if kind == "metrics":
            final_metrics = record  # last snapshot wins (it is "final")
        elif kind == "profile":
            profile = record
        elif kind == "resource":
            rss = record.get("peak_rss_bytes")
            if rss and rss > peak_rss:
                peak_rss = rss
    if not resources:
        resources = final_metrics.get("resources", {}) or {}
    if peak_rss and not resources.get("peak_rss_bytes"):
        resources = dict(resources)
        resources["peak_rss_bytes"] = peak_rss
    if not profile:
        profile = final_metrics.get("profile", {}) or {}
    return {
        "records": len(records),
        "by_type": dict(sorted(by_type.items())),
        "metrics": final_metrics.get("metrics", {}),
        "resources": resources,
        "profile": profile,
    }


# ----------------------------------------------------------------------
# Human rendering
# ----------------------------------------------------------------------

def _fmt_bytes(value) -> str:
    if not value:
        return "-"
    mib = float(value) / (1024 * 1024)
    return f"{mib:.1f}MiB"


def _fmt_failures(failures: Optional[Dict[str, int]]) -> str:
    """Compact failure digest: ``2xTimeoutError,1xValueError`` or ``-``."""
    if not failures:
        return "-"
    return ",".join(
        f"{count}x{reason}" for reason, count in sorted(failures.items())
    )


def render_fleet_table(rollup: Dict) -> str:
    """Fixed-width fleet summary: one row per worker plus totals."""
    lines = []
    header = (
        f"{'worker':>10}  {'tasks':>5}  {'ok':>4}  {'run_s':>8}  "
        f"{'wait_s':>7}  {'nodes':>10}  {'nodes/s':>9}  {'peak_rss':>9}  "
        f"{'failures':<20}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for w in rollup.get("workers", []):
        lines.append(
            f"{str(w['worker']):>10}  {w['tasks']:>5}  {w['ok']:>4}  "
            f"{w['run_s']:>8.2f}  {w['queue_wait_s']:>7.2f}  "
            f"{w['nodes_expanded']:>10}  {w['nodes_per_sec']:>9.1f}  "
            f"{_fmt_bytes(w['peak_rss_bytes']):>9}  "
            f"{_fmt_failures(w.get('failures')):<20}"
        )
    fleet = rollup.get("fleet", {})
    if fleet:
        lines.append("-" * len(header))
        lines.append(
            f"{'fleet':>10}  {fleet.get('tasks', 0):>5}  "
            f"{fleet.get('ok', 0):>4}  {fleet.get('run_s', 0.0):>8.2f}  "
            f"{fleet.get('queue_wait_s', 0.0):>7.2f}  "
            f"{fleet.get('nodes_expanded', 0):>10}  "
            f"{fleet.get('nodes_per_sec', 0.0):>9.1f}  "
            f"{_fmt_bytes(fleet.get('peak_rss_bytes')):>9}  "
            f"{_fmt_failures(fleet.get('failures')):<20}"
        )
        lines.append(
            f"fleet: {fleet.get('workers', 0)} workers, "
            f"{fleet.get('circuits_per_min', 0.0)} circuits/min over "
            f"{fleet.get('wall_s', 0.0):.2f}s wall, "
            f"queue-wait fraction {fleet.get('queue_wait_frac', 0.0):.1%}"
        )
        warm = fleet.get("warm_cache") or {}
        lookups = warm.get("problem_hits", 0) + warm.get("problem_misses", 0)
        if lookups:
            lines.append(
                f"warm-cache: hit rate "
                f"{fleet.get('warm_cache_hit_rate', 0.0):.1%} "
                f"({warm.get('problem_hits', 0)} hits / {lookups} lookups, "
                f"{warm.get('problem_evictions', 0)} evictions, "
                f"{warm.get('contexts', 0)} arch contexts)"
            )
    return "\n".join(lines)


def render_run_summary(summary: Dict, top_n: int = 10) -> str:
    """Human digest of one run's telemetry stream."""
    lines = []
    by_type = ", ".join(
        f"{kind}={count}" for kind, count in summary["by_type"].items()
    )
    lines.append(f"records: {summary['records']} ({by_type})")
    resources = summary.get("resources") or {}
    if resources:
        lines.append(
            f"resources: peak_rss={_fmt_bytes(resources.get('peak_rss_bytes'))} "
            f"cpu_user={resources.get('cpu_user_s', 0.0)}s "
            f"cpu_sys={resources.get('cpu_sys_s', 0.0)}s "
            f"gc_collections={resources.get('gc_collections', 0)} "
            f"gc_pause={resources.get('gc_pause_s', 0.0)}s "
            f"gc_windows={resources.get('gc_windows', 0)} "
            f"gc_suspended={resources.get('gc_suspended_s', 0.0)}s"
        )
    metrics = summary.get("metrics") or {}
    if metrics:
        lines.append("metrics:")
        for name, value in list(metrics.items()):
            if isinstance(value, dict):
                if "value" in value:  # gauge
                    rendered = f"{value['value']} (max {value['max']})"
                else:  # histogram
                    rendered = (
                        f"count={value.get('count')} mean={value.get('mean'):.4g} "
                        f"max={value.get('max'):.4g}"
                    )
            else:
                rendered = str(value)
            lines.append(f"  {name} = {rendered}")
    profile = summary.get("profile") or {}
    if profile.get("samples"):
        lines.append(
            f"profile: {profile['samples']} samples, "
            f"kernel-backend {profile.get('kernel_pct', 0.0)}%"
        )
        for section in ("functions", "spans", "kernel"):
            rows = profile.get(section) or []
            if not rows:
                continue
            lines.append(f"  top {section}:")
            for row in rows[:top_n]:
                lines.append(
                    f"    {row['pct']:6.2f}%  {row['samples']:>6}  "
                    f"{row['name']}"
                )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not cleaned.startswith("repro_"):
        cleaned = f"repro_{cleaned}"
    return cleaned


def _prom_value(value) -> str:
    """Render a sample value the exposition grammar accepts.

    Python booleans satisfy ``isinstance(value, int)`` and would render
    as ``True``/``False`` (unparseable); ``None`` (a null min/max from a
    zero-sample histogram read back from JSON) would render as ``None``.
    Both are coerced so the output always parses.
    """
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_line(name: str, value, labels: Optional[Dict[str, str]] = None) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_prom_value(value)}"
    return f"{name} {_prom_value(value)}"


def _metrics_to_prom(
    metrics: Dict,
    labels: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Flatten a registry snapshot into typed exposition lines."""
    lines: List[str] = []
    for name, value in metrics.items():
        base = prometheus_name(name)
        if isinstance(value, dict):
            if "value" in value:  # gauge {max, value}
                lines.append(f"# TYPE {base} gauge")
                lines.append(_prom_line(base, value["value"], labels))
                lines.append(f"# TYPE {base}_max gauge")
                lines.append(_prom_line(f"{base}_max", value["max"], labels))
            else:  # histogram summary
                for suffix, key in (
                    ("_count", "count"), ("_sum", "sum"),
                    ("_min", "min"), ("_max", "max"),
                ):
                    lines.append(f"# TYPE {base}{suffix} gauge")
                    lines.append(
                        _prom_line(
                            f"{base}{suffix}", value.get(key, 0), labels
                        )
                    )
        elif isinstance(value, (int, float)):
            lines.append(f"# TYPE {base} counter")
            lines.append(_prom_line(base, value, labels))
    return lines


#: Scalar resource-summary fields exported for a single run.
_RESOURCE_PROM_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("peak_rss_bytes", "gauge"),
    ("cpu_user_s", "counter"),
    ("cpu_sys_s", "counter"),
    ("gc_collections", "counter"),
    ("gc_pause_s", "counter"),
    ("gc_windows", "counter"),
    ("gc_suspended_s", "counter"),
)


def run_to_prometheus(summary: Dict) -> str:
    """One run's summary (:func:`summarize_run`) as exposition text."""
    lines = _metrics_to_prom(summary.get("metrics") or {})
    resources = summary.get("resources") or {}
    for field, kind in _RESOURCE_PROM_FIELDS:
        if field in resources:
            name = prometheus_name(f"resource.{field}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(_prom_line(name, resources[field]))
    profile = summary.get("profile") or {}
    if profile.get("samples") is not None:
        for field in ("samples", "kernel_samples"):
            if field in profile:
                name = prometheus_name(f"profile.{field}")
                lines.append(f"# TYPE {name} counter")
                lines.append(_prom_line(name, profile[field]))
    # An empty registry yields empty exposition, not a lone blank line.
    return "\n".join(lines) + "\n" if lines else ""


#: Per-worker fields exported with a ``worker`` label.
_WORKER_PROM_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("tasks", "counter"),
    ("ok", "counter"),
    ("failed", "counter"),
    ("run_s", "counter"),
    ("queue_wait_s", "counter"),
    ("nodes_expanded", "counter"),
    ("nodes_per_sec", "gauge"),
    ("peak_rss_bytes", "gauge"),
)

#: Fleet-wide scalar fields.
_FLEET_PROM_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("workers", "gauge"),
    ("tasks", "counter"),
    ("ok", "counter"),
    ("failed", "counter"),
    ("run_s", "counter"),
    ("queue_wait_s", "counter"),
    ("queue_wait_frac", "gauge"),
    ("wall_s", "gauge"),
    ("circuits_per_min", "gauge"),
    ("nodes_expanded", "counter"),
    ("nodes_per_sec", "gauge"),
    ("peak_rss_bytes", "gauge"),
    ("warm_cache_hit_rate", "gauge"),
)


def fleet_to_prometheus(rollup: Dict) -> str:
    """A fleet rollup as exposition text (per-worker labeled series)."""
    lines: List[str] = []
    fleet = rollup.get("fleet") or {}
    for field, kind in _FLEET_PROM_FIELDS:
        if field in fleet:
            name = prometheus_name(f"fleet.{field}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(_prom_line(name, fleet[field]))
    warm = fleet.get("warm_cache") or {}
    for field in sorted(warm):
        value = warm[field]
        if isinstance(value, (int, float)):
            name = prometheus_name(f"fleet.warm_cache.{field}")
            lines.append(f"# TYPE {name} counter")
            lines.append(_prom_line(name, value))
    failures = fleet.get("failures") or {}
    if failures:
        name = prometheus_name("fleet.failures")
        lines.append(f"# TYPE {name} counter")
        for reason in sorted(failures):
            lines.append(
                _prom_line(name, failures[reason], {"error_type": reason})
            )
    typed: set = set()
    for worker in rollup.get("workers", []):
        labels = {"worker": str(worker.get("worker"))}
        for field, kind in _WORKER_PROM_FIELDS:
            if field in worker:
                name = prometheus_name(f"worker.{field}")
                if name not in typed:
                    lines.append(f"# TYPE {name} {kind}")
                    typed.add(name)
                lines.append(_prom_line(name, worker[field], labels))
    return "\n".join(lines) + "\n" if lines else ""
