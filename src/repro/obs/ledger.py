"""Persistent run ledger: durable identity + artifacts for every run.

Telemetry so far has been *per-invocation*: spans, traces, fleet shards
and stats land in whatever files the caller named, with nothing tying
them together afterwards.  The ledger gives each ``map`` / ``map-batch``
/ ``corpus`` / ``portfolio`` invocation a durable **run_id**, an
append-only JSONL **index** and a per-run **artifact directory**, so
questions like "how did this circuit map last week?" or "which commit
regressed qft6?" have a recorded answer (the cross-run comparison
machinery the literature justifies its pruning rules with — see
:mod:`repro.analysis.runs` for ``diff`` / ``regressions``).

Layout under the ledger root (``--ledger-dir`` / ``$REPRO_LEDGER_DIR``
/ ``~/.repro/runs``)::

    index.jsonl                  # append-only, one JSON object per line
    <run_id>/                    # artifact directory of one run
        fleet/worker-*.jsonl     # e.g. fleet shards of a map-batch run
        fleet/fleet.json
        ...

Index rows are ``type="run"`` records carrying the run's kind, status,
config + config *fingerprint* (the grouping key for cross-run
regression scans), git SHA, python/cpu info, the final stats snapshot
and pointers to every artifact.  ``type="gc"`` rows record retention
sweeps; pruned runs keep their index rows (history stays diffable) but
lose their artifact directories.

Concurrency: the index is append-only and every row is written with a
single ``write()`` of one line (O_APPEND semantics), so concurrent
writers never interleave mid-record and a reader racing a writer sees
at worst a truncated *tail* — which :func:`repro.obs.sinks.read_jsonl`
tolerates with ``strict=False`` (the default used by :meth:`RunLedger.
entries`).  The run_id doubles as the **correlation ID** threaded
through :class:`~repro.obs.telemetry.Telemetry` /
:class:`~repro.obs.telemetry.TelemetrySpec`, so worker shards, progress
events and fleet rollups all name the run they belong to.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import time
import uuid
from typing import Dict, List, Optional

from .sinks import read_jsonl

#: Environment variable naming the default ledger root.
LEDGER_ENV = "REPRO_LEDGER_DIR"

#: Index filename inside the ledger root.
INDEX_NAME = "index.jsonl"

#: Config keys excluded from the fingerprint digest: they describe the
#: invocation, not the work, so two runs of the same problem on
#: different days or output paths must still group together.
_VOLATILE_CONFIG_KEYS = frozenset({
    "argv", "json_out", "metrics_out", "search_trace", "qasm_out",
    "telemetry_dir", "profile_out", "bench_json",
})


def default_ledger_dir() -> str:
    """The configured ledger root: ``$REPRO_LEDGER_DIR`` or ``~/.repro/runs``."""
    env = os.environ.get(LEDGER_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".repro", "runs")


def new_run_id() -> str:
    """A fresh run identifier: UTC timestamp + random suffix.

    Sortable by start time (the timestamp prefix) yet collision-free
    across concurrent processes (the uuid suffix); safe as a directory
    name on every platform.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def git_sha(short: bool = False) -> str:
    """The current checkout's commit SHA, or ``"unknown"`` outside git."""
    args = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        return subprocess.run(
            args, capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 - not a git checkout / no git binary
        return "unknown"


def host_info() -> Dict:
    """Python/CPU facts recorded per run (perf numbers need context)."""
    import platform

    return {
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def config_fingerprint(config: Dict) -> str:
    """Digest of the *reproducible* part of a run configuration.

    Volatile keys (output paths, raw argv) are dropped before hashing so
    the fingerprint answers "same circuit, same device, same mapper and
    flags?" — the grouping key ``repro runs regressions`` scans by.
    """
    import hashlib

    stable = {
        key: value for key, value in sorted(config.items())
        if key not in _VOLATILE_CONFIG_KEYS
    }
    payload = json.dumps(stable, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class LedgerRun:
    """One in-flight run: its identity, artifact directory and index row.

    Created by :meth:`RunLedger.open_run`; the caller threads
    :attr:`run_id` through telemetry, drops artifacts under
    :meth:`artifact_path`, then calls :meth:`finish` exactly once with
    the outcome.  Nothing is written to the index until ``finish`` —
    a run killed hard leaves only its artifact directory, which a later
    ``runs gc`` sweep removes.
    """

    def __init__(self, ledger: "RunLedger", kind: str, config: Dict,
                 run_id: Optional[str] = None) -> None:
        self.ledger = ledger
        self.kind = kind
        self.config = dict(config)
        self.run_id = run_id or new_run_id()
        self.fingerprint = config_fingerprint(self.config)
        self.started_ts = time.time()
        self._started = time.perf_counter()
        self.artifacts: Dict[str, str] = {}
        self._finished = False

    @property
    def directory(self) -> str:
        """This run's artifact directory (``<root>/<run_id>``)."""
        return os.path.join(self.ledger.root, self.run_id)

    def artifact_path(self, name: str, register: Optional[str] = None) -> str:
        """A path under the artifact directory (created on first use).

        ``register`` also records the path in :attr:`artifacts` under
        that key, so the index row points at it.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, name)
        if register is not None:
            self.artifacts[register] = path
        return path

    def add_artifact(self, name: str, path: str) -> None:
        """Register an artifact living *outside* the run directory
        (e.g. a user-named ``--metrics-out`` file)."""
        self.artifacts[name] = os.path.abspath(path)

    def finish(
        self,
        status: str = "ok",
        stats: Optional[Dict] = None,
        error: Optional[str] = None,
        extra: Optional[Dict] = None,
    ) -> Dict:
        """Append this run's index row (idempotent) and return it.

        ``status`` is ``"ok"``, ``"budget"`` (a contained
        ``SearchBudgetExceeded``) or ``"error"``.  ``stats`` is the
        final normalized stats snapshot (or aggregated batch totals);
        ``extra`` carries kind-specific headline fields (depth, swaps,
        circuits/min, ...).
        """
        if self._finished:
            return {}
        self._finished = True
        row = {
            "type": "run",
            "run_id": self.run_id,
            "kind": self.kind,
            "status": status,
            "started_ts": round(self.started_ts, 6),
            "wall_s": round(time.perf_counter() - self._started, 6),
            "fingerprint": self.fingerprint,
            "config": self.config,
            "git_sha": git_sha(),
            **host_info(),
            "stats": dict(stats) if stats else {},
            "artifacts": dict(self.artifacts),
        }
        if error is not None:
            row["error"] = str(error)
        if extra:
            row.update(extra)
        self.ledger.append(row)
        return row


class RunLedger:
    """The persistent ledger: append-only index + per-run directories."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(root or default_ledger_dir())
        self.index_path = os.path.join(self.root, INDEX_NAME)

    # -- writing -------------------------------------------------------
    def open_run(self, kind: str, config: Dict,
                 run_id: Optional[str] = None) -> LedgerRun:
        """Start recording one run of ``kind`` with ``config``."""
        os.makedirs(self.root, exist_ok=True)
        return LedgerRun(self, kind, config, run_id=run_id)

    def append(self, row: Dict) -> None:
        """Append one index row as a single atomic-append line.

        One ``write()`` call per row in ``"a"`` mode: with POSIX
        O_APPEND semantics concurrent writers (fleet workers, parallel
        CLI invocations) never interleave mid-record, so a racing
        reader sees at worst a truncated final line.
        """
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(row, default=str) + "\n"
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()

    # -- reading -------------------------------------------------------
    def entries(self, strict: bool = False) -> List[Dict]:
        """Every index row, tolerant of a concurrently-torn tail.

        ``strict=False`` (the default) is load-bearing: ``runs list``
        racing an active fleet run must not blow up on the half-written
        last line — the corrupt-vs-truncated semantics of
        :func:`~repro.obs.sinks.read_jsonl` drop only a torn *tail*
        while still raising on mid-file corruption.
        """
        if not os.path.exists(self.index_path):
            return []
        return read_jsonl(self.index_path, strict=strict)

    def runs(self, kind: Optional[str] = None) -> List[Dict]:
        """All ``type="run"`` rows, oldest first, optionally by kind."""
        rows = [r for r in self.entries() if r.get("type") == "run"]
        if kind is not None:
            rows = [r for r in rows if r.get("kind") == kind]
        return rows

    def get(self, run_id: str) -> Dict:
        """The run row for ``run_id`` (unique prefixes accepted).

        Raises ``KeyError`` with a helpful message for unknown or
        ambiguous identifiers.
        """
        rows = self.runs()
        exact = [r for r in rows if r.get("run_id") == run_id]
        if exact:
            return exact[-1]  # re-recorded id: latest row wins
        matches = [
            r for r in rows if str(r.get("run_id", "")).startswith(run_id)
        ]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.index_path}")
        distinct = {r["run_id"] for r in matches}
        if len(distinct) > 1:
            raise KeyError(
                f"run id prefix {run_id!r} is ambiguous: "
                f"{', '.join(sorted(distinct))}"
            )
        return matches[-1]

    def artifact_dir(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    # -- retention -----------------------------------------------------
    def gc(self, keep: int) -> List[str]:
        """Remove artifact directories of all but the newest ``keep`` runs.

        Index rows are **never** deleted — the ledger stays an append-only
        history usable by ``runs diff`` / ``regressions`` — only the bulky
        per-run artifact directories go.  Directories under the root that
        match no indexed run (crashed runs that never reached ``finish``)
        are pruned too.  Appends one ``type="gc"`` audit row naming what
        was removed; returns the pruned run ids/directories.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        rows = self.runs()
        order: List[str] = []
        for row in rows:  # oldest first; dedup re-recorded ids
            run_id = row.get("run_id")
            if run_id and run_id not in order:
                order.append(run_id)
        keep_ids = set(order[len(order) - keep:] if keep else [])
        pruned: List[str] = []
        if os.path.isdir(self.root):
            indexed = set(order)
            for name in sorted(os.listdir(self.root)):
                path = os.path.join(self.root, name)
                if not os.path.isdir(path):
                    continue
                if name in keep_ids:
                    continue
                if name not in indexed and not _looks_like_run_dir(name):
                    continue  # never touch foreign directories
                shutil.rmtree(path, ignore_errors=True)
                pruned.append(name)
        if pruned:
            self.append({
                "type": "gc",
                "ts": round(time.time(), 6),
                "keep": keep,
                "pruned": pruned,
            })
        return pruned


def _looks_like_run_dir(name: str) -> bool:
    """Heuristic for unindexed (crashed-run) directories: the
    ``<stamp>-<hex>`` shape :func:`new_run_id` produces."""
    parts = name.split("-")
    if len(parts) != 2:
        return False
    stamp, suffix = parts
    return (
        len(stamp) == 15 and stamp[8] == "T"
        and stamp[:8].isdigit() and stamp[9:].isdigit()
        and len(suffix) == 8
        and all(c in "0123456789abcdef" for c in suffix)
    )
