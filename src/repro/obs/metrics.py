"""Counters, gauges and histograms for the mapping search.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing count (nodes expanded,
  filter drops);
* :class:`Gauge` — last-written value plus its observed max (heap size,
  f-value frontier);
* :class:`Histogram` — streaming count/sum/min/max plus power-of-two
  bucket counts (heuristic-call latency, children per expansion).

Everything is snapshotable at any instant — crucially *including* the
moment a search budget trips — via :meth:`MetricsRegistry.snapshot`,
which returns a plain JSON-serializable dict.

Hot-path discipline: instrument lookups (``registry.counter(name)``)
happen once, outside the loop; the per-event operations (``inc`` /
``set`` / ``observe``) are a few attribute writes.
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-set value, tracking the maximum ever observed."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0
        self.max = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    Bucket ``i`` counts observations in ``[2^(i-1), 2^i)`` units of
    ``scale`` (default scale 1.0; latency callers pass seconds and read
    the summary back in seconds).  Sixteen buckets cover five orders of
    magnitude, enough to tell a 10 µs heuristic call from a 100 ms one.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "scale")

    NUM_BUCKETS = 16

    def __init__(self, scale: float = 1.0) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * self.NUM_BUCKETS
        self.scale = scale

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        scaled = value / self.scale
        index = 0
        while scaled >= 1.0 and index < self.NUM_BUCKETS - 1:
            scaled /= 2.0
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        # Keys in sorted order so JSONL serializations diff stably
        # (json.dumps preserves insertion order).
        return {
            "buckets": list(self.buckets),
            "count": self.count,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "sum": self.total,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted strings (``search.nodes_expanded``,
    ``heuristic.latency_s``); a name belongs to exactly one instrument
    kind — asking for it as another kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(**kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, scale: float = 1.0) -> Histogram:
        return self._get(name, Histogram, scale=scale)

    def set_many(self, values: Dict[str, float]) -> None:
        """Write a dict of values into same-named gauges (bulk mirror)."""
        for name, value in values.items():
            if isinstance(value, (int, float)):
                self.gauge(name).set(value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view of every instrument right now.

        Counters flatten to their value, gauges to ``{max, value}``,
        histograms to their full summary.  Instrument names and every
        nested stat key come out in sorted order — snapshots of equal
        state serialize byte-identically, so JSONL diffs and test
        assertions are stable.
        """
        out: Dict[str, object] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = {"max": instrument.max, "value": instrument.value}
            else:
                out[name] = instrument.summary()
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
