"""``repro top`` — a live monitor for an active fleet run.

Tails a telemetry directory (the ``--telemetry-dir`` of a running
``map-batch`` / ``corpus`` / mode-2 fan-out) and renders, refreshing in
place:

* per-worker throughput — tasks done, ok/failed, nodes/sec, last RSS;
* queue depth — planned total (from the coordinator's ``fleet_meta``
  record) minus completed ``worker_task`` records;
* warm-cache hit rate — from each worker's latest cumulative counters;
* the incumbent-depth timeline — best depth seen so far, as a running
  minimum over completed tasks' depths.

Everything is read with ``read_jsonl(strict=False)``: the workers are
*still writing* while we read, so a torn final line is the expected
steady state, not an error.  The monitor never writes to the directory
it watches.

The frame renderer (:meth:`FleetMonitor.frame`) is a pure function of
the directory state, so tests drive it directly; :meth:`FleetMonitor.
watch` adds the refresh loop and ANSI home-and-clear in-place redraw.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from .export import list_shards, read_fleet_meta
from .sinks import read_jsonl

#: Seconds between refreshes by default.
DEFAULT_INTERVAL = 1.0

#: ANSI: cursor home + clear-to-end — redraw without scrollback spam.
_CLEAR = "\x1b[H\x1b[J"

#: Trailing window (seconds) for the "recent" throughput column.
_RECENT_WINDOW_S = 10.0

#: Max points rendered on the incumbent-depth timeline.
_TIMELINE_POINTS = 8


def _fmt_bytes(value) -> str:
    if not value:
        return "-"
    return f"{float(value) / (1024 * 1024):.0f}MiB"


def _fmt_rate(value: float) -> str:
    return f"{value:.1f}" if value < 100 else f"{value:.0f}"


class FleetMonitor:
    """Stateless reader of a fleet telemetry directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    # -- data collection ----------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict:
        """One consistent-enough view of the directory's current state.

        "Enough" because shards are being appended while we read; each
        shard is internally consistent (single-writer, line-atomic
        appends) and cross-shard skew of one refresh interval is
        invisible at human timescales.
        """
        now = time.time() if now is None else now
        meta = read_fleet_meta(self.directory)
        workers: List[Dict] = []
        depth_points: List[Tuple[float, int]] = []
        completed = ok = nodes_total = 0
        warm_totals: Dict[str, int] = {}
        run_id = meta.get("run_id")
        for path in list_shards(self.directory):
            tasks = succeeded = nodes = 0
            recent_tasks = 0
            run_s = 0.0
            last_rss = None
            last_warm: Dict = {}
            last_ts: Optional[float] = None
            for record in read_jsonl(path):
                kind = record.get("type")
                if run_id is None and record.get("run_id"):
                    run_id = record["run_id"]
                if kind == "worker_task":
                    tasks += 1
                    if record.get("ok"):
                        succeeded += 1
                    nodes += int(record.get("nodes_expanded") or 0)
                    run_s += float(record.get("seconds") or 0.0)
                    ts = record.get("ts")
                    if ts is not None:
                        last_ts = ts
                        if now - ts <= _RECENT_WINDOW_S:
                            recent_tasks += 1
                        depth = record.get("depth")
                        if depth is not None:
                            depth_points.append((ts, int(depth)))
                    rss = record.get("peak_rss_bytes")
                    if rss:
                        last_rss = rss
                    warm = record.get("warm_cache")
                    if isinstance(warm, dict):
                        last_warm = warm
                elif kind == "resource":
                    rss = record.get("peak_rss_bytes")
                    if rss:
                        last_rss = rss
            completed += tasks
            ok += succeeded
            nodes_total += nodes
            for key, value in last_warm.items():
                if isinstance(value, (int, float)):
                    warm_totals[key] = warm_totals.get(key, 0) + value
            workers.append({
                "shard": os.path.basename(path),
                "tasks": tasks,
                "ok": succeeded,
                "nodes": nodes,
                "nodes_per_sec": nodes / run_s if run_s > 0 else 0.0,
                "recent_tasks": recent_tasks,
                "last_rss": last_rss,
                "last_ts": last_ts,
            })
        total = meta.get("total_tasks")
        lookups = (
            warm_totals.get("problem_hits", 0)
            + warm_totals.get("problem_misses", 0)
        )
        depth_points.sort(key=lambda p: p[0])
        timeline: List[Tuple[float, int]] = []
        best: Optional[int] = None
        for ts, depth in depth_points:
            if best is None or depth < best:
                best = depth
                timeline.append((ts, depth))
        return {
            "run_id": run_id,
            "meta": meta,
            "workers": workers,
            "completed": completed,
            "ok": ok,
            "nodes": nodes_total,
            "total_tasks": total,
            "queue_depth": (
                max(0, int(total) - completed) if total is not None else None
            ),
            "warm_hit_rate": (
                warm_totals.get("problem_hits", 0) / lookups if lookups else None
            ),
            "incumbent_timeline": timeline,
            "done": total is not None and completed >= int(total),
        }

    # -- rendering -----------------------------------------------------
    def frame(self, now: Optional[float] = None) -> str:
        """Render one monitor frame from the directory's current state."""
        snap = self.snapshot(now=now)
        now = time.time() if now is None else now
        meta = snap["meta"]
        lines = []
        title = f"repro top — {self.directory}"
        if snap["run_id"]:
            title += f"  run {snap['run_id']}"
        lines.append(title)
        started = meta.get("started_ts")
        total = snap["total_tasks"]
        status = (
            f"tasks {snap['completed']}"
            + (f"/{total}" if total is not None else "")
            + f"  ok {snap['ok']}  failed {snap['completed'] - snap['ok']}"
        )
        if snap["queue_depth"] is not None:
            status += f"  queue {snap['queue_depth']}"
        if meta.get("scheduler"):
            status += f"  scheduler {meta['scheduler']}"
        if started:
            status += f"  elapsed {max(0.0, now - float(started)):.1f}s"
        lines.append(status)
        warm = snap["warm_hit_rate"]
        throughput = f"nodes {snap['nodes']}"
        if warm is not None:
            throughput += f"  warm-cache hit rate {warm:.1%}"
        lines.append(throughput)
        if not snap["workers"]:
            lines.append("(no worker shards yet)")
        else:
            header = (
                f"{'shard':<24} {'tasks':>5} {'ok':>4} {'nodes':>10} "
                f"{'nodes/s':>8} {'recent':>6} {'rss':>8} {'idle_s':>6}"
            )
            lines.append(header)
            lines.append("-" * len(header))
            for w in snap["workers"]:
                idle = (
                    f"{max(0.0, now - w['last_ts']):.1f}"
                    if w["last_ts"] is not None else "-"
                )
                lines.append(
                    f"{w['shard']:<24} {w['tasks']:>5} {w['ok']:>4} "
                    f"{w['nodes']:>10} {_fmt_rate(w['nodes_per_sec']):>8} "
                    f"{w['recent_tasks']:>6} {_fmt_bytes(w['last_rss']):>8} "
                    f"{idle:>6}"
                )
        timeline = snap["incumbent_timeline"]
        if timeline:
            base = float(started) if started else timeline[0][0]
            points = timeline[-_TIMELINE_POINTS:]
            rendered = " > ".join(
                f"d{depth}@{max(0.0, ts - base):.1f}s" for ts, depth in points
            )
            lines.append(f"incumbent: {rendered}")
        if snap["done"]:
            lines.append("fleet complete")
        return "\n".join(lines)

    # -- loop ----------------------------------------------------------
    def watch(
        self,
        interval: float = DEFAULT_INTERVAL,
        iterations: Optional[int] = None,
        duration: Optional[float] = None,
        stream=None,
        clear: Optional[bool] = None,
    ) -> int:
        """Refresh the frame until the fleet completes (or limits hit).

        ``iterations`` / ``duration`` bound the loop for scripted use
        (``repro top --once`` passes ``iterations=1``).  Returns the
        number of frames rendered.  ``clear`` defaults to "only when the
        stream is a TTY" so redirected output stays line-oriented.
        """
        stream = sys.stdout if stream is None else stream
        if clear is None:
            clear = bool(getattr(stream, "isatty", lambda: False)())
        deadline = (
            time.monotonic() + duration if duration is not None else None
        )
        frames = 0
        while True:
            text = self.frame()
            stream.write((_CLEAR if clear else "") + text + "\n")
            stream.flush()
            frames += 1
            done = text.endswith("fleet complete")
            if iterations is not None and frames >= iterations:
                return frames
            if done:
                return frames
            if deadline is not None and time.monotonic() >= deadline:
                return frames
            time.sleep(max(0.05, interval))
