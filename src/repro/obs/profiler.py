"""Low-overhead sampling wall-clock profiler with span attribution.

A :class:`SamplingProfiler` is a timer thread that periodically grabs
the target thread's frame stack via ``sys._current_frames()`` and
aggregates three views of where wall-clock time goes:

* **functions** — self-time per function (the leaf frame of each
  sample), labelled ``file.py:func``;
* **spans** — each sample attributed to the open span stack of the
  attached :class:`~repro.obs.tracer.Tracer` (``search>expand>filter``)
  at the instant of the sample, so profile time aligns with the span
  tree the search emits;
* **kernel** — samples whose stack passes through
  ``repro/core/kernels/`` attributed to the deepest kernel-backend
  frame, quantifying how much of the run the backend seam actually
  covers (calls into the C backend appear as their Python call site —
  the extension drops the GIL for no one).

Output goes two ways: :meth:`report` returns the top-N attribution
tables (the :class:`~repro.obs.telemetry.Telemetry` facade merges them
into the final metrics snapshot and emits one ``type="profile"``
record), and :meth:`write_collapsed` writes the folded-stack format
(``frame;frame;frame count`` per line) consumed by standard flamegraph
tooling (``flamegraph.pl``, speedscope, inferno).

Overhead discipline: the profiled thread is never touched — no
tracing hooks, no signal delivery; the cost is the sampler thread
briefly holding the GIL to walk one frame stack per tick.  At the
default 5 ms interval this measures <2% on the mode-2 solve suites
(``tests/test_runtime_obs.py`` gates it).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .sinks import Sink

#: Default seconds between stack samples (5 ms ≈ 200 Hz).
DEFAULT_PROFILE_INTERVAL = 0.005

#: Frames deeper than this are truncated (collapsed stacks stay legible).
MAX_STACK_DEPTH = 64

#: Path fragment identifying kernel-backend frames.
_KERNEL_FRAGMENT = os.path.join("repro", "core", "kernels")


def frame_label(frame) -> str:
    """Compact ``file.py:func`` label for one frame."""
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


class SamplingProfiler:
    """Samples one thread's stack on a timer; aggregates attribution.

    Args:
        interval: Seconds between samples.
        tracer: Optional tracer whose open-span stack each sample is
            attributed to (reading the stack from another thread is a
            GIL-atomic list copy — no locking needed).
        target_thread_id: Thread to sample; defaults to the calling
            thread (the one that will run the search).
        sink: Destination for the final ``type="profile"`` record.
        metrics: Optional registry: maintains ``profile.samples`` and
            ``profile.kernel_samples`` counters.
        collapsed_path: When set, :meth:`stop` writes the folded-stack
            file here.
        top_n: Table size for :meth:`report`.
    """

    def __init__(
        self,
        interval: float = DEFAULT_PROFILE_INTERVAL,
        tracer=None,
        target_thread_id: Optional[int] = None,
        sink: Optional[Sink] = None,
        metrics: Optional[MetricsRegistry] = None,
        collapsed_path: Optional[str] = None,
        top_n: int = 15,
    ) -> None:
        self.interval = max(0.0005, float(interval))
        self.tracer = tracer
        self.target_thread_id = (
            target_thread_id if target_thread_id is not None
            else threading.get_ident()
        )
        self.sink = sink
        self.metrics = metrics
        self.collapsed_path = collapsed_path
        self.top_n = top_n
        self.samples = 0
        self.kernel_samples = 0
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._functions: Dict[str, int] = {}
        self._spans: Dict[str, int] = {}
        self._kernel: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.perf_counter()
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._t0 = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict:
        """Stop sampling; emit the profile record; write collapsed file."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
            self._elapsed = time.perf_counter() - self._t0
        report = self.report(self.top_n)
        if self.collapsed_path:
            self.write_collapsed(self.collapsed_path)
            report["collapsed_path"] = self.collapsed_path
        if self.sink is not None:
            record = {"type": "profile"}
            record.update(report)
            self.sink.emit(record)
        return report

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._take_sample()
            except Exception:  # noqa: BLE001 - profiler must never kill a run
                pass

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return
        # Walk leaf→root, then reverse into root→leaf collapsed order.
        labels: List[str] = []
        kernel_frame: Optional[str] = None
        depth = 0
        while frame is not None and depth < MAX_STACK_DEPTH:
            label = frame_label(frame)
            labels.append(label)
            if kernel_frame is None and (
                _KERNEL_FRAGMENT in frame.f_code.co_filename
            ):
                kernel_frame = label  # deepest kernel frame wins
            frame = frame.f_back
            depth += 1
        if not labels:
            return
        self.samples += 1
        leaf = labels[0]
        stack = tuple(reversed(labels))
        self._stacks[stack] = self._stacks.get(stack, 0) + 1
        self._functions[leaf] = self._functions.get(leaf, 0) + 1
        if kernel_frame is not None:
            self.kernel_samples += 1
            self._kernel[kernel_frame] = self._kernel.get(kernel_frame, 0) + 1
        if self.tracer is not None and getattr(self.tracer, "enabled", False):
            # ``_stack`` mutates under the GIL; ``list()`` snapshots it.
            open_spans = [s.name for s in list(self.tracer._stack)]
            span_key = ">".join(open_spans) if open_spans else "(no-span)"
            self._spans[span_key] = self._spans.get(span_key, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("profile.samples").inc()
            if kernel_frame is not None:
                self.metrics.counter("profile.kernel_samples").inc()

    # ------------------------------------------------------------------
    @staticmethod
    def _top(table: Dict[str, int], total: int, n: int) -> List[Dict]:
        rows = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return [
            {
                "name": name,
                "samples": count,
                "pct": round(100.0 * count / total, 2) if total else 0.0,
            }
            for name, count in rows
        ]

    def report(self, top_n: Optional[int] = None) -> Dict:
        """Top-N attribution tables (functions / spans / kernel)."""
        n = top_n if top_n is not None else self.top_n
        elapsed = (
            self._elapsed if self._elapsed
            else time.perf_counter() - self._t0
        )
        return {
            "samples": self.samples,
            "interval_s": self.interval,
            "elapsed_s": round(elapsed, 6),
            "kernel_samples": self.kernel_samples,
            "kernel_pct": round(
                100.0 * self.kernel_samples / self.samples, 2
            ) if self.samples else 0.0,
            "functions": self._top(self._functions, self.samples, n),
            "spans": self._top(self._spans, self.samples, n),
            "kernel": self._top(self._kernel, self.samples, n),
        }

    def write_collapsed(self, path: str) -> str:
        """Write folded stacks (``a;b;c N``) for flamegraph tooling."""
        with open(path, "w", encoding="utf-8") as handle:
            for stack, count in sorted(self._stacks.items()):
                handle.write(";".join(stack))
                handle.write(f" {count}\n")
        return path

    def render_table(self, top_n: Optional[int] = None) -> str:
        """Human-readable top-N table (CLI output)."""
        report = self.report(top_n)
        lines = [
            f"profile: {report['samples']} samples @ "
            f"{report['interval_s'] * 1000:.1f} ms over "
            f"{report['elapsed_s']:.2f}s "
            f"(kernel-backend {report['kernel_pct']:.1f}%)"
        ]
        for section in ("functions", "spans", "kernel"):
            rows = report[section]
            if not rows:
                continue
            lines.append(f"  top {section}:")
            for row in rows:
                lines.append(
                    f"    {row['pct']:6.2f}%  {row['samples']:>6}  "
                    f"{row['name']}"
                )
        return "\n".join(lines)
