"""Flight-recorder resource sampling: RSS, CPU, GC — while a run flies.

The spans/counters/trace layers answer *what the search decided*; this
module answers *what the process was doing* while it decided it.  A
:class:`ResourceSampler` is a background thread that periodically emits
``type="resource"`` records into the ordinary telemetry sink:

==================  ====================================================
field               meaning
==================  ====================================================
``elapsed_s``       seconds since the sampler started
``rss_bytes``       current resident set (``/proc/self/statm``; falls
                    back to ``getrusage`` peak where /proc is absent)
``peak_rss_bytes``  maximum ``rss_bytes`` observed so far
``cpu_user_s``      cumulative user CPU time (``os.times``)
``cpu_sys_s``       cumulative system CPU time
``gc_counts``       ``gc.get_count()`` triple (allocation pressure)
``gc_collections``  cyclic collections observed via ``gc.callbacks``
``gc_pause_s``      cumulative collection-pause seconds
``gc_pause_max_s``  longest single collection pause
``gc_windows``      ``pause_gc`` suspension windows entered so far
``gc_suspended_s``  cumulative seconds the collector was suspended
==================  ====================================================

GC pauses are measured with a :class:`GcPauseTracker` registered on
``gc.callbacks`` (start/stop timestamps around each collection).  The
search hot loop suspends the cyclic collector (``core/gcpause.py``), so
the tracker sees nothing during a search *by design*; the suspension
window counters from :func:`repro.core.gcpause.suspension_stats` are
included in every record so the trail says *why* the pause count is
flat.

Overhead discipline: sampling runs entirely off the hot path — the
search loop is never touched.  One tick is a /proc read, an
``os.times`` call and one sink emit; at the default 50 ms interval that
is well under 0.5% of a core.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .sinks import Sink


def _suspension_stats() -> Dict[str, float]:
    # Imported lazily: ``repro.core`` (the package init) imports the
    # telemetry facade, which imports this module — a module-level
    # ``from ..core.gcpause import ...`` here would close that cycle
    # before ``Telemetry`` exists.
    from ..core.gcpause import suspension_stats

    return suspension_stats()

#: Default seconds between resource samples.
DEFAULT_RESOURCE_INTERVAL = 0.05

_PAGE_SIZE: Optional[int] = None


def _page_size() -> int:
    global _PAGE_SIZE
    if _PAGE_SIZE is None:
        try:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError, AttributeError):
            _PAGE_SIZE = 4096
    return _PAGE_SIZE


def read_rss_bytes() -> Optional[int]:
    """Current resident-set size in bytes, or ``None`` when unreadable.

    Primary source is ``/proc/self/statm`` (field 2 is resident pages);
    the fallback is the ``getrusage`` *peak* — a monotone over-estimate,
    but the only portable signal on platforms without procfs.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _page_size()
    except (OSError, IndexError, ValueError):
        pass
    return peak_rss_bytes()


def peak_rss_bytes() -> Optional[int]:
    """Process-lifetime peak RSS in bytes via ``getrusage`` (or None)."""
    try:
        import resource as _resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def cpu_times() -> Dict[str, float]:
    """Cumulative user/system CPU seconds for this process."""
    times = os.times()
    return {"user": times.user, "system": times.system}


class GcPauseTracker:
    """Measures cyclic-collection pauses via ``gc.callbacks``.

    Registering is explicit (:meth:`install` / :meth:`remove`) so tests
    and samplers control the callback's lifetime; the callback itself is
    a timestamp read plus a few attribute writes, negligible next to any
    actual collection.  ``histogram`` (when given) receives every pause
    duration in seconds, so snapshots carry the pause distribution.
    """

    def __init__(self, histogram=None) -> None:
        self.collections = 0
        self.pause_total_s = 0.0
        self.pause_max_s = 0.0
        self.by_generation = {0: 0, 1: 0, 2: 0}
        self.histogram = histogram
        self._started_at: Optional[float] = None
        self._installed = False

    def _callback(self, phase: str, info: Dict) -> None:
        if phase == "start":
            self._started_at = time.perf_counter()
            return
        if phase == "stop" and self._started_at is not None:
            pause = time.perf_counter() - self._started_at
            self._started_at = None
            self.collections += 1
            self.pause_total_s += pause
            if pause > self.pause_max_s:
                self.pause_max_s = pause
            if self.histogram is not None:
                self.histogram.observe(pause)
            generation = info.get("generation")
            if generation in self.by_generation:
                self.by_generation[generation] += 1

    def install(self) -> "GcPauseTracker":
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True
        return self

    def remove(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:  # pragma: no cover - external interference
                pass
            self._installed = False

    def summary(self) -> Dict[str, float]:
        return {
            "gc_collections": self.collections,
            "gc_pause_s": round(self.pause_total_s, 6),
            "gc_pause_max_s": round(self.pause_max_s, 6),
            "gc_by_generation": dict(self.by_generation),
        }


class ResourceSampler:
    """Background thread emitting periodic ``type="resource"`` records.

    Args:
        sink: Destination for resource records (``None`` keeps only the
            in-object aggregates — :meth:`summary` still works).
        metrics: Optional registry; the sampler maintains
            ``runtime.rss_bytes`` / ``runtime.peak_rss_bytes`` gauges, a
            ``runtime.samples`` counter and a ``runtime.gc_pause_s``
            histogram there so snapshots carry the resource story.
        interval: Seconds between samples.

    Usable directly as a context manager, or through
    :class:`~repro.obs.telemetry.Telemetry` (``sample_resources=True``),
    which starts it at construction and stops it from ``finish()``.
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        metrics: Optional[MetricsRegistry] = None,
        interval: float = DEFAULT_RESOURCE_INTERVAL,
    ) -> None:
        self.sink = sink
        self.metrics = metrics
        self.interval = max(0.001, float(interval))
        self.samples = 0
        self.peak_rss = 0
        self.gc_tracker = GcPauseTracker(
            histogram=metrics.histogram("runtime.gc_pause_s", scale=1e-6)
            if metrics is not None else None
        )
        self._cpu0 = cpu_times()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.perf_counter()
        self.records: List[Dict] = []  # kept only when sink is None

    # ------------------------------------------------------------------
    def start(self) -> "ResourceSampler":
        """Install the GC tracker and launch the sampling thread."""
        if self._thread is not None:
            return self
        self.gc_tracker.install()
        self._t0 = time.perf_counter()
        self._cpu0 = cpu_times()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict:
        """Stop sampling, emit one final record, return :meth:`summary`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.gc_tracker.remove()
        self._sample()  # final record: the run's closing resource state
        return self.summary()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._sample()
            except Exception:  # noqa: BLE001 - a sampler must never kill a run
                pass

    def _sample(self) -> None:
        record = self.snapshot_record()
        self.samples += 1
        if self.metrics is not None:
            self.metrics.counter("runtime.samples").inc()
            rss = record.get("rss_bytes")
            if rss is not None:
                self.metrics.gauge("runtime.rss_bytes").set(rss)
                self.metrics.gauge("runtime.peak_rss_bytes").set(
                    record["peak_rss_bytes"]
                )
        if self.sink is not None:
            self.sink.emit(record)
        else:
            self.records.append(record)

    def snapshot_record(self) -> Dict:
        """One ``type="resource"`` record describing this instant."""
        rss = read_rss_bytes()
        if rss is not None and rss > self.peak_rss:
            self.peak_rss = rss
        cpu = cpu_times()
        suspension = _suspension_stats()
        return {
            "type": "resource",
            "elapsed_s": round(time.perf_counter() - self._t0, 6),
            "rss_bytes": rss,
            "peak_rss_bytes": self.peak_rss or rss,
            "cpu_user_s": round(cpu["user"] - self._cpu0["user"], 6),
            "cpu_sys_s": round(cpu["system"] - self._cpu0["system"], 6),
            "gc_counts": list(gc.get_count()),
            "gc_collections": self.gc_tracker.collections,
            "gc_pause_s": round(self.gc_tracker.pause_total_s, 6),
            "gc_pause_max_s": round(self.gc_tracker.pause_max_s, 6),
            "gc_windows": int(suspension["windows"]),
            "gc_suspended_s": round(suspension["suspended_s"], 6),
        }

    def summary(self) -> Dict:
        """Closing aggregates (merged into the final metrics snapshot)."""
        cpu = cpu_times()
        suspension = _suspension_stats()
        out = {
            "samples": self.samples,
            "interval_s": self.interval,
            "peak_rss_bytes": self.peak_rss,
            "cpu_user_s": round(cpu["user"] - self._cpu0["user"], 6),
            "cpu_sys_s": round(cpu["system"] - self._cpu0["system"], 6),
            "gc_windows": int(suspension["windows"]),
            "gc_suspended_s": round(suspension["suspended_s"], 6),
        }
        out.update(self.gc_tracker.summary())
        return out
