"""The normalized mapper-statistics schema.

Every mapper in this library — the optimal TOQM A* search, the practical
heuristic variant, and all baselines — attaches a ``stats`` dict to its
:class:`~repro.core.result.MappingResult`.  Before this module existed each
mapper invented its own keys, which made cross-mapper tabulation (the
Table 3 workflow in :mod:`repro.analysis.compare`) impossible without
special-casing.  This module is the single source of truth for the shared
key names; :func:`base_stats` builds a conforming dict and
:func:`validate_stats` checks one.

The *required* keys every mapper emits:

========================  =====================================================
key                       meaning
========================  =====================================================
``mapper``                canonical mapper name (see ``MAPPER_*`` constants)
``nodes_expanded``        search states expanded (routing steps for
                          non-search mappers)
``nodes_generated``       successor states generated (candidates scored for
                          non-search mappers)
``filtered_equivalent``   nodes dropped by the equivalence check (0 when the
                          mapper has no filter)
``filtered_dominated``    nodes dropped by the dominance check (0 when the
                          mapper has no filter)
``seconds``               wall-clock mapping time
========================  =====================================================

Mappers are free to add extra keys (``distinct_states``, ``layer_swaps``,
``queue_trims``, ...) on top of the required set; consumers that want
uniform rows restrict themselves to :data:`REQUIRED_STAT_KEYS`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

# -- required keys ------------------------------------------------------
STAT_MAPPER = "mapper"
STAT_NODES_EXPANDED = "nodes_expanded"
STAT_NODES_GENERATED = "nodes_generated"
STAT_FILTERED_EQUIVALENT = "filtered_equivalent"
STAT_FILTERED_DOMINATED = "filtered_dominated"
STAT_SECONDS = "seconds"

#: Keys every mapper's ``MappingResult.stats`` must contain.
REQUIRED_STAT_KEYS = (
    STAT_MAPPER,
    STAT_NODES_EXPANDED,
    STAT_NODES_GENERATED,
    STAT_FILTERED_EQUIVALENT,
    STAT_FILTERED_DOMINATED,
    STAT_SECONDS,
)

# -- common optional keys (shared spelling, not required) ---------------
STAT_KILLED = "killed"
STAT_REDUNDANT = "redundant"
STAT_DISTINCT_STATES = "distinct_states"
STAT_QUEUE_TRIMS = "queue_trims"
STAT_BUDGET_REASON = "budget_reason"
# Branch-and-bound counters of the exact search (optional, optimal mode):
STAT_PRUNED_BY_BOUND = "pruned_by_bound"
STAT_INCUMBENT_UPDATES = "incumbent_updates"
STAT_INCUMBENT_DEPTH = "incumbent_depth"
STAT_SWAPS_RESTRICTED = "swaps_restricted"
STAT_SYMMETRY_PRUNED = "symmetry_pruned"
STAT_MODE2_ROOTS = "mode2_roots"
# Literature-grade bound counters (optional, optimal mode — see
# repro.core.bounds for the derivations):
STAT_PRUNED_BY_ASSIGNMENT = "pruned_by_assignment_lb"
STAT_PRUNED_BY_LAYER_WEIGHT = "pruned_by_layer_weight"
STAT_ROOT_RESTRICTED = "root_candidates_restricted"
STAT_CLOSED_DOMINATED = "closed_dominated"
# Portfolio-lane counters (portfolio mapper only):
STAT_LANES_FINISHED = "lanes_finished"
STAT_WINNER_LANE = "winner_lane"
# Which kernel backend scored/filtered the search (pure/vector/compiled):
STAT_KERNEL_BACKEND = "kernel_backend"

# -- canonical mapper names ---------------------------------------------
MAPPER_TOQM_OPTIMAL = "toqm-optimal"
MAPPER_TOQM_HEURISTIC = "toqm-heuristic"
MAPPER_SABRE = "sabre"
MAPPER_ZULEHNER = "zulehner"
MAPPER_OLSQ_STYLE = "olsq-style"
MAPPER_TRIVIAL = "trivial"
MAPPER_PORTFOLIO = "portfolio"

MAPPER_NAMES = (
    MAPPER_TOQM_OPTIMAL,
    MAPPER_TOQM_HEURISTIC,
    MAPPER_SABRE,
    MAPPER_ZULEHNER,
    MAPPER_OLSQ_STYLE,
    MAPPER_TRIVIAL,
    MAPPER_PORTFOLIO,
)


def base_stats(
    mapper: str,
    nodes_expanded: int = 0,
    nodes_generated: int = 0,
    filtered_equivalent: int = 0,
    filtered_dominated: int = 0,
    seconds: float = 0.0,
    **extra,
) -> Dict[str, float]:
    """Build a stats dict conforming to the normalized schema.

    Args:
        mapper: Canonical mapper name (one of :data:`MAPPER_NAMES`, though
            custom names are allowed for external mappers).
        nodes_expanded: Search states expanded.
        nodes_generated: Successor states generated.
        filtered_equivalent: Equivalence-filter drops.
        filtered_dominated: Dominance-filter drops.
        seconds: Wall-clock mapping time.
        **extra: Mapper-specific additions layered on top.

    Returns:
        A dict containing at least :data:`REQUIRED_STAT_KEYS`.
    """
    stats: Dict[str, float] = {
        STAT_MAPPER: mapper,
        STAT_NODES_EXPANDED: nodes_expanded,
        STAT_NODES_GENERATED: nodes_generated,
        STAT_FILTERED_EQUIVALENT: filtered_equivalent,
        STAT_FILTERED_DOMINATED: filtered_dominated,
        STAT_SECONDS: seconds,
    }
    stats.update(extra)
    return stats


def missing_stat_keys(stats: Dict[str, float]) -> List[str]:
    """Required keys absent from ``stats`` (empty list ⇔ conforming)."""
    return [key for key in REQUIRED_STAT_KEYS if key not in stats]


def validate_stats(stats: Dict[str, float]) -> None:
    """Raise ``ValueError`` when ``stats`` misses required schema keys."""
    missing = missing_stat_keys(stats)
    if missing:
        raise ValueError(
            f"stats dict missing required keys: {', '.join(missing)}"
        )


def stats_row(
    stats: Dict[str, float], keys: Iterable[str] = REQUIRED_STAT_KEYS
) -> Dict[str, float]:
    """Project ``stats`` onto ``keys`` (absent keys become ``None``)."""
    return {key: stats.get(key) for key in keys}
