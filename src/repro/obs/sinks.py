"""Telemetry sinks: where span/metric/event records go.

A *record* is a plain JSON-serializable dict with a ``"type"`` key
(``"span"``, ``"metrics"``, ``"progress"``, ``"run"``).  Sinks are
deliberately tiny — the hot search loop never talks to a sink directly;
the :class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.telemetry.Telemetry` emit finished records only.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional


class Sink:
    """Abstract record consumer.

    Every sink is a context manager: ``with JsonlSink(path) as sink:``
    guarantees :meth:`close` runs even when the run inside aborts.
    """

    def emit(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class MemorySink(Sink):
    """Keeps records in a list — for tests and in-process consumers."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def of_type(self, record_type: str) -> List[Dict]:
        """All collected records with the given ``"type"``."""
        return [r for r in self.records if r.get("type") == record_type]


class JsonlSink(Sink):
    """Appends one JSON object per line to a file.

    The file is opened lazily on the first record and flushed after every
    write, so a run killed by a budget exception still leaves a readable
    (if truncated) telemetry trail.

    Lifecycle: the *first* open truncates (``"w"``) so each sink owns a
    fresh trail; an ``emit()`` after :meth:`close` reopens in **append**
    mode — earlier this reopened in ``"w"`` and silently destroyed every
    record already written.  Pass ``append=True`` to never truncate
    (fleet workers appending to a shared shard across chunks).

    ``emit`` is thread-safe: the resource sampler and profiler threads
    share one sink with the main search thread, so the write+flush pair
    is serialized under a lock (records never interleave mid-line).
    Each record is also written with a *single* ``write()`` of
    ``line + "\\n"``: in append mode that rides O_APPEND semantics, so
    separate processes appending to one file (concurrently-written run
    ledgers) can interleave only at record boundaries — a reader racing
    the writer sees at worst a truncated tail, which :func:`read_jsonl`
    tolerates unless ``strict=True``.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self._handle = None
        self._opened_once = append
        self._lock = threading.Lock()

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, default=_json_default)
        with self._lock:
            if self._handle is None:
                mode = "a" if self._opened_once else "w"
                self._handle = open(self.path, mode, encoding="utf-8")
                self._opened_once = True
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class FanoutSink(Sink):
    """Broadcasts every record to several child sinks."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, record: Dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_default(value):
    """Serialize the odd non-JSON value (tuples arrive as lists anyway)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def read_jsonl(path: str, strict: bool = False) -> List[Dict]:
    """Parse a telemetry JSONL file back into records.

    A run killed mid-write (budget trip, SIGKILL, full disk) can leave a
    truncated final line; that must not make the whole trail unreadable,
    so a malformed *last* line is silently dropped.  Malformed lines with
    valid records after them indicate real corruption (not a torn tail)
    and always raise ``ValueError`` with the line number; ``strict=True``
    raises for the truncated-tail case too.
    """
    records: List[Dict] = []
    pending: Optional[tuple] = None  # (line_number, error) of a bad line
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                raise ValueError(
                    f"{path}:{pending[0]}: corrupt JSONL record "
                    f"({pending[1]})"
                )
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                pending = (number, exc)
    if pending is not None and strict:
        raise ValueError(
            f"{path}:{pending[0]}: truncated JSONL record ({pending[1]})"
        )
    return records
