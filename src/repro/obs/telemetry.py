"""The `Telemetry` facade: one handle bundling tracer + metrics + events.

Every mapper accepts an optional ``telemetry`` argument.  ``None`` (the
default) resolves to :data:`NULL_TELEMETRY`, whose ``enabled`` flag lets
hot loops skip all instrumentation with a single attribute read — the
no-sinks path stays near-zero overhead so tier-1 timings are unaffected.

Typical wiring::

    from repro.obs import Telemetry

    telemetry = Telemetry.to_jsonl("run.jsonl", trace=True)
    telemetry.progress.subscribe(print)
    mapper = OptimalMapper(coupling, telemetry=telemetry)
    try:
        result = mapper.map(circuit)
    finally:
        telemetry.finish()        # final metrics snapshot + sink close

The JSONL stream interleaves ``span`` records (as they finish),
``progress`` records (every ``progress_every`` expansions) and
``metrics`` records (snapshots, always at least the final one).
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import ProgressPublisher, SearchProgressEvent
from .metrics import MetricsRegistry
from .sinks import JsonlSink, Sink
from .tracer import NULL_TRACER, Tracer

#: Default expansion cadence for progress events.
DEFAULT_PROGRESS_EVERY = 1000


class Telemetry:
    """Shared observability context for one (or several) mapping runs.

    Args:
        trace: Record spans (off by default — spans are the costly part).
        sink: Destination for span/progress/metrics records.
        progress_every: Emit a progress event every N expansions.
        max_spans: Span-recording cap forwarded to the tracer.
        search_trace: Optional
            :class:`~repro.obs.trace.TraceRecorder` — the expansion-level
            search trace with prune attribution.  Carried here (rather
            than as another mapper argument) so one handle still wires
            everything; :meth:`finish` closes it.
    """

    def __init__(
        self,
        trace: bool = False,
        sink: Optional[Sink] = None,
        progress_every: int = DEFAULT_PROGRESS_EVERY,
        max_spans: Optional[int] = None,
        search_trace=None,
    ) -> None:
        self.enabled = True
        self.sink = sink
        if trace:
            kwargs = {} if max_spans is None else {"max_spans": max_spans}
            self.tracer = Tracer(sink=sink, **kwargs)
        else:
            self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self.progress = ProgressPublisher()
        self.progress_every = max(1, progress_every)
        self.search_trace = search_trace
        self._finished = False

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        """A no-op context: ``enabled`` False, null tracer, dead metrics."""
        telemetry = cls()
        telemetry.enabled = False
        return telemetry

    @classmethod
    def to_jsonl(
        cls,
        path: str,
        trace: bool = True,
        progress_every: int = DEFAULT_PROGRESS_EVERY,
        max_spans: Optional[int] = None,
    ) -> "Telemetry":
        """Telemetry persisting every record to a JSONL file."""
        return cls(
            trace=trace,
            sink=JsonlSink(path),
            progress_every=progress_every,
            max_spans=max_spans,
        )

    # ------------------------------------------------------------------
    def publish_progress(self, event: SearchProgressEvent) -> None:
        """Deliver a progress event to subscribers and the sink."""
        self.progress.publish(event)
        if self.sink is not None:
            self.sink.emit(event.to_record())

    def emit_metrics_snapshot(self, label: str = "snapshot") -> Dict:
        """Snapshot every instrument; emit to the sink; return the record.

        Safe to call at any point — mappers call it on normal completion
        *and* from budget-exception paths, so partial runs keep their
        counters.
        """
        record = {
            "type": "metrics",
            "label": label,
            "metrics": self.metrics.snapshot(),
        }
        if self.sink is not None:
            self.sink.emit(record)
        return record

    def finish(self, label: str = "final") -> Optional[Dict]:
        """Emit the final metrics snapshot and close the sink (idempotent).

        Also flushes and closes the attached ``search_trace`` recorder,
        so ring-mode trace contents reach their file.
        """
        if self._finished or not self.enabled:
            return None
        self._finished = True
        record = self.emit_metrics_snapshot(label=label)
        if self.search_trace is not None:
            self.search_trace.close()
        if self.sink is not None:
            self.sink.close()
        return record


#: Module-wide disabled instance; mappers use it when given ``telemetry=None``.
NULL_TELEMETRY = Telemetry.disabled()


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or the shared disabled instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
