"""The `Telemetry` facade: one handle bundling tracer + metrics + events.

Every mapper accepts an optional ``telemetry`` argument.  ``None`` (the
default) resolves to :data:`NULL_TELEMETRY`, whose ``enabled`` flag lets
hot loops skip all instrumentation with a single attribute read — the
no-sinks path stays near-zero overhead so tier-1 timings are unaffected.

Typical wiring::

    from repro.obs import Telemetry

    telemetry = Telemetry.to_jsonl("run.jsonl", trace=True)
    telemetry.progress.subscribe(print)
    mapper = OptimalMapper(coupling, telemetry=telemetry)
    try:
        result = mapper.map(circuit)
    finally:
        telemetry.finish()        # final metrics snapshot + sink close

The JSONL stream interleaves ``span`` records (as they finish),
``progress`` records (every ``progress_every`` expansions), ``metrics``
records (snapshots, always at least the final one), and — when the
flight recorder is on — periodic ``resource`` records plus one final
``profile`` record.

Flight recorder: ``sample_resources=True`` runs a background
:class:`~repro.obs.runtime.ResourceSampler` (RSS / CPU / GC pauses);
``profile=True`` runs a :class:`~repro.obs.profiler.SamplingProfiler`
attributing wall-clock samples to the open span stack and the kernel
backend.  Both observe *from outside* the search thread, so they
compose with ``hot_path=False`` — a telemetry whose ``enabled`` flag is
off keeps the mapper on the uninstrumented fast path while the recorder
still captures the run (the configuration the overhead gate in
``tests/test_runtime_obs.py`` certifies at <5%).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from .events import ProgressPublisher, SearchProgressEvent
from .metrics import MetricsRegistry
from .profiler import DEFAULT_PROFILE_INTERVAL, SamplingProfiler
from .runtime import DEFAULT_RESOURCE_INTERVAL, ResourceSampler
from .sinks import JsonlSink, Sink
from .tracer import NULL_TRACER, Tracer

#: Default expansion cadence for progress events.
DEFAULT_PROGRESS_EVERY = 1000


class Telemetry:
    """Shared observability context for one (or several) mapping runs.

    Args:
        trace: Record spans (off by default — spans are the costly part).
        sink: Destination for span/progress/metrics records.
        progress_every: Emit a progress event every N expansions.
        max_spans: Span-recording cap forwarded to the tracer.
        search_trace: Optional
            :class:`~repro.obs.trace.TraceRecorder` — the expansion-level
            search trace with prune attribution.  Carried here (rather
            than as another mapper argument) so one handle still wires
            everything; :meth:`finish` closes it.
        sample_resources: Start a background resource sampler emitting
            ``type="resource"`` records into ``sink``.
        resource_interval: Seconds between resource samples.
        profile: Start a sampling wall-clock profiler targeting the
            constructing thread; its top-N attribution rides the final
            metrics snapshot and one ``type="profile"`` record.
        profile_interval: Seconds between profile stack samples.
        profile_collapsed: Path for the folded-stack flamegraph file
            written when the profiler stops.
        hot_path: Sets ``enabled`` — whether mappers run their
            *instrumented* search branch (spans/metrics/progress).  Keep
            the default for span-level telemetry; pass ``False`` to fly
            the flight recorder over the uninstrumented fast path.
        run_id: Correlation ID stamped onto every progress event and
            metrics snapshot this handle emits.  Set by the CLI from the
            run-ledger entry (:mod:`repro.obs.ledger`) so fleet shards,
            lane events and rollups all name the request they serve.
    """

    def __init__(
        self,
        trace: bool = False,
        sink: Optional[Sink] = None,
        progress_every: int = DEFAULT_PROGRESS_EVERY,
        max_spans: Optional[int] = None,
        search_trace=None,
        sample_resources: bool = False,
        resource_interval: float = DEFAULT_RESOURCE_INTERVAL,
        profile: bool = False,
        profile_interval: float = DEFAULT_PROFILE_INTERVAL,
        profile_collapsed: Optional[str] = None,
        hot_path: bool = True,
        run_id: Optional[str] = None,
    ) -> None:
        self.enabled = hot_path
        self.run_id = run_id
        self.sink = sink
        if trace:
            kwargs = {} if max_spans is None else {"max_spans": max_spans}
            self.tracer = Tracer(sink=sink, **kwargs)
        else:
            self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self.progress = ProgressPublisher()
        self.progress_every = max(1, progress_every)
        self.search_trace = search_trace
        self.sampler: Optional[ResourceSampler] = None
        self.profiler: Optional[SamplingProfiler] = None
        if sample_resources:
            self.sampler = ResourceSampler(
                sink=sink, metrics=self.metrics, interval=resource_interval
            ).start()
        if profile:
            self.profiler = SamplingProfiler(
                interval=profile_interval,
                tracer=self.tracer if trace else None,
                sink=sink,
                metrics=self.metrics,
                collapsed_path=profile_collapsed,
            ).start()
        #: Records dropped because they arrived after :meth:`finish` —
        #: the sink is closed by then, so late emits are counted, not
        #: silently resurrecting (and truncating) the file.
        self.dropped_after_finish = 0
        self._finished = False

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        """A no-op context: ``enabled`` False, null tracer, dead metrics."""
        return cls(hot_path=False)

    @classmethod
    def to_jsonl(
        cls,
        path: str,
        trace: bool = True,
        progress_every: int = DEFAULT_PROGRESS_EVERY,
        max_spans: Optional[int] = None,
        **flight_recorder,
    ) -> "Telemetry":
        """Telemetry persisting every record to a JSONL file.

        ``**flight_recorder`` forwards the runtime options
        (``sample_resources`` / ``profile`` / intervals / ``hot_path``).
        """
        return cls(
            trace=trace,
            sink=JsonlSink(path),
            progress_every=progress_every,
            max_spans=max_spans,
            **flight_recorder,
        )

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` ran — emits are dropped from then on."""
        return self._finished

    # ------------------------------------------------------------------
    def publish_progress(self, event: SearchProgressEvent) -> None:
        """Deliver a progress event to subscribers and the sink.

        Guarded against finished telemetry: the sink is closed after
        :meth:`finish`, and an emit through a closed ``JsonlSink`` used
        to reopen-and-truncate the file — late events are counted in
        ``dropped_after_finish`` instead.
        """
        if self._finished:
            self.dropped_after_finish += 1
            return
        if self.run_id is not None:
            # Stamp the correlation ID before fan-out so subscribers and
            # the sink record agree on which run the event belongs to.
            event.extra.setdefault("run_id", self.run_id)
        self.progress.publish(event)
        if self.sink is not None:
            self.sink.emit(event.to_record())

    def emit_metrics_snapshot(self, label: str = "snapshot") -> Optional[Dict]:
        """Snapshot every instrument; emit to the sink; return the record.

        Safe to call at any point — mappers call it on normal completion
        *and* from budget-exception paths, so partial runs keep their
        counters.  Returns ``None`` (and counts the drop) once the
        telemetry is finished.
        """
        if self._finished:
            self.dropped_after_finish += 1
            return None
        record = self._snapshot_record(label)
        if self.sink is not None:
            self.sink.emit(record)
        return record

    def _snapshot_record(self, label: str) -> Dict:
        record = {
            "type": "metrics",
            "label": label,
            "metrics": self.metrics.snapshot(),
        }
        if self.run_id is not None:
            record["run_id"] = self.run_id
        if self.sampler is not None:
            record["resources"] = self.sampler.summary()
        if self.profiler is not None:
            record["profile"] = self.profiler.report()
        return record

    def finish(self, label: str = "final") -> Optional[Dict]:
        """Stop the flight recorder, emit the final metrics snapshot and
        close the sink (idempotent).

        Also flushes and closes the attached ``search_trace`` recorder,
        so ring-mode trace contents reach their file.  The final
        snapshot carries the resource summary (peak RSS, CPU, GC
        pauses) and the profiler's top-N attribution tables.
        """
        if self._finished:
            return None
        if (
            not self.enabled
            and self.sampler is None
            and self.profiler is None
        ):
            # Pure no-op context (NULL_TELEMETRY): leave it reusable.
            return None
        if self.sampler is not None:
            self.sampler.stop()
        if self.profiler is not None:
            self.profiler.stop()
        record = self._snapshot_record(label)
        if self.sink is not None:
            self.sink.emit(record)
        self._finished = True
        if self.search_trace is not None:
            self.search_trace.close()
        if self.sink is not None:
            self.sink.close()
        return record


#: Module-wide disabled instance; mappers use it when given ``telemetry=None``.
NULL_TELEMETRY = Telemetry.disabled()


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or the shared disabled instance."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


# ----------------------------------------------------------------------
# Fleet telemetry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetrySpec:
    """Picklable recipe for per-worker telemetry in process pools.

    Live :class:`Telemetry` handles cannot cross a process boundary
    (sinks hold file handles; samplers hold threads), so fleet runs ship
    this spec instead — the same idiom as
    :class:`~repro.obs.trace.TraceSpec`.  Each pool worker calls
    :meth:`build` once and writes its own JSONL *shard*
    (``worker-<pid>.jsonl``) under ``directory``; the coordinator merges
    shards into a fleet rollup afterwards
    (:func:`repro.obs.export.fleet_rollup`).

    Worker telemetry flies the flight recorder over the uninstrumented
    search fast path (``hot_path=False``): resource sampling and
    per-task ``worker_task`` records cost nothing per node expanded, so
    fleet throughput is unchanged.
    """

    directory: str
    sample_resources: bool = True
    resource_interval: float = DEFAULT_RESOURCE_INTERVAL
    profile: bool = False
    profile_interval: float = DEFAULT_PROFILE_INTERVAL
    #: Correlation ID of the coordinating run (ledger run_id).  Frozen
    #: into the spec so every worker process stamps it onto its
    #: ``worker_meta`` / ``worker_task`` records without extra plumbing.
    run_id: Optional[str] = None

    def shard_path(self, worker_id) -> str:
        return os.path.join(self.directory, f"worker-{worker_id}.jsonl")

    def build(self, worker_id) -> Telemetry:
        """Worker-side telemetry appending to this worker's shard."""
        os.makedirs(self.directory, exist_ok=True)
        return Telemetry(
            sink=JsonlSink(self.shard_path(worker_id), append=True),
            sample_resources=self.sample_resources,
            resource_interval=self.resource_interval,
            profile=self.profile,
            profile_interval=self.profile_interval,
            hot_path=False,
            run_id=self.run_id,
        )
