"""Expansion-level search tracing with exact prune attribution.

End-of-run counters (``MappingResult.stats``) say *how much* each
search-space reduction pruned; they cannot say *where* in the search a
rule fired or *which* rule killed a given subtree.  A
:class:`TraceRecorder` captures that: one compact JSONL record per pop
(node id, parent id, cycle, g/h/f, heap size, action class) plus a
*prune record* naming the exact rule every time a node or subtree is
discarded:

============================  ==========================================
reason tag                    rule (where it lives)
============================  ==========================================
``incumbent_bound``           push/pop f-prune against the incumbent
                              upper bound (``astar.push`` / pop re-check)
``ideal_depth_bound``         mode-2 prefix prune against the all-to-all
                              critical path (``ideal_lb``)
``equivalence``               Fig. 5a equivalence hit (``StateFilter``)
``dominance``                 Fig. 5b newcomer dominated by a stored node
``dominance_kill``            stored node lazily killed by a dominating
                              newcomer
``incumbent_bound_kill``      stored node killed when the incumbent
                              tightened (``kill_above_bound``)
``swap_restriction``          active-SWAP candidate restriction
                              (``startable_actions``)
``symmetry_quotient``         mode-2 automorphism orbit deduplication
``assignment_lb``             per-node assignment-relaxation work bound
                              (``core.bounds.assignment_lb``)
``layer_weight``              layer-weight depth floor
                              (``core.bounds.layer_weight_lb``)
``root_restriction``          mode-2 root-mapping candidate restriction
                              (``core.bounds.root_mapping_allowed``)
``closed_dominance``          dominance by a closed in-flight-free node
                              (``StateFilter(closed_dominance=True)``)
============================  ==========================================

Records carry ``"type": "trace"`` so they interleave cleanly with the
existing telemetry record types (``span`` / ``metrics`` / ``progress``)
in one JSONL stream.  Three capture modes keep full QFT-8 runs
tractable:

* ``full`` — every record (the only mode whose per-record stream is
  *complete*; ``repro diagnose`` reproduces the run's counters exactly
  from it);
* ``ring`` — a bounded ring buffer of expand/prune records (the newest
  ``ring_size`` survive); incumbent/solution/summary records are pinned
  and never evicted;
* ``sample`` — record every ``sample_every``-th expand/prune record.

Whatever the mode, the recorder keeps **exact** per-reason counts
internally and emits them in the final ``summary`` record, so the
attribution totals are always trustworthy — only the per-record detail
is subject to eviction/sampling.

Fan-out integration: a recorder is not picklable (it may own a file
sink), so the mode-2 coordinator ships a :class:`TraceSpec` to each
worker; the worker records in memory (``keep_records``), returns
``drain()`` with its outcome, and the coordinator re-emits the chunk
through :meth:`TraceRecorder.emit_raw` with a ``root`` tag added.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from .sinks import Sink

# --- capture modes -----------------------------------------------------
MODE_FULL = "full"
MODE_RING = "ring"
MODE_SAMPLE = "sample"
TRACE_MODES = (MODE_FULL, MODE_RING, MODE_SAMPLE)

DEFAULT_RING_SIZE = 65536
DEFAULT_SAMPLE_EVERY = 64

# --- event kinds -------------------------------------------------------
EV_EXPAND = "expand"
EV_PRUNE = "prune"
EV_INCUMBENT = "incumbent"
EV_SOLUTION = "solution"
EV_SUMMARY = "summary"

#: Events never evicted from the ring and never sampled out — they are
#: rare and each one matters (incumbent timeline, solution identity,
#: exact final counts).
PINNED_EVENTS = frozenset({EV_INCUMBENT, EV_SOLUTION, EV_SUMMARY})

# --- prune attribution tags --------------------------------------------
PRUNE_INCUMBENT_BOUND = "incumbent_bound"
PRUNE_IDEAL_DEPTH = "ideal_depth_bound"
PRUNE_EQUIVALENCE = "equivalence"
PRUNE_DOMINANCE = "dominance"
PRUNE_DOMINANCE_KILL = "dominance_kill"
PRUNE_BOUND_KILL = "incumbent_bound_kill"
PRUNE_SWAP_RESTRICTION = "swap_restriction"
PRUNE_SYMMETRY = "symmetry_quotient"
PRUNE_ASSIGNMENT_LB = "assignment_lb"
PRUNE_LAYER_WEIGHT = "layer_weight"
PRUNE_ROOT_RESTRICTION = "root_restriction"
PRUNE_CLOSED_DOMINANCE = "closed_dominance"

#: Which ``MappingResult.stats`` counter each reason feeds — the exact
#: correspondence ``repro diagnose`` uses to reconcile a full trace
#: against the run's reported counters.
REASON_TO_STAT: Dict[str, str] = {
    PRUNE_INCUMBENT_BOUND: "pruned_by_bound",
    PRUNE_IDEAL_DEPTH: "pruned_by_bound",
    PRUNE_EQUIVALENCE: "filtered_equivalent",
    PRUNE_DOMINANCE: "filtered_dominated",
    PRUNE_DOMINANCE_KILL: "killed",
    PRUNE_BOUND_KILL: "killed",
    PRUNE_SWAP_RESTRICTION: "swaps_restricted",
    PRUNE_SYMMETRY: "symmetry_pruned",
    PRUNE_ASSIGNMENT_LB: "pruned_by_assignment_lb",
    PRUNE_LAYER_WEIGHT: "pruned_by_layer_weight",
    PRUNE_ROOT_RESTRICTION: "root_candidates_restricted",
    PRUNE_CLOSED_DOMINANCE: "closed_dominated",
}

#: Incumbent-record provenance values.
INCUMBENT_SEED = "seed"
INCUMBENT_TERMINAL = "terminal"
INCUMBENT_SHARED = "shared"


@dataclass(frozen=True)
class TraceSpec:
    """Picklable recipe for rebuilding a recorder in a fan-out worker."""

    mode: str = MODE_FULL
    ring_size: int = DEFAULT_RING_SIZE
    sample_every: int = DEFAULT_SAMPLE_EVERY


def _action_class(node) -> str:
    """Coarse label for the action set that created ``node``."""
    if node.parent is None:
        return "root"
    if node.in_prefix:
        return "prefix"
    actions = node.actions
    if not actions:
        return "wait"
    kinds = {action[0] for action in actions}
    if kinds == {"g"}:
        return "gates"
    if kinds == {"s"}:
        return "swaps"
    return "mixed"


class TraceRecorder:
    """Low-overhead per-expansion search trace.

    Args:
        sink: Destination for trace records; ``None`` keeps them in
            memory (see ``keep_records``).
        mode: ``"full"``, ``"ring"`` or ``"sample"``.
        ring_size: Ring capacity for ``"ring"`` mode.
        sample_every: Keep every Nth expand/prune record in ``"sample"``
            mode.
        keep_records: Mirror emitted records into ``self.records`` (the
            default when no sink is given — fan-out workers drain this).
        owns_sink: Close the sink from :meth:`close` (the CLI hands the
            recorder a dedicated file sink; set False when sharing).

    The search loop only ever calls :meth:`expand` / :meth:`prune` /
    :meth:`incumbent` / :meth:`solution` — each is a dict build plus one
    sink/list append, and each call site is guarded by a single
    ``trace is not None`` check so the untraced path cost is unchanged.
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        mode: str = MODE_FULL,
        ring_size: int = DEFAULT_RING_SIZE,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        keep_records: Optional[bool] = None,
        owns_sink: bool = True,
    ) -> None:
        if mode not in TRACE_MODES:
            raise ValueError(
                f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}"
            )
        self.sink = sink
        self.mode = mode
        self.ring_size = max(1, int(ring_size))
        self.sample_every = max(1, int(sample_every))
        self.owns_sink = owns_sink
        if keep_records is None:
            keep_records = sink is None
        self.records: Optional[List[Dict]] = [] if keep_records else None
        self._ring: Optional[deque] = (
            deque(maxlen=self.ring_size) if mode == MODE_RING else None
        )
        self._pinned: List[Dict] = []
        # Exact totals, maintained regardless of eviction/sampling.
        self.expansions = 0
        self.counts: Dict[str, int] = {}
        self.evicted = 0
        self.sampled_out = 0
        self._samplable = 0
        self._next_id = 0
        self._t0 = _time.perf_counter()
        self._closed = False

    # -- wiring --------------------------------------------------------
    def spec(self) -> TraceSpec:
        """The picklable recipe matching this recorder's capture mode."""
        return TraceSpec(
            mode=self.mode,
            ring_size=self.ring_size,
            sample_every=self.sample_every,
        )

    @classmethod
    def from_spec(cls, spec: TraceSpec) -> "TraceRecorder":
        """In-memory recorder for a fan-out worker (drained, not sunk)."""
        return cls(
            sink=None,
            mode=spec.mode,
            ring_size=spec.ring_size,
            sample_every=spec.sample_every,
            keep_records=True,
        )

    def node_id(self, node) -> int:
        """Stable per-recorder id for ``node`` (assigned on first use)."""
        tid = node._tid
        if tid < 0:
            tid = self._next_id
            self._next_id += 1
            node._tid = tid
        return tid

    @property
    def complete(self) -> bool:
        """True when no expand/prune record was evicted or sampled out."""
        return self.evicted == 0 and self.sampled_out == 0

    # -- internal routing ----------------------------------------------
    def _out(self, record: Dict, pinned: bool = False) -> None:
        if self._ring is not None and not pinned:
            if len(self._ring) == self._ring.maxlen:
                self.evicted += 1
            self._ring.append(record)
            return
        if self._ring is not None:
            self._pinned.append(record)
            return
        if self.sink is not None:
            self.sink.emit(record)
        if self.records is not None:
            self.records.append(record)

    def _take_sample(self) -> bool:
        """Stride counter over samplable events; True keeps the record."""
        take = self._samplable % self.sample_every == 0
        self._samplable += 1
        return take

    # -- recording API ---------------------------------------------------
    def expand(self, node, heap_size: int) -> None:
        """Record one pop/expansion of ``node``."""
        self.expansions += 1
        nid = self.node_id(node)
        parent = node.parent
        pid = self.node_id(parent) if parent is not None else -1
        if self.mode == MODE_SAMPLE and not self._take_sample():
            self.sampled_out += 1
            return
        self._out({
            "type": "trace",
            "ev": EV_EXPAND,
            "idx": self.expansions - 1,
            "node": nid,
            "parent": pid,
            "cycle": node.time,
            "h": node.h,
            "f": node.f,
            "heap": heap_size,
            "action": _action_class(node),
            "phase": "prefix" if node.in_prefix else "search",
        })

    def prune(self, reason: str, node=None, count: int = 1) -> None:
        """Attribute ``count`` discarded nodes/candidates to ``reason``.

        ``node`` is the attribution point: the discarded node itself for
        push/pop/filter prunes, or the *expanding* node whose candidate
        set was trimmed for ``swap_restriction`` / prefix
        ``symmetry_quotient`` (the trimmed siblings were never built).
        """
        self.counts[reason] = self.counts.get(reason, 0) + count
        if self.mode == MODE_SAMPLE and not self._take_sample():
            self.sampled_out += 1
            return
        record: Dict = {
            "type": "trace",
            "ev": EV_PRUNE,
            "idx": self.expansions,
            "reason": reason,
        }
        if count != 1:
            record["count"] = count
        if node is not None:
            record["node"] = self.node_id(node)
            parent = node.parent
            record["parent"] = (
                self.node_id(parent) if parent is not None else -1
            )
            record["cycle"] = node.time
            # ``f`` is only meaningful for bound prunes (push computes it
            # before pruning); filter rejections happen pre-heuristic.
            if reason in (PRUNE_INCUMBENT_BOUND, PRUNE_IDEAL_DEPTH,
                          PRUNE_ASSIGNMENT_LB, PRUNE_LAYER_WEIGHT):
                record["f"] = node.f
            record["phase"] = "prefix" if node.in_prefix else "search"
        self._out(record)

    def incumbent(self, depth: int, source: str) -> None:
        """Record an incumbent-bound tightening (the anytime timeline)."""
        self._out({
            "type": "trace",
            "ev": EV_INCUMBENT,
            "idx": self.expansions,
            "depth": depth,
            "source": source,
            "elapsed": round(_time.perf_counter() - self._t0, 6),
        }, pinned=True)

    def solution(self, node, depth: int) -> None:
        """Record a popped optimal terminal (anchors the path audit)."""
        parent = node.parent
        self._out({
            "type": "trace",
            "ev": EV_SOLUTION,
            "idx": self.expansions,
            "node": self.node_id(node),
            "parent": self.node_id(parent) if parent is not None else -1,
            "depth": depth,
            "elapsed": round(_time.perf_counter() - self._t0, 6),
        }, pinned=True)

    def summary(self, stats: Dict, scope: str = "search") -> None:
        """Record exact totals + the run's stats dict.

        ``scope="search"`` closes one search loop (each fan-out root
        emits its own); ``scope="aggregate"`` is the fan-out
        coordinator's cross-root total — the authoritative record
        ``repro diagnose`` reconciles against.
        """
        self._out({
            "type": "trace",
            "ev": EV_SUMMARY,
            "scope": scope,
            "mode": self.mode,
            "complete": self.complete,
            "expansions": self.expansions,
            "evicted": self.evicted,
            "sampled_out": self.sampled_out,
            "counts": {k: v for k, v in sorted(self.counts.items()) if v},
            "stats": dict(sorted(stats.items())),
        }, pinned=True)

    def emit_raw(self, record: Dict) -> None:
        """Pass a pre-built record through (fan-out chunk re-emission).

        Bypasses sampling (the producing worker already applied its own)
        and does **not** touch the exact counters — worker counts arrive
        through the aggregate stats, double-counting them here would
        skew the coordinator's own summary.
        """
        self._out(record, pinned=record.get("ev") in PINNED_EVENTS)

    def drain(self) -> List[Dict]:
        """Everything recorded so far, in order (worker → coordinator)."""
        if self._ring is not None:
            return list(self._ring) + list(self._pinned)
        return list(self.records or [])

    def close(self) -> None:
        """Flush ring contents to the sink and close it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._ring is not None and self.sink is not None:
            for record in self._ring:
                self.sink.emit(record)
            for record in self._pinned:
                self.sink.emit(record)
        if self.sink is not None and self.owns_sink:
            self.sink.close()
