"""Nested timed spans over the mapping hot path.

The :class:`Tracer` produces a tree of :class:`Span` objects — ``search``
at the root, with ``expand`` / ``heuristic`` / ``filter`` / ``prefix``
children — each carrying wall-clock start/end times and free-form
attributes.  Finished spans stream to an optional sink as JSONL records
(so a crashed or budget-killed run keeps its trail) and stay in memory
for the human-readable tree renderer.

Overhead discipline: callers that run with tracing disabled must never
construct span objects.  :data:`NULL_TRACER` exposes the same API with a
shared no-op span, and its ``enabled`` flag lets hot loops skip the
instrumented branch entirely — the disabled cost is one attribute read.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .sinks import Sink

#: Tracers stop recording past this many spans (the no-op span is handed
#: out instead) so a pathological run cannot exhaust memory or disk.
DEFAULT_MAX_SPANS = 100_000

# Span names used by the search instrumentation.
SPAN_SEARCH = "search"
SPAN_EXPAND = "expand"
SPAN_HEURISTIC = "heuristic"
SPAN_FILTER = "filter"
SPAN_PREFIX = "prefix"


class Span:
    """One timed region; usable as a context manager.

    Attributes:
        name: Span kind (``search``, ``expand``, ...).
        attrs: Free-form attributes recorded at open or via :meth:`set`.
        start: ``perf_counter`` timestamp at open.
        end: Timestamp at close (``None`` while open).
        children: Nested spans, in open order.
    """

    __slots__ = (
        "name", "attrs", "start", "end", "children", "span_id",
        "parent_id", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Seconds from open to close (to *now* while still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)

    def to_record(self, depth: int = 0) -> Dict:
        """Flat JSONL record for this span."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start, 6),
            "duration_ms": round(self.duration * 1000.0, 4),
            "depth": depth,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def set(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans; streams finished ones to an optional sink.

    Args:
        sink: Destination for finished-span records (``None`` keeps spans
            in memory only).
        max_spans: Recording cap; once reached, :meth:`span` returns the
            shared no-op span so long runs degrade gracefully.
    """

    def __init__(
        self, sink: Optional[Sink] = None, max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.enabled = True
        self.sink = sink
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._count = 0
        self.dropped = 0

    def span(self, name: str, **attrs):
        """Open a span nested under the currently-open one."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        self._count += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            name,
            span_id=self._count,
            parent_id=parent.span_id if parent is not None else None,
            attrs=attrs,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        # Spans close LIFO under context-manager discipline; tolerate an
        # exception unwinding several at once by popping to the span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.sink is not None:
            self.sink.emit(span.to_record(depth=len(self._stack)))

    @property
    def num_spans(self) -> int:
        """Spans recorded so far (excluding those dropped by the cap)."""
        return self._count

    def render_tree(self, max_children: int = 20) -> str:
        """Human-readable indented tree of all recorded spans.

        Args:
            max_children: Per-parent display cap; siblings beyond it are
                summarized in one ``... (+N more)`` line.
        """
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{k}={v}" for k, v in span.attrs.items()
            )
            lines.append(
                f"{'  ' * depth}{span.name:<10} "
                f"{span.duration * 1000.0:9.3f} ms"
                + (f"  {attrs}" if attrs else "")
            )
            shown = span.children[:max_children]
            for child in shown:
                walk(child, depth + 1)
            hidden = len(span.children) - len(shown)
            if hidden > 0:
                rest = sum(c.duration for c in span.children[max_children:])
                lines.append(
                    f"{'  ' * (depth + 1)}... (+{hidden} more spans, "
                    f"{rest * 1000.0:.3f} ms)"
                )

        for root in self.roots:
            walk(root, 0)
        if self.dropped:
            lines.append(f"... ({self.dropped} spans dropped by max_spans cap)")
        return "\n".join(lines)


class _NullTracer:
    """Disabled tracer: same surface, no work, no allocation."""

    __slots__ = ()
    enabled = False
    roots: List[Span] = []
    num_spans = 0
    dropped = 0

    def span(self, _name: str, **_attrs) -> _NullSpan:
        return NULL_SPAN

    def render_tree(self, max_children: int = 20) -> str:
        return ""


NULL_TRACER = _NullTracer()
