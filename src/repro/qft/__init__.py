"""Closed-form generalized QFT schedules (paper Section 6.1.1, Fig. 13)."""

from .grid2xn import (
    qft_2xn_depth_formula,
    qft_2xn_schedule,
    qft_2xn_steps,
)
from .grid2xn_constrained import (
    qft_2xn_constrained_depth_formula,
    qft_2xn_constrained_schedule,
    qft_2xn_constrained_steps,
)
from .lnn import qft_lnn_depth_formula, qft_lnn_schedule, qft_lnn_steps

__all__ = [
    "qft_lnn_steps",
    "qft_lnn_schedule",
    "qft_lnn_depth_formula",
    "qft_2xn_steps",
    "qft_2xn_schedule",
    "qft_2xn_depth_formula",
    "qft_2xn_constrained_steps",
    "qft_2xn_constrained_schedule",
    "qft_2xn_constrained_depth_formula",
]
