"""Shared helpers for the closed-form QFT schedules of Section 6.1.1.

The generalized solutions (Fig. 13) are *synchronous step schedules*: a
sequence of steps, each one cycle, where every operation in a step starts
simultaneously.  This module turns such step lists into verified
:class:`~repro.core.result.MappingResult` objects against the layered QFT
skeleton circuit (Fig. 10), so the pattern emitters stay tiny and every
claimed schedule goes through the same independent checker as the search.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.generators import qft_skeleton
from ..circuit.latency import QFT_LATENCY, LatencyModel
from ..core.result import MappingResult, ScheduledOp

#: A step operation: ``("g", logical_pair, physical_pair)`` for a GT gate or
#: ``("s", logical_pair, physical_pair)`` for a SWAP.
StepOp = Tuple[str, Tuple[int, int], Tuple[int, int]]


def gate_lookup(circuit: Circuit) -> Dict[Tuple[int, int], int]:
    """Map each unordered logical pair to its (unique) GT gate index."""
    table: Dict[Tuple[int, int], int] = {}
    for index, gate in enumerate(circuit):
        if gate.is_two_qubit:
            a, b = gate.qubits
            key = (min(a, b), max(a, b))
            if key in table:
                raise ValueError(f"pair {key} appears twice; not a QFT skeleton")
            table[key] = index
    return table


def result_from_steps(
    num_qubits: int,
    coupling: CouplingGraph,
    steps: Sequence[Sequence[StepOp]],
    initial_mapping: Sequence[int],
    latency: LatencyModel = QFT_LATENCY,
    pattern_name: str = "",
) -> MappingResult:
    """Assemble a synchronous step schedule into a MappingResult.

    Empty steps are skipped; every operation in step ``t`` starts at cycle
    ``t`` (the paper's convention that each sub-figure of Figs. 11/12/14 is
    one cycle — all QFT-analysis gates and SWAPs take one cycle).

    Args:
        num_qubits: QFT size ``n``.
        coupling: Target architecture.
        steps: The step list; see :data:`StepOp`.
        initial_mapping: Logical→physical starting positions.
        latency: Latency model (the QFT analysis uses all-ones).
        pattern_name: Stored in the result's stats.

    Returns:
        A :class:`MappingResult` over the layered QFT skeleton.
    """
    circuit = qft_skeleton(num_qubits, layered=True)
    lookup = gate_lookup(circuit)
    ops: List[ScheduledOp] = []
    cycle = 0
    for step in steps:
        if not step:
            continue
        step_duration = 0
        for kind, logical_pair, physical_pair in step:
            a, b = logical_pair
            if kind == "g":
                index = lookup[(min(a, b), max(a, b))]
                gate = circuit[index]
                duration = latency.gate_latency(gate)
                # Match operand order to the gate's stored order.
                if gate.qubits == (b, a):
                    logical_pair = (b, a)
                    physical_pair = (physical_pair[1], physical_pair[0])
                ops.append(
                    ScheduledOp(
                        gate_index=index,
                        name=gate.name,
                        logical_qubits=tuple(logical_pair),
                        physical_qubits=tuple(physical_pair),
                        start=cycle,
                        duration=duration,
                    )
                )
            else:
                duration = latency.swap_latency()
                ops.append(
                    ScheduledOp(
                        gate_index=None,
                        name="swap",
                        logical_qubits=tuple(logical_pair),
                        physical_qubits=tuple(physical_pair),
                        start=cycle,
                        duration=duration,
                    )
                )
            step_duration = max(step_duration, duration)
        cycle += step_duration
    ops.sort(key=lambda o: (o.start, o.physical_qubits))
    return MappingResult(
        circuit=circuit,
        coupling=coupling,
        latency=latency,
        initial_mapping=tuple(initial_mapping),
        ops=ops,
        depth=max((op.end for op in ops), default=0),
        optimal=False,
        stats={"pattern": pattern_name},
    )
