"""Generalized optimal QFT on the 2×N grid, SWAPs ∥ gates (Fig. 12 / 13b).

This is the schedule the paper reports discovering for the first time:
QFT-n on a 2×(n/2) lattice in ``3n + O(1)`` cycles (17 cycles for QFT-8,
matching Maslov's 3n+O(1) lower-bound prediction), with SWAPs and GT gates
running concurrently on the two rows.

Structure (column-major initial placement ``q_{2j+i} → Q_{i,j}``):

* a one-cycle prologue runs the single subscript-sum-1 gate GT(q0, q1);
* iteration ``i`` then runs three steps —

  1. GT on every even-subscript pair summing ``2i+2`` (top row),
     concurrently with SWAPs on every odd pair summing ``2i+4`` (bottom);
  2. GT on every pair summing ``2i+3`` (vertical, one per column);
  3. SWAPs on the even pairs summing ``2i+2`` (top row), concurrently with
     GT on the odd pairs summing ``2i+4`` (bottom row).

Every pair {a, b} is covered exactly once: odd sums vertically, even sums
horizontally on the row matching their parity.  Note the row pipelines are
offset — the bottom row SWAPs *before* its GT while the top row SWAPs
*after* — the gate/SWAP commutation the paper's Appendix B discusses.
Empty boundary steps vanish, giving depth ``3n − 7`` for even ``n ≥ 4``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..arch.library import grid
from ..core.result import MappingResult
from .common import StepOp, result_from_steps


def _pairs_with_sum(total: int, parity: int, n: int) -> List[Tuple[int, int]]:
    """Pairs {a, b}, a < b < n, a ≡ b ≡ parity (mod 2), a + b == total."""
    pairs = []
    for a in range(parity, total // 2, 2):
        b = total - a
        if a < b < n:
            pairs.append((a, b))
    return pairs


def _vertical_pairs(total: int, n: int) -> List[Tuple[int, int]]:
    """Pairs {a, b}, a < b < n, a + b == total (odd total ⇒ mixed parity)."""
    return [(a, total - a) for a in range((total + 1) // 2) if a < total - a < n]


class _Layout:
    """Tracks logical positions on the 2×N grid (column-major indexing)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.position: Dict[int, Tuple[int, int]] = {
            q: (q % 2, q // 2) for q in range(n)
        }

    def physical(self, q: int) -> int:
        """Physical index of logical qubit ``q`` (column-major)."""
        row, col = self.position[q]
        return 2 * col + row

    def swap(self, a: int, b: int) -> None:
        """Exchange the grid positions of logical qubits ``a``, ``b``."""
        self.position[a], self.position[b] = self.position[b], self.position[a]


def qft_2xn_steps(num_qubits: int) -> List[List[StepOp]]:
    """Step list of the mixed (SWAPs ∥ gates) 2×N schedule.

    Args:
        num_qubits: Even QFT size ``n >= 4``.
    """
    n = num_qubits
    if n < 4 or n % 2:
        raise ValueError("the 2xN schedule needs an even n >= 4")
    layout = _Layout(n)
    steps: List[List[StepOp]] = []

    # Prologue: the single sum-1 gate, vertically on column 0.
    steps.append([("g", (0, 1), (layout.physical(0), layout.physical(1)))])

    for i in range(0, n - 2):
        top_sum = 2 * i + 2
        vert_sum = 2 * i + 3
        bottom_sum = 2 * i + 4

        step_a: List[StepOp] = []
        for a, b in _pairs_with_sum(top_sum, 0, n):
            step_a.append(("g", (a, b), (layout.physical(a), layout.physical(b))))
        for a, b in _pairs_with_sum(bottom_sum, 1, n):
            step_a.append(("s", (a, b), (layout.physical(a), layout.physical(b))))
            layout.swap(a, b)
        steps.append(step_a)

        step_b: List[StepOp] = [
            ("g", (a, b), (layout.physical(a), layout.physical(b)))
            for a, b in _vertical_pairs(vert_sum, n)
        ]
        steps.append(step_b)

        step_c: List[StepOp] = []
        for a, b in _pairs_with_sum(top_sum, 0, n):
            step_c.append(("s", (a, b), (layout.physical(a), layout.physical(b))))
            layout.swap(a, b)
        for a, b in _pairs_with_sum(bottom_sum, 1, n):
            step_c.append(("g", (a, b), (layout.physical(a), layout.physical(b))))
        steps.append(step_c)
    return steps


def qft_2xn_schedule(num_qubits: int) -> MappingResult:
    """Verified mixed-mode schedule on ``grid(2, n/2)``.

    Returns:
        A :class:`MappingResult` with depth ``3·n − 7`` (17 for QFT-8,
        reproducing Fig. 12).
    """
    steps = qft_2xn_steps(num_qubits)
    return result_from_steps(
        num_qubits,
        grid(2, num_qubits // 2),
        steps,
        initial_mapping=list(range(num_qubits)),
        pattern_name="qft-2xn-mixed",
    )


def qft_2xn_depth_formula(num_qubits: int) -> int:
    """Closed-form depth of the mixed schedule: ``3n − 7`` (even n ≥ 4)."""
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError("the 2xN schedule needs an even n >= 4")
    return 3 * num_qubits - 7
