"""Constrained optimal QFT on 2×N: no SWAP/gate mixing per cycle (Fig. 14 / 13c).

Some control hardware cannot issue SWAPs and computation gates in the same
cycle; under that constraint the paper solves for an optimal schedule and
finds a more elegant pattern (19 cycles for QFT-8):

* iteration ``i`` (``i = 0 .. n−2``) runs three pure steps —

  1. SWAPs on every pair {j, 2i−j}, j < i (always same-parity ⇒ horizontal,
     within a row);
  2. GT on exactly the same pairs (sum ``2i``);
  3. GT on every pair summing ``2i+1`` (mixed parity ⇒ vertical, one per
     column).

Empty boundary steps vanish, giving depth ``3n − 5`` for even ``n ≥ 4``
(19 for QFT-8, matching Fig. 14's 19 steps).  A pleasant property the paper
notes: the final layout is the mirror image of the initial one, so the
pattern composes with itself.
"""

from __future__ import annotations

from typing import List, Tuple

from ..arch.library import grid
from ..core.result import MappingResult
from .common import StepOp, result_from_steps
from .grid2xn import _Layout


def _sum_pairs(total: int, n: int) -> List[Tuple[int, int]]:
    """Pairs {j, total−j}, j < total−j < n."""
    return [
        (j, total - j) for j in range((total + 1) // 2) if j < total - j < n
    ]


def qft_2xn_constrained_steps(num_qubits: int) -> List[List[StepOp]]:
    """Step list of the constrained (no mixing) 2×N schedule.

    Args:
        num_qubits: Even QFT size ``n >= 4``.
    """
    n = num_qubits
    if n < 4 or n % 2:
        raise ValueError("the constrained 2xN schedule needs an even n >= 4")
    layout = _Layout(n)
    steps: List[List[StepOp]] = []
    for i in range(0, n - 1):
        even_sum = 2 * i
        swap_step: List[StepOp] = []
        for a, b in _sum_pairs(even_sum, n):
            swap_step.append(("s", (a, b), (layout.physical(a), layout.physical(b))))
            layout.swap(a, b)
        steps.append(swap_step)
        steps.append(
            [
                ("g", (a, b), (layout.physical(a), layout.physical(b)))
                for a, b in _sum_pairs(even_sum, n)
            ]
        )
        steps.append(
            [
                ("g", (a, b), (layout.physical(a), layout.physical(b)))
                for a, b in _sum_pairs(2 * i + 1, n)
            ]
        )
    return steps


def qft_2xn_constrained_schedule(num_qubits: int) -> MappingResult:
    """Verified constrained schedule on ``grid(2, n/2)``.

    Returns:
        A :class:`MappingResult` with depth ``3·n − 5`` (19 for QFT-8,
        reproducing Fig. 14), in which no cycle mixes SWAPs with gates.
    """
    steps = qft_2xn_constrained_steps(num_qubits)
    return result_from_steps(
        num_qubits,
        grid(2, num_qubits // 2),
        steps,
        initial_mapping=list(range(num_qubits)),
        pattern_name="qft-2xn-constrained",
    )


def qft_2xn_constrained_depth_formula(num_qubits: int) -> int:
    """Closed-form depth of the constrained schedule: ``3n − 5``."""
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError("the constrained 2xN schedule needs an even n >= 4")
    return 3 * num_qubits - 5
