"""Generalized time-optimal QFT schedule on LNN (paper Fig. 11 / Fig. 13a).

The butterfly pattern: iterations ``m = 0, 2, 4, ... < 4n−6`` each run one
parallel layer of GT gates on the qubit pairs whose subscripts sum to
``k = m/2 + 1``, immediately followed by SWAPs on exactly the same pairs.
The final SWAP layer is unnecessary (it only restores the mirror-symmetric
layout, the red SWAP in Fig. 2c) and is dropped, giving depth ``4n − 7``
under unit gate/SWAP latency.

This matches Maslov's manual LNN construction; the paper's search confirms
it is exactly optimal for QFT-5 and QFT-6 (our exact-mode tests reproduce
that, and also show the search shaving one extra cycle at the n = 4
boundary where the pattern's last iterations are sparse enough to overlap).
"""

from __future__ import annotations

from typing import List

from ..arch.library import lnn
from ..core.result import MappingResult
from .common import StepOp, result_from_steps


def qft_lnn_steps(num_qubits: int) -> List[List[StepOp]]:
    """The step list of the generalized LNN schedule.

    Args:
        num_qubits: QFT size ``n >= 2``.

    Returns:
        Alternating GT/SWAP step layers; logical qubits start in natural
        order (``q_i`` on ``Q_i``) and positions are tracked through every
        SWAP so each emitted operation carries its physical pair.
    """
    n = num_qubits
    if n < 2:
        raise ValueError("QFT needs at least 2 qubits")
    position = list(range(n))  # logical -> physical
    steps: List[List[StepOp]] = []
    iterations = list(range(0, 4 * n - 6, 2))
    for m in iterations:
        k = m // 2 + 1
        pairs = [
            (i, k - i)
            for i in range(0, (k + 1) // 2)
            if i < k - i < n
        ]
        gt_step: List[StepOp] = [
            ("g", (a, b), (position[a], position[b])) for a, b in pairs
        ]
        steps.append(gt_step)
        if m == iterations[-1]:
            break  # the last SWAP layer only restores symmetry (Fig. 11)
        swap_step: List[StepOp] = []
        for a, b in pairs:
            swap_step.append(("s", (a, b), (position[a], position[b])))
            position[a], position[b] = position[b], position[a]
        steps.append(swap_step)
    return steps


def qft_lnn_schedule(num_qubits: int) -> MappingResult:
    """Verified schedule of the generalized LNN solution.

    Returns:
        A :class:`MappingResult` over the layered QFT skeleton on
        ``lnn(num_qubits)``; its depth is ``4·n − 7`` (one cycle per step).
    """
    steps = qft_lnn_steps(num_qubits)
    return result_from_steps(
        num_qubits,
        lnn(num_qubits),
        steps,
        initial_mapping=list(range(num_qubits)),
        pattern_name="qft-lnn-butterfly",
    )


def qft_lnn_depth_formula(num_qubits: int) -> int:
    """Closed-form depth of the generalized schedule: ``4n − 7``."""
    if num_qubits < 2:
        raise ValueError("QFT needs at least 2 qubits")
    if num_qubits == 2:
        return 1
    return 4 * num_qubits - 7
