"""Schedule verification: structural checking, ASAP scheduling, and a
state-vector semantic-equivalence oracle."""

from .checker import VerificationError, is_valid, validate_result
from .scheduler import ideal_depth, result_from_routed_ops
from .simulator import (
    assert_semantically_equivalent,
    permute_statevector,
    simulate,
)

__all__ = [
    "validate_result",
    "is_valid",
    "VerificationError",
    "ideal_depth",
    "result_from_routed_ops",
    "simulate",
    "permute_statevector",
    "assert_semantically_equivalent",
]
