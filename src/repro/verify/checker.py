"""Independent validation of mapping results.

The checker replays a :class:`~repro.core.result.MappingResult` cycle by
cycle and verifies every property the qubit-mapping problem definition
(Section 2.2) demands:

* the initial mapping is an injective assignment of logical to physical
  qubits;
* every original gate appears exactly once, on the physical qubits its
  logical operands actually occupy at its start cycle (tracking the mapping
  through every inserted SWAP);
* every two-qubit operation (gate or SWAP) runs on a coupled pair;
* no physical qubit executes two operations at once;
* gate dependencies are respected (a gate starts only after all its
  predecessors in the original circuit have finished);
* durations match the latency model and the reported depth matches the
  schedule.

Every mapper and baseline in the library is tested through this one gate.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..circuit.dag import DependencyGraph
from ..circuit.gate import SWAP_NAME
from ..core.result import MappingResult


class VerificationError(AssertionError):
    """Raised when a schedule violates the qubit-mapping problem rules."""


def validate_result(result: MappingResult) -> None:
    """Raise :class:`VerificationError` unless ``result`` is a valid mapping.

    Args:
        result: The transformed circuit schedule to check.
    """
    circuit = result.circuit
    coupling = result.coupling
    num_physical = coupling.num_qubits

    # --- initial mapping ------------------------------------------------
    if len(result.initial_mapping) != circuit.num_qubits:
        raise VerificationError(
            f"initial mapping covers {len(result.initial_mapping)} logical "
            f"qubits, circuit has {circuit.num_qubits}"
        )
    if len(set(result.initial_mapping)) != len(result.initial_mapping):
        raise VerificationError("initial mapping is not injective")
    for l, p in enumerate(result.initial_mapping):
        if not 0 <= p < num_physical:
            raise VerificationError(
                f"logical qubit {l} mapped to invalid physical qubit {p}"
            )

    inverse: List[int] = [-1] * num_physical
    for l, p in enumerate(result.initial_mapping):
        inverse[p] = l

    # --- replay ----------------------------------------------------------
    dag = DependencyGraph(circuit)
    gate_finish: Dict[int, int] = {}
    seen_gates: Dict[int, int] = {}
    busy_until = [0] * num_physical
    pending_swaps: List = []  # heap of (end, physical pair)

    ops = sorted(result.ops, key=lambda o: (o.start, o.physical_qubits))
    for op in ops:
        if op.duration < 1:
            raise VerificationError(f"non-positive duration: {op}")
        # Apply SWAP effects that completed by this op's start.
        while pending_swaps and pending_swaps[0][0] <= op.start:
            _, (p, q) = heapq.heappop(pending_swaps)
            inverse[p], inverse[q] = inverse[q], inverse[p]

        for p in op.physical_qubits:
            if not 0 <= p < num_physical:
                raise VerificationError(f"invalid physical qubit in {op}")
            if op.start < busy_until[p]:
                raise VerificationError(
                    f"physical qubit Q{p} is busy until {busy_until[p]} "
                    f"but {op} starts at {op.start}"
                )
            busy_until[p] = op.end

        if len(op.physical_qubits) == 2:
            p, q = op.physical_qubits
            if not coupling.are_adjacent(p, q):
                raise VerificationError(
                    f"{op} uses non-adjacent physical qubits on "
                    f"{coupling.name}"
                )

        if op.gate_index is None:
            if op.name != SWAP_NAME:
                raise VerificationError(
                    f"inserted op must be a SWAP, got {op}"
                )
            if op.duration != result.latency.swap_latency():
                raise VerificationError(
                    f"inserted SWAP has duration {op.duration}, latency "
                    f"model says {result.latency.swap_latency()}"
                )
            p, q = op.physical_qubits
            heapq.heappush(pending_swaps, (op.end, (p, q)))
            continue

        # --- original gate checks ---------------------------------------
        index = op.gate_index
        if index in seen_gates:
            raise VerificationError(
                f"gate {index} scheduled twice (starts {seen_gates[index]} "
                f"and {op.start})"
            )
        seen_gates[index] = op.start
        gate = circuit[index]
        if gate.name != op.name:
            raise VerificationError(
                f"op name {op.name!r} does not match gate {index} "
                f"({gate.name!r})"
            )
        if tuple(op.logical_qubits) != gate.qubits:
            raise VerificationError(
                f"op logical qubits {op.logical_qubits} do not match "
                f"gate {index} operands {gate.qubits}"
            )
        actual_logicals = tuple(inverse[p] for p in op.physical_qubits)
        if actual_logicals != gate.qubits:
            raise VerificationError(
                f"gate {index} {gate} runs on physical {op.physical_qubits} "
                f"holding logicals {actual_logicals} at cycle {op.start}"
            )
        for pred in dag.preds[index]:
            if pred not in gate_finish:
                raise VerificationError(
                    f"gate {index} starts before predecessor {pred} is "
                    "scheduled"
                )
            if gate_finish[pred] > op.start:
                raise VerificationError(
                    f"gate {index} starts at {op.start} but predecessor "
                    f"{pred} finishes at {gate_finish[pred]}"
                )
        expected = result.latency.gate_latency(gate)
        if op.duration != expected:
            raise VerificationError(
                f"gate {index} has duration {op.duration}, latency model "
                f"says {expected}"
            )
        gate_finish[index] = op.end

    # --- completeness -----------------------------------------------------
    missing = [i for i in range(len(circuit)) if i not in seen_gates]
    if missing:
        raise VerificationError(
            f"{len(missing)} original gates never scheduled "
            f"(first missing: {missing[:5]})"
        )
    actual_depth = max((op.end for op in result.ops), default=0)
    if actual_depth != result.depth:
        raise VerificationError(
            f"reported depth {result.depth} != schedule depth {actual_depth}"
        )
    if result.depth < result.ideal_depth:
        raise VerificationError(
            f"depth {result.depth} below ideal lower bound "
            f"{result.ideal_depth}"
        )


def is_valid(result: MappingResult) -> bool:
    """True when :func:`validate_result` passes."""
    try:
        validate_result(result)
    except VerificationError:
        return False
    return True
