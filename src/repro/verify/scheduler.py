"""Cycle-accurate ASAP scheduling of routed circuits.

Routing algorithms that think in *gate order* rather than cycles (SABRE,
Zulehner's layered A*, the trivial router, and the closed-form QFT schedules)
produce an ordered list of physical operations.  This module converts such a
list into a full :class:`~repro.core.result.MappingResult` by as-soon-as-
possible scheduling — each operation starts the cycle all its physical
qubits are free — which is exactly how the paper converts baseline outputs
into the cycle counts reported in Table 3.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..arch.coupling import CouplingGraph
from ..circuit.circuit import Circuit
from ..circuit.gate import SWAP_NAME
from ..circuit.latency import LatencyModel
from ..core.result import MappingResult, ScheduledOp

#: A routed operation: ``("g", gate_index, physical_qubits)`` for an original
#: gate or ``("s", p, q)`` for an inserted SWAP on physical qubits p, q.
RoutedOp = Union[Tuple[str, int, Tuple[int, ...]], Tuple[str, int, int]]


def ideal_depth(circuit: Circuit, latency: Optional[LatencyModel] = None) -> int:
    """Depth of ``circuit`` on an ideal all-to-all architecture.

    This is the "Ideal Cycle" column of Tables 1–3.
    """
    return circuit.depth(latency)


def result_from_routed_ops(
    circuit: Circuit,
    coupling: CouplingGraph,
    latency: LatencyModel,
    initial_mapping: Sequence[int],
    routed: Sequence[RoutedOp],
    optimal: bool = False,
    stats: Optional[dict] = None,
) -> MappingResult:
    """ASAP-schedule an ordered list of routed operations.

    Args:
        circuit: The original logical circuit.
        coupling: Target architecture.
        latency: Latency model.
        initial_mapping: Physical position of each logical qubit at cycle 0.
        routed: Operations in execution order; see :data:`RoutedOp`.
        optimal: Mark the result as provably optimal.
        stats: Optional mapper statistics to attach.

    Returns:
        A verified-schedulable :class:`MappingResult` (run the checker to
        validate semantics).
    """
    num_physical = coupling.num_qubits
    inverse: List[int] = [-1] * num_physical
    for logical, physical in enumerate(initial_mapping):
        inverse[physical] = logical

    free_at = [0] * num_physical
    ops: List[ScheduledOp] = []
    for item in routed:
        kind = item[0]
        if kind == "s":
            _, p, q = item
            start = max(free_at[p], free_at[q])
            duration = latency.swap_latency()
            ops.append(
                ScheduledOp(
                    gate_index=None,
                    name=SWAP_NAME,
                    logical_qubits=(inverse[p], inverse[q]),
                    physical_qubits=(p, q),
                    start=start,
                    duration=duration,
                )
            )
            free_at[p] = free_at[q] = start + duration
            inverse[p], inverse[q] = inverse[q], inverse[p]
        elif kind == "g":
            _, gate_index, physical_qubits = item
            gate = circuit[gate_index]
            start = max(free_at[p] for p in physical_qubits)
            duration = latency.gate_latency(gate)
            ops.append(
                ScheduledOp(
                    gate_index=gate_index,
                    name=gate.name,
                    logical_qubits=gate.qubits,
                    physical_qubits=tuple(physical_qubits),
                    start=start,
                    duration=duration,
                )
            )
            for p in physical_qubits:
                free_at[p] = start + duration
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown routed op kind {kind!r}")

    depth = max((op.end for op in ops), default=0)
    ops.sort(key=lambda o: (o.start, o.physical_qubits))
    return MappingResult(
        circuit=circuit,
        coupling=coupling,
        latency=latency,
        initial_mapping=tuple(initial_mapping),
        ops=ops,
        depth=depth,
        optimal=optimal,
        stats=dict(stats or {}),
    )
