"""A small dense state-vector simulator for semantic verification.

The structural checker (:mod:`repro.verify.checker`) proves a schedule is
*well-formed*; this module proves it is *correct*: simulating the original
logical circuit and the transformed physical circuit (SWAPs included) must
give the same state up to the qubit relabeling induced by the initial and
final mappings.  Dense simulation is exponential in qubit count, so this
is a test oracle for ≲12 qubits — exactly the regime the optimal mapper
operates in.

Supported gates: ``id x y z h s sdg t tdg rx ry rz u1 cu1 cx cz cy swap``
and the paper's generic ``gt`` (simulated as controlled-Z, a maximally
entangling symmetric two-qubit gate).
"""

from __future__ import annotations

import cmath
import math
from typing import Dict

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.gate import Gate
from ..core.result import MappingResult

_SQ = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.diag([1, -1]).astype(complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    "s": np.diag([1, 1j]).astype(complex),
    "sdg": np.diag([1, -1j]).astype(complex),
    "t": np.diag([1, cmath.exp(1j * math.pi / 4)]),
    "tdg": np.diag([1, cmath.exp(-1j * math.pi / 4)]),
}


def _single_qubit_matrix(gate: Gate) -> np.ndarray:
    if gate.name in _SQ:
        return _SQ[gate.name]
    if gate.name in ("rz", "u1"):
        (theta,) = gate.params or (0.0,)
        if gate.name == "u1":
            return np.diag([1, cmath.exp(1j * theta)])
        return np.diag(
            [cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)]
        )
    if gate.name == "rx":
        (theta,) = gate.params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if gate.name == "ry":
        (theta,) = gate.params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    raise NotImplementedError(f"no matrix for single-qubit gate {gate.name!r}")


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply ``gate`` to ``state`` (qubit 0 = least significant bit)."""
    tensor = state.reshape([2] * num_qubits)
    if gate.num_qubits == 1:
        (q,) = gate.qubits
        axis = num_qubits - 1 - q
        matrix = _single_qubit_matrix(gate)
        tensor = np.tensordot(matrix, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
        return tensor.reshape(-1)

    a, b = gate.qubits
    name = gate.name
    if name == "cx":
        matrix = np.eye(4, dtype=complex)
        matrix[2:, 2:] = _SQ["x"]
    elif name in ("cz", "gt"):
        matrix = np.diag([1, 1, 1, -1]).astype(complex)
    elif name == "cy":
        matrix = np.eye(4, dtype=complex)
        matrix[2:, 2:] = _SQ["y"]
    elif name == "cu1":
        (theta,) = gate.params
        matrix = np.diag([1, 1, 1, cmath.exp(1j * theta)])
    elif name == "swap":
        matrix = np.eye(4, dtype=complex)[[0, 2, 1, 3]]
    else:
        raise NotImplementedError(f"no matrix for two-qubit gate {name!r}")

    axis_a = num_qubits - 1 - a
    axis_b = num_qubits - 1 - b
    matrix = matrix.reshape(2, 2, 2, 2)  # [a_out, b_out, a_in, b_in]
    tensor = np.tensordot(matrix, tensor, axes=([2, 3], [axis_a, axis_b]))
    tensor = np.moveaxis(tensor, [0, 1], [axis_a, axis_b])
    return tensor.reshape(-1)


def simulate(circuit: Circuit) -> np.ndarray:
    """State vector after running ``circuit`` from |0…0⟩."""
    state = np.zeros(2 ** circuit.num_qubits, dtype=complex)
    state[0] = 1.0
    for gate in circuit:
        state = apply_gate(state, gate, circuit.num_qubits)
    return state


def permute_statevector(
    state: np.ndarray, placement: Dict[int, int], num_target: int
) -> np.ndarray:
    """Embed/relabel a state: source qubit ``q`` becomes ``placement[q]``.

    Unplaced target qubits stay |0⟩.  Used to compare a logical-space
    state against a physical-space state under a mapping.
    """
    num_source = int(round(math.log2(len(state))))
    out = np.zeros(2 ** num_target, dtype=complex)
    for index in range(len(state)):
        if state[index] == 0:
            continue
        target_index = 0
        for q in range(num_source):
            if (index >> q) & 1:
                target_index |= 1 << placement[q]
        out[target_index] += state[index]
    return out


def assert_semantically_equivalent(
    result: MappingResult, atol: float = 1e-9
) -> None:
    """Verify the transformed circuit implements the original circuit.

    Simulates the logical circuit, embeds it into physical space using
    the *final* mapping (where each logical qubit ends up after all the
    SWAPs), simulates the physical circuit from the *initial* mapping,
    and compares amplitudes exactly (no global-phase slack is needed —
    SWAPs and relabelings are phase-free).

    Args:
        result: A mapping result over a circuit of ≲ 12 qubits whose
            gates all have known matrices.

    Raises:
        AssertionError: If the states differ anywhere above ``atol``.
    """
    logical_state = simulate(result.circuit)
    expected = permute_statevector(
        logical_state,
        dict(enumerate(result.final_mapping())),
        result.coupling.num_qubits,
    )
    physical_state = simulate(result.to_physical_circuit())
    if not np.allclose(expected, physical_state, atol=atol):
        worst = float(np.max(np.abs(expected - physical_state)))
        raise AssertionError(
            f"transformed circuit is not semantically equivalent "
            f"(max amplitude error {worst:.3e})"
        )
