"""Shared fixtures for the test suite."""

import pytest

from repro.arch import grid, ibm_qx2, ibm_tokyo, lnn
from repro.circuit import Circuit, uniform_latency


@pytest.fixture
def lnn4():
    return lnn(4)


@pytest.fixture
def lnn5():
    return lnn(5)


@pytest.fixture
def qx2():
    return ibm_qx2()


@pytest.fixture
def tokyo():
    return ibm_tokyo()


@pytest.fixture
def grid2x3():
    return grid(2, 3)


@pytest.fixture
def unit_latency():
    return uniform_latency(1, 1)


@pytest.fixture
def fig1_circuit():
    """The motivating circuit of Fig. 1(b): h q1; cx q1,q4; cx q2,q3."""
    circuit = Circuit(4, name="fig1")
    circuit.h(0)
    circuit.cx(0, 3)
    circuit.cx(1, 2)
    return circuit
