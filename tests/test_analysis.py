"""Tests for the pattern-analysis tooling (Section 6.1, Appendix B)."""

from repro.analysis import (
    canonicalize_swap_gate_order,
    cycle_signatures,
    find_period,
    is_mirrored_layout,
)
from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core import OptimalMapper
from repro.qft import qft_2xn_constrained_schedule, qft_lnn_schedule
from repro.qft.lnn import qft_lnn_steps
from repro.qft.common import result_from_steps
from repro.verify import validate_result


class TestSignatures:
    def test_signature_count_equals_busy_cycles(self):
        result = qft_lnn_schedule(5)
        assert len(cycle_signatures(result)) == result.depth

    def test_signatures_distinguish_kinds(self):
        result = qft_lnn_schedule(4)
        sigs = cycle_signatures(result)
        kinds = [frozenset(k for k, _ in sig) for sig in sigs]
        assert frozenset({"g"}) in kinds
        assert frozenset({"s"}) in kinds


class TestPeriodDetection:
    def test_lnn_butterfly_has_period_2(self):
        # GT layer / SWAP layer alternation.
        result = qft_lnn_schedule(8)
        assert find_period(result, skip_prefix=0) == 2

    def test_constrained_2xn_has_period_3(self):
        result = qft_2xn_constrained_schedule(10)
        assert find_period(result, skip_prefix=1) == 3

    def test_aperiodic_schedule_returns_none(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 2).h(1).cx(1, 2).h(0).cx(0, 1)
        result = OptimalMapper(lnn(3), uniform_latency(1, 3)).map(
            circuit, initial_mapping=[0, 1, 2]
        )
        assert find_period(result, max_period=2, min_repeats=3) in (None, 1, 2)


class TestCanonicalization:
    def test_swap_then_gate_becomes_gate_then_swap(self):
        result = qft_lnn_schedule(4)
        # Build an artificial swap-then-gate adjacency: take the butterfly
        # (gate@t then swap@t+1 on the same pair) and reverse one pair.
        swapped_first = []
        for op in result.ops:
            swapped_first.append(op)
        # Locate a (gate, swap) adjacency and flip it manually.
        from repro.core.result import ScheduledOp

        gate_op = result.ops[0]
        swap_op = [
            o
            for o in result.ops
            if o.is_inserted_swap
            and tuple(sorted(o.physical_qubits))
            == tuple(sorted(gate_op.physical_qubits))
            and o.start == gate_op.end
        ][0]
        flipped = [
            ScheduledOp(None, "swap", swap_op.logical_qubits,
                        swap_op.physical_qubits, gate_op.start, 1)
            if o is gate_op
            else ScheduledOp(gate_op.gate_index, gate_op.name,
                             gate_op.logical_qubits,
                             gate_op.physical_qubits[::-1],
                             swap_op.start, 1)
            if o is swap_op
            else o
            for o in result.ops
        ]
        normalized = canonicalize_swap_gate_order(flipped)
        starts = {
            (o.gate_index, o.start) for o in normalized if o.gate_index is not None
        }
        original_starts = {
            (o.gate_index, o.start) for o in result.ops if o.gate_index is not None
        }
        assert starts == original_starts

    def test_idempotent_on_canonical_schedule(self):
        result = qft_lnn_schedule(5)
        once = canonicalize_swap_gate_order(result.ops)
        twice = canonicalize_swap_gate_order(once)
        assert once == twice


class TestMirror:
    def test_lnn_with_final_swap_layer_is_mirrored(self):
        # Re-add the cosmetic final SWAP layer (Fig. 11 step 17) and the
        # layout mirror property appears.
        n = 6
        steps = qft_lnn_steps(n)
        position = {}
        # Recompute final positions from the emitted steps.
        pos = list(range(n))
        final_pairs = []
        k = 2 * n - 3
        final_pairs = [
            (i, k - i) for i in range(0, (k + 1) // 2) if i < k - i < n
        ]
        extra = []
        for a, b in final_pairs:
            extra.append(("s", (a, b), (None, None)))
        # Instead of reconstructing physicals by hand, use the emitter's
        # own machinery: the mirrored-layout property is equivalent to
        # final_mapping == reverse for the schedule *with* the last layer,
        # i.e. without it, exactly the non-fixed qubits differ:
        result = qft_lnn_schedule(n)
        assert not is_mirrored_layout(result)
        final = result.final_mapping()
        mirrored = sum(
            1 for l in range(n) if final[l] == n - 1 - result.initial_mapping[l]
        )
        # The dropped last layer touches only the pairs of the final step;
        # every other qubit already sits at its mirror position.
        assert mirrored >= n - 2 * len(final_pairs)

    def test_constrained_2xn_mirror_property(self):
        """§6.1.1: the constrained pattern ends mirrored (its nice
        self-composition property)."""
        result = qft_2xn_constrained_schedule(8)
        assert is_mirrored_layout(result)
