"""Tests of the optimal A* mapper: exactness, optimality cross-checks."""

import itertools

import pytest

from repro.arch import grid, ibm_qx2, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import ghz_circuit, qft_skeleton, random_circuit
from repro.core import OptimalMapper, SearchBudgetExceeded
from repro.verify import validate_result


def brute_force_depth(circuit, coupling, latency, initial_mapping):
    """Reference optimal depth via uninformed exhaustive search."""
    mapper = OptimalMapper(
        coupling, latency, informed=False, dominance=False
    )
    return mapper.map(circuit, initial_mapping=initial_mapping).depth


class TestBasic:
    def test_already_compliant_circuit_unchanged(self, lnn4, unit_latency):
        circuit = ghz_circuit(4)
        result = OptimalMapper(lnn4, unit_latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(result)
        assert result.depth == circuit.depth(unit_latency)
        assert result.num_inserted_swaps == 0
        assert result.optimal

    def test_single_swap_needed(self, unit_latency):
        circuit = Circuit(3).cx(0, 2)
        result = OptimalMapper(lnn(3), uniform_latency(1, 3)).map(
            circuit, initial_mapping=[0, 1, 2]
        )
        validate_result(result)
        assert result.depth == 4
        assert result.num_inserted_swaps == 1

    def test_empty_circuit(self, lnn4):
        result = OptimalMapper(lnn4).map(Circuit(4), initial_mapping=[0, 1, 2, 3])
        assert result.depth == 0
        assert result.ops == []

    def test_rejects_bad_initial_mapping(self, lnn4):
        with pytest.raises(ValueError):
            OptimalMapper(lnn4).map(ghz_circuit(4), initial_mapping=[0, 0, 1, 2])

    def test_budget_exceeded_raises(self):
        mapper = OptimalMapper(lnn(5), uniform_latency(1, 3), max_nodes=3)
        with pytest.raises(SearchBudgetExceeded):
            mapper.map(qft_skeleton(5), initial_mapping=list(range(5)))

    def test_result_schedule_reconstructable(self, unit_latency):
        circuit = Circuit(3).cx(0, 2).cx(0, 1).cx(1, 2)
        result = OptimalMapper(lnn(3), uniform_latency(1, 3)).map(
            circuit, initial_mapping=[0, 1, 2]
        )
        validate_result(result)
        physical = result.to_physical_circuit()
        assert len(physical) == len(circuit) + result.num_inserted_swaps


class TestOptimalityCrossChecks:
    """The informed+filtered search matches uninformed exhaustive search."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_on_lnn(self, seed):
        circuit = random_circuit(4, 7, two_qubit_fraction=0.8, seed=seed)
        latency = uniform_latency(1, 3)
        arch = lnn(4)
        fast = OptimalMapper(arch, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(fast)
        reference = brute_force_depth(circuit, arch, latency, [0, 1, 2, 3])
        assert fast.depth == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_on_qx2(self, seed, qx2):
        circuit = random_circuit(5, 6, two_qubit_fraction=0.9, seed=seed + 50)
        latency = uniform_latency(1, 3)
        fast = OptimalMapper(qx2, latency).map(
            circuit, initial_mapping=[0, 1, 2, 3, 4]
        )
        validate_result(fast)
        reference = brute_force_depth(circuit, qx2, latency, [0, 1, 2, 3, 4])
        assert fast.depth == reference

    def test_exhaustive_initial_mappings_vs_mode2(self):
        """Mode-2 (free SWAP prefix) finds the best over all mappings."""
        circuit = random_circuit(4, 6, two_qubit_fraction=0.9, seed=3)
        latency = uniform_latency(1, 3)
        arch = lnn(4)
        best_fixed = min(
            OptimalMapper(arch, latency)
            .map(circuit, initial_mapping=list(perm))
            .depth
            for perm in itertools.permutations(range(4))
        )
        searched = OptimalMapper(
            arch, latency, search_initial_mapping=True
        ).map(circuit)
        validate_result(searched)
        assert searched.depth == best_fixed


class TestDepthProperties:
    def test_depth_never_below_ideal(self):
        for seed in range(5):
            circuit = random_circuit(4, 10, two_qubit_fraction=0.6, seed=seed)
            latency = uniform_latency(1, 3)
            result = OptimalMapper(lnn(4), latency).map(
                circuit, initial_mapping=[0, 1, 2, 3]
            )
            assert result.depth >= circuit.depth(latency)

    def test_richer_connectivity_never_hurts(self):
        circuit = qft_skeleton(4)
        latency = uniform_latency(1, 1)
        on_line = OptimalMapper(lnn(4), latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        on_grid = OptimalMapper(grid(2, 2), latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        assert on_grid.depth <= on_line.depth

    def test_dominance_filter_preserves_optimality(self):
        circuit = random_circuit(4, 8, two_qubit_fraction=0.7, seed=9)
        latency = uniform_latency(1, 3)
        with_filter = OptimalMapper(lnn(4), latency).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        without = OptimalMapper(lnn(4), latency, dominance=False).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        assert with_filter.depth == without.depth


class TestFindAll:
    def test_all_solutions_share_optimal_depth(self):
        circuit = Circuit(3).cx(0, 2)
        latency = uniform_latency(1, 3)
        mapper = OptimalMapper(lnn(3), latency)
        solutions = mapper.find_all_optimal(
            circuit, initial_mapping=[0, 1, 2], max_solutions=16
        )
        assert solutions
        depths = {s.depth for s in solutions}
        assert depths == {4}
        for solution in solutions:
            validate_result(solution)

    def test_multiple_distinct_solutions_found(self):
        # cx(q0,q2) on lnn-3: swapping (0,1) or (1,2) both give depth 4.
        circuit = Circuit(3).cx(0, 2)
        mapper = OptimalMapper(lnn(3), uniform_latency(1, 3))
        solutions = mapper.find_all_optimal(
            circuit, initial_mapping=[0, 1, 2], max_solutions=16
        )
        swap_choices = {
            tuple(sorted(op.physical_qubits))
            for s in solutions
            for op in s.ops
            if op.is_inserted_swap
        }
        assert len(swap_choices) >= 2
