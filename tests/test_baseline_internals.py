"""White-box tests of baseline internals (SABRE scoring, Zulehner layers)."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.arch import grid, ibm_tokyo, lnn
from repro.baselines.sabre import SabreMapper
from repro.baselines.zulehner import ZulehnerMapper
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import random_circuit


class TestSabreInternals:
    def test_route_returns_final_mapping(self):
        mapper = SabreMapper(lnn(3))
        circuit = Circuit(3).cx(0, 2)
        routed, final = mapper._route(circuit, [0, 1, 2])
        assert len(final) == 3
        assert any(op[0] == "s" for op in routed)

    def test_swap_count_grows_with_distance(self):
        mapper = SabreMapper(lnn(6))
        near = Circuit(6).cx(0, 1)
        far = Circuit(6).cx(0, 5)
        swaps = lambda c: sum(
            1 for op in mapper._route(c, list(range(6)))[0] if op[0] == "s"
        )
        assert swaps(near) == 0
        assert swaps(far) >= 4

    def test_lookahead_prefers_future_friendly_swap(self):
        # Front gate cx(0,3) on lnn-4 can be fixed by moving q0 right or
        # q3 left; the extended set contains cx(1,3), making the move of
        # q0 toward q3 (freeing q1 adjacency) the better-scoring choice
        # overall.  We only assert the router completes with a small
        # number of swaps — the score function's relative order is
        # implementation detail, its effect is bounded swap count.
        circuit = Circuit(4).cx(0, 3).cx(1, 3).cx(0, 1)
        mapper = SabreMapper(lnn(4), uniform_latency(1, 3))
        result = mapper.map(circuit, initial_mapping=[0, 1, 2, 3])
        assert result.num_inserted_swaps <= 4

    def test_decay_prevents_pingpong(self):
        # A pathological frontier that a decay-free greedy could bounce
        # on; the mapper must terminate (the stall guard would raise).
        circuit = Circuit(6)
        for _ in range(10):
            circuit.cx(0, 5).cx(5, 0)
        mapper = SabreMapper(lnn(6), uniform_latency(1, 3), seed=3)
        result = mapper.map(circuit)
        assert result.depth > 0


class TestZulehnerInternals:
    def test_solve_layer_empty_when_satisfied(self):
        mapper = ZulehnerMapper(lnn(4))
        assert mapper._solve_layer((0, 1, 2, 3), [(0, 1), (2, 3)], []) == []

    def test_solve_layer_single_swap(self):
        mapper = ZulehnerMapper(lnn(4))
        swaps = mapper._solve_layer((0, 1, 2, 3), [(0, 2)], [])
        assert len(swaps) == 1

    def test_sequential_fallback_valid_on_regression_input(self):
        """Regression: the layer that broke the old frozen-pair greedy
        (pairs separated by later routing) must route validly through
        the sequential fallback."""
        from repro.verify import validate_result

        circuit = random_circuit(16, 3000, two_qubit_fraction=0.6, seed=11)
        mapper = ZulehnerMapper(ibm_tokyo(), max_nodes_per_layer=1)
        result = mapper.map(circuit)
        validate_result(result)

    @settings(
        deadline=None, max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.randoms(use_true_random=False))
    def test_solve_layer_always_satisfies_pairs(self, rng):
        """Property: any random layer on Tokyo ends fully adjacent."""
        arch = ibm_tokyo()
        mapper = ZulehnerMapper(arch, max_nodes_per_layer=200)
        logicals = list(range(16))
        physicals = list(range(20))
        rng.shuffle(physicals)
        pos = tuple(physicals[:16])
        pool = logicals[:]
        rng.shuffle(pool)
        num_pairs = rng.randint(1, 6)
        pairs = [
            (pool[2 * i], pool[2 * i + 1]) for i in range(num_pairs)
        ]
        swaps = mapper._solve_layer(pos, pairs, [])
        if swaps is None:
            return  # budget exceeded: the caller's sequential path covers it
        state = list(pos)
        inv = {p: l for l, p in enumerate(state)}
        for p, q in swaps:
            lp, lq = inv.get(p, -1), inv.get(q, -1)
            inv[p], inv[q] = lq, lp
            if lp >= 0:
                state[lp] = q
            if lq >= 0:
                state[lq] = p
        for a, b in pairs:
            assert arch.are_adjacent(state[a], state[b])

    def test_lookahead_weight_changes_routing(self):
        circuit = random_circuit(8, 60, two_qubit_fraction=0.8, seed=4)
        arch = grid(2, 4)
        without = ZulehnerMapper(arch, lookahead_weight=0.0).map(circuit)
        with_la = ZulehnerMapper(arch, lookahead_weight=0.5).map(circuit)
        # Both valid; look-ahead usually (not provably) helps, so we only
        # assert both routes complete and report stats.
        assert without.depth > 0 and with_la.depth > 0
