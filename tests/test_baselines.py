"""Tests for the SABRE, Zulehner, trivial and OLSQ-style baselines."""

import pytest

from repro.arch import grid, ibm_qx2, ibm_tokyo, lnn
from repro.circuit import Circuit, IBM_LATENCY, OLSQ_LATENCY, uniform_latency
from repro.circuit.generators import ghz_circuit, qft_skeleton, random_circuit
from repro.baselines import (
    OlsqStyleMapper,
    SabreMapper,
    TrivialMapper,
    ZulehnerMapper,
)
from repro.core import OptimalMapper
from repro.verify import validate_result


class TestSabre:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_circuits(self, seed, tokyo):
        circuit = random_circuit(10, 80, two_qubit_fraction=0.6, seed=seed)
        result = SabreMapper(tokyo, IBM_LATENCY, seed=seed).map(circuit)
        validate_result(result)

    def test_no_swaps_when_compliant(self):
        circuit = ghz_circuit(5)
        result = SabreMapper(lnn(5)).map(circuit, initial_mapping=[0, 1, 2, 3, 4])
        validate_result(result)
        assert result.num_inserted_swaps == 0

    def test_initial_mapping_refinement_runs(self, tokyo):
        circuit = random_circuit(10, 60, two_qubit_fraction=0.7, seed=3)
        refined = SabreMapper(tokyo, IBM_LATENCY, seed=0, passes=3).map(circuit)
        validate_result(refined)

    def test_deterministic_per_seed(self, tokyo):
        circuit = random_circuit(8, 50, two_qubit_fraction=0.6, seed=7)
        a = SabreMapper(tokyo, IBM_LATENCY, seed=5).map(circuit)
        b = SabreMapper(tokyo, IBM_LATENCY, seed=5).map(circuit)
        assert a.depth == b.depth
        assert a.initial_mapping == b.initial_mapping

    def test_qft_on_lnn(self):
        circuit = qft_skeleton(5)
        result = SabreMapper(lnn(5), uniform_latency(1, 3), seed=1).map(circuit)
        validate_result(result)


class TestZulehner:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_on_random_circuits(self, seed, tokyo):
        circuit = random_circuit(10, 80, two_qubit_fraction=0.6, seed=seed)
        result = ZulehnerMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)

    def test_full_width_stress(self, tokyo):
        # Regression: frozen-pair greedy fallback must not separate
        # already-satisfied pairs (20 logical on 20 physical).
        circuit = random_circuit(16, 400, two_qubit_fraction=0.6, seed=11)
        result = ZulehnerMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)

    def test_layer_swaps_counted(self, tokyo):
        circuit = random_circuit(10, 60, two_qubit_fraction=0.8, seed=2)
        result = ZulehnerMapper(tokyo, IBM_LATENCY).map(circuit)
        assert result.stats["layer_swaps"] == result.num_inserted_swaps

    def test_compliant_circuit_untouched(self):
        circuit = ghz_circuit(4)
        result = ZulehnerMapper(lnn(4)).map(circuit)
        validate_result(result)
        assert result.num_inserted_swaps == 0

    def test_small_budget_falls_back_to_greedy(self):
        circuit = qft_skeleton(5)
        mapper = ZulehnerMapper(lnn(5), uniform_latency(1, 3), max_nodes_per_layer=1)
        result = mapper.map(circuit)
        validate_result(result)


class TestTrivial:
    def test_valid_and_complete(self, tokyo):
        circuit = random_circuit(10, 100, two_qubit_fraction=0.7, seed=0)
        result = TrivialMapper(tokyo, IBM_LATENCY).map(circuit)
        validate_result(result)

    def test_distance_one_no_swaps(self):
        result = TrivialMapper(lnn(3)).map(Circuit(3).cx(0, 1).cx(1, 2))
        assert result.num_inserted_swaps == 0


class TestOlsqStyle:
    def test_matches_toqm_optimal_depth(self):
        # The central Table 2 claim: identical optimal depths.
        circuit = random_circuit(4, 8, two_qubit_fraction=0.8, seed=6)
        latency = uniform_latency(1, 3)
        arch = lnn(4)
        ours = OptimalMapper(arch, latency).map(circuit, initial_mapping=[0, 1, 2, 3])
        olsq = OlsqStyleMapper(arch, latency, search_initial_mapping=False).map(
            circuit, initial_mapping=[0, 1, 2, 3]
        )
        validate_result(olsq)
        assert olsq.depth == ours.depth
        assert olsq.optimal
        assert olsq.stats["mapper"] == "olsq-style"

    def test_explores_more_nodes_than_toqm(self, qx2):
        circuit = random_circuit(5, 8, two_qubit_fraction=0.8, seed=9)
        latency = OLSQ_LATENCY
        ours = OptimalMapper(qx2, latency).map(circuit, initial_mapping=[0, 1, 2, 3, 4])
        olsq = OlsqStyleMapper(qx2, latency, search_initial_mapping=False).map(
            circuit, initial_mapping=[0, 1, 2, 3, 4]
        )
        assert olsq.depth == ours.depth
        assert (
            olsq.stats["nodes_expanded"] >= ours.stats["nodes_expanded"]
        )
