"""Tests for the parallel batch runner (``repro.analysis.batch``)."""

import json
import os

import pytest

from repro.analysis.batch import BatchRecord, BatchTask, map_many, summarize
from repro.arch import lnn
from repro.circuit import to_qasm, uniform_latency
from repro.circuit.generators import qft_skeleton, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.obs import REQUIRED_STAT_KEYS


class ExplodingMapper:
    """A mapper whose ``map`` raises — must be picklable (module level)."""

    def map(self, circuit):
        raise RuntimeError("boom")


class WorkerKillingMapper:
    """A mapper that kills its worker process outright."""

    def map(self, circuit):
        os._exit(13)


def _tasks(count=4, num_qubits=4):
    return [
        BatchTask(
            label=f"rand-{seed}",
            circuit=random_circuit(num_qubits, 6, seed=seed),
            mapper=OptimalMapper(lnn(num_qubits), uniform_latency(1, 3)),
        )
        for seed in range(count)
    ]


class TestInProcessPath:
    def test_max_workers_one_uses_no_pool(self, monkeypatch):
        from repro.analysis import batch as batch_mod

        def forbid(*args, **kwargs):
            raise AssertionError("pool must not be created for 1 worker")

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", forbid)
        records = map_many(_tasks(3), max_workers=1)
        assert [r.ok for r in records] == [True, True, True]

    def test_records_preserve_order_and_schema(self):
        records = map_many(_tasks(4), max_workers=1)
        assert [r.label for r in records] == [
            "rand-0", "rand-1", "rand-2", "rand-3"
        ]
        for rec in records:
            assert rec.ok and rec.depth is not None and rec.swaps is not None
            for key in REQUIRED_STAT_KEYS:
                assert key in rec.stats

    def test_results_attached_and_detachable(self):
        tasks = _tasks(2)
        with_results = map_many(tasks, max_workers=1, keep_results=True)
        without = map_many(tasks, max_workers=1, keep_results=False)
        assert all(r.result is not None for r in with_results)
        assert all(r.result is None for r in without)
        assert [r.depth for r in with_results] == [r.depth for r in without]

    def test_budget_propagation_contains_abort(self):
        tasks = [
            BatchTask(
                label="too-big",
                circuit=qft_skeleton(5),
                mapper=OptimalMapper(lnn(5), uniform_latency(1, 3)),
            )
        ]
        records = map_many(tasks, max_workers=1, max_nodes=5)
        (rec,) = records
        assert not rec.ok
        assert "budget exceeded" in rec.error
        assert rec.stats["budget_reason"] == "max_nodes"
        assert rec.stats["nodes_expanded"] <= 5
        # and the caller's mapper was not mutated by the override
        assert tasks[0].mapper.max_nodes is None

    def test_mapper_exception_contained_in_process(self):
        tasks = [
            BatchTask("ok", random_circuit(4, 5, seed=1),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
            BatchTask("bad", random_circuit(4, 5, seed=2),
                      ExplodingMapper()),
        ]
        records = map_many(tasks, max_workers=1)
        assert records[0].ok
        assert not records[1].ok
        assert "RuntimeError: boom" in records[1].error

    def test_empty_batch(self):
        assert map_many([]) == []

    def test_summarize(self):
        records = [
            BatchRecord(label="a", ok=True, seconds=1.0,
                        stats={"nodes_expanded": 10}),
            BatchRecord(label="b", ok=False, seconds=0.5, error="x"),
        ]
        totals = summarize(records)
        assert totals["tasks"] == 2
        assert totals["succeeded"] == 1
        assert totals["failed"] == 1
        assert totals["total_nodes_expanded"] == 10


class TestPoolPath:
    def test_ordering_across_pool(self):
        records = map_many(_tasks(6), max_workers=2, chunk_size=1)
        assert [r.label for r in records] == [
            f"rand-{i}" for i in range(6)
        ]
        assert all(r.ok for r in records)

    def test_pool_matches_in_process(self):
        tasks = _tasks(4)
        pooled = map_many(tasks, max_workers=2, keep_results=False)
        inproc = map_many(tasks, max_workers=1, keep_results=False)
        assert [(r.label, r.depth, r.swaps) for r in pooled] == [
            (r.label, r.depth, r.swaps) for r in inproc
        ]
        assert [
            r.stats["nodes_expanded"] for r in pooled
        ] == [r.stats["nodes_expanded"] for r in inproc]

    def test_mapper_exception_contained_in_worker(self):
        tasks = [
            BatchTask("bad", random_circuit(4, 5, seed=2),
                      ExplodingMapper()),
            BatchTask("ok", random_circuit(4, 5, seed=1),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
        ]
        records = map_many(tasks, max_workers=2, chunk_size=1)
        assert not records[0].ok
        assert "RuntimeError: boom" in records[0].error
        assert records[1].ok

    def test_worker_crash_becomes_error_record(self):
        tasks = [
            BatchTask("crash", random_circuit(4, 5, seed=3),
                      WorkerKillingMapper()),
            BatchTask("ok", random_circuit(4, 5, seed=1),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
        ]
        records = map_many(tasks, max_workers=2, chunk_size=1)
        assert [r.label for r in records] == ["crash", "ok"]
        assert not records[0].ok
        assert "worker failed" in records[0].error

    def test_budget_propagation_across_pool(self):
        tasks = [
            BatchTask("too-big", qft_skeleton(5),
                      OptimalMapper(lnn(5), uniform_latency(1, 3)))
        ]
        records = map_many(tasks, max_workers=2, max_nodes=5)
        (rec,) = records
        assert not rec.ok
        assert rec.stats["budget_reason"] == "max_nodes"

    def test_live_telemetry_rejected_up_front(self):
        from repro.obs import Telemetry

        tasks = [
            BatchTask(
                "instrumented",
                random_circuit(4, 5, seed=1),
                OptimalMapper(
                    lnn(4), uniform_latency(1, 3),
                    telemetry=Telemetry(trace=True),
                ),
            )
        ]
        with pytest.raises(ValueError, match="telemetry"):
            map_many(tasks, max_workers=2)


class TestCompareIntegration:
    def test_compare_mappers_parallel_matches_sequential(self):
        from repro.analysis import compare_mappers

        circuit = qft_skeleton(4)
        arch = lnn(4)

        def mappers():
            return [
                ("optimal", OptimalMapper(arch, uniform_latency(1, 3))),
                ("heuristic", HeuristicMapper(arch, uniform_latency(1, 3))),
            ]

        sequential = compare_mappers(circuit, arch, mappers())
        parallel = compare_mappers(
            circuit, arch, mappers(), max_workers=2
        )
        assert [
            (e.label, e.depth, e.swaps) for e in sequential.entries
        ] == [(e.label, e.depth, e.swaps) for e in parallel.entries]


class TestMapBatchCli:
    @pytest.fixture()
    def qasm_dir(self, tmp_path):
        for name, circ in [
            ("a_qft4", qft_skeleton(4)),
            ("b_rand4", random_circuit(4, 6, seed=7)),
        ]:
            (tmp_path / f"{name}.qasm").write_text(to_qasm(circ))
        return tmp_path

    def test_map_batch_reports_normalized_stats(self, qasm_dir, tmp_path,
                                                capsys):
        from repro.cli import main

        out_json = tmp_path / "report.json"
        code = main([
            "map-batch", "--dir", str(qasm_dir), "--arch", "lnn-4",
            "--mapper", "optimal", "--workers", "1",
            "--json-out", str(out_json),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "a_qft4" in out and "b_rand4" in out
        assert "2/2 mapped" in out
        payload = json.loads(out_json.read_text())
        assert payload["summary"]["succeeded"] == 2
        for record in payload["records"]:
            assert record["ok"]
            for key in REQUIRED_STAT_KEYS:
                assert key in record["stats"]

    def test_map_batch_error_exit_code(self, qasm_dir, capsys):
        from repro.cli import main

        code = main([
            "map-batch", "--dir", str(qasm_dir), "--arch", "lnn-4",
            "--mapper", "optimal", "--workers", "1", "--max-nodes", "2",
        ])
        assert code == 2
        assert "budget exceeded" in capsys.readouterr().out

    def test_map_batch_empty_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "map-batch", "--dir", str(tmp_path), "--arch", "lnn-4",
        ])
        assert code == 1
        assert "no files match" in capsys.readouterr().err


class TestStealingScheduler:
    def _stream_tasks(self):
        """A small request stream with repeated circuits (warm-cache food)."""
        arch, latency = lnn(4), uniform_latency(1, 3)
        tasks = []
        for index in range(9):
            seed = index % 3  # each circuit recurs three times
            tasks.append(
                BatchTask(
                    label=f"req-{index}",
                    circuit=random_circuit(4, 6, seed=seed),
                    mapper=OptimalMapper(arch, latency),
                )
            )
        return tasks

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            map_many(_tasks(2), max_workers=2, scheduler="roundrobin")

    @pytest.mark.parametrize("workers", [2, 3])
    def test_determinism_across_worker_counts(self, workers):
        tasks = self._stream_tasks()
        reference = map_many(tasks, max_workers=1, keep_results=False)
        stolen = map_many(
            tasks, max_workers=workers, keep_results=False,
            scheduler="stealing",
        )
        assert [
            (r.label, r.ok, r.depth, r.swaps, r.stats["nodes_expanded"])
            for r in stolen
        ] == [
            (r.label, r.ok, r.depth, r.swaps, r.stats["nodes_expanded"])
            for r in reference
        ]

    def test_warm_cache_results_identical_to_cold(self):
        tasks = self._stream_tasks()
        warm = map_many(tasks, max_workers=2, keep_results=False,
                        scheduler="stealing", warm_cache=True)
        cold = map_many(tasks, max_workers=2, keep_results=False,
                        scheduler="stealing", warm_cache=False)
        assert [
            (r.label, r.depth, r.swaps, r.stats["nodes_expanded"])
            for r in warm
        ] == [
            (r.label, r.depth, r.swaps, r.stats["nodes_expanded"])
            for r in cold
        ]

    def test_failure_contained_with_exception_detail(self):
        tasks = [
            BatchTask("ok-0", random_circuit(4, 5, seed=1),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
            BatchTask("bad", random_circuit(4, 5, seed=2),
                      ExplodingMapper()),
            BatchTask("ok-1", random_circuit(4, 5, seed=3),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
        ]
        records = map_many(tasks, max_workers=2, scheduler="stealing")
        assert [r.label for r in records] == ["ok-0", "bad", "ok-1"]
        assert records[0].ok and records[2].ok
        bad = records[1]
        assert not bad.ok
        assert bad.error_type == "RuntimeError"
        assert "RuntimeError: boom" in bad.error
        assert bad.traceback is not None and "boom" in bad.traceback

    def test_orphaned_task_retried_then_reported(self):
        tasks = [
            BatchTask("crash", random_circuit(4, 5, seed=3),
                      WorkerKillingMapper()),
            BatchTask("ok", random_circuit(4, 5, seed=1),
                      OptimalMapper(lnn(4), uniform_latency(1, 3))),
        ]
        records = map_many(
            tasks, max_workers=2, scheduler="stealing", orphan_retries=1,
        )
        assert [r.label for r in records] == ["crash", "ok"]
        crash = records[0]
        assert not crash.ok
        assert crash.error_type == "WorkerCrashed"
        assert "worker failed" in crash.error
        assert "attempt 2" in crash.error  # retried once, then gave up
        assert records[1].ok

    def test_budget_failure_carries_error_type(self):
        tasks = [
            BatchTask("too-big", qft_skeleton(5),
                      OptimalMapper(lnn(5), uniform_latency(1, 3)))
        ]
        (rec,) = map_many(tasks, max_workers=2, scheduler="stealing",
                          max_nodes=5)
        assert not rec.ok
        assert rec.error_type == "SearchBudgetExceeded"


class TestStaticChunkSizing:
    @pytest.mark.parametrize("count,workers", [(6, 4), (8, 3), (9, 2)])
    def test_at_least_one_chunk_per_worker(self, monkeypatch, count,
                                           workers):
        from concurrent.futures import Future

        from repro.analysis import batch as batch_mod

        submitted = []

        class InlinePool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, chunk, *args, **kwargs):
                submitted.append(len(chunk))
                future = Future()
                future.set_result(fn(chunk, *args, **kwargs))
                return future

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", InlinePool)
        records = map_many(
            _tasks(count), max_workers=workers, scheduler="static",
        )
        assert len(records) == count and all(r.ok for r in records)
        assert len(submitted) >= min(workers, count)
        assert sum(submitted) == count


class TestMapBatchResume:
    @pytest.fixture()
    def qasm_dir(self, tmp_path):
        directory = tmp_path / "circuits"
        directory.mkdir()
        for seed in range(3):
            (directory / f"c{seed}.qasm").write_text(
                to_qasm(random_circuit(4, 6, seed=seed))
            )
        return directory

    def test_resume_skips_completed_circuits(self, qasm_dir, tmp_path,
                                             capsys):
        from repro.cli import main

        out_json = tmp_path / "report.json"
        argv = [
            "map-batch", "--dir", str(qasm_dir), "--arch", "lnn-4",
            "--mapper", "optimal", "--workers", "1",
            "--json-out", str(out_json),
        ]
        assert main(argv) == 0
        capsys.readouterr()

        # A new circuit arrives; resume maps only that one.
        (qasm_dir / "c3.qasm").write_text(
            to_qasm(random_circuit(4, 6, seed=9))
        )
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 3/4 circuits already mapped" in out
        payload = json.loads(out_json.read_text())
        assert len(payload["records"]) == 4
        assert payload["summary"]["succeeded"] == 4
        assert [r["label"] for r in payload["records"]] == [
            "c0", "c1", "c2", "c3"
        ]

    def test_resume_reruns_failed_circuits(self, qasm_dir, tmp_path,
                                           capsys):
        from repro.cli import main

        out_json = tmp_path / "report.json"
        base = [
            "map-batch", "--dir", str(qasm_dir), "--arch", "lnn-4",
            "--mapper", "optimal", "--workers", "1",
            "--json-out", str(out_json),
        ]
        assert main(base + ["--max-nodes", "2"]) == 2  # most circuits fail
        capsys.readouterr()
        first = json.loads(out_json.read_text())
        already_ok = sum(1 for r in first["records"] if r["ok"])
        assert already_ok < 3  # the tiny budget really did fail some

        assert main(base + ["--resume"]) == 0  # failures re-run, succeed
        out = capsys.readouterr().out
        if already_ok:
            assert (
                f"resume: {already_ok}/3 circuits already mapped" in out
            )
        payload = json.loads(out_json.read_text())
        assert payload["summary"]["succeeded"] == 3

    def test_resume_requires_json_out(self, qasm_dir, capsys):
        from repro.cli import main

        code = main([
            "map-batch", "--dir", str(qasm_dir), "--arch", "lnn-4",
            "--resume",
        ])
        assert code == 1
        assert "--resume needs --json-out" in capsys.readouterr().err
