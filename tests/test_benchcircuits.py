"""Tests for the benchmark suites (Tables 1–3 stand-ins)."""

import pytest

from repro.arch import by_name
from repro.benchcircuits import (
    TABLE1,
    TABLE2,
    TABLE3,
    benchmark_circuit,
    benchmark_names,
    large_circuit,
    olsq_architecture,
    olsq_circuit,
    qft10_decomposed,
    table1_row,
    table2_rows,
    table3_row,
    wille_circuit,
)
from repro.circuit import OLSQ_LATENCY, TABLE1_LATENCY, TABLE3_LATENCY


class TestTable1:
    def test_row_count(self):
        assert len(TABLE1) == 23

    @pytest.mark.parametrize("row", TABLE1, ids=lambda r: r.name)
    def test_published_invariants(self, row):
        assert row.optimal_cycle >= row.ideal_cycle
        assert row.num_qubits <= 5  # all run on QX2

    @pytest.mark.parametrize("row", TABLE1[:8], ids=lambda r: r.name)
    def test_regenerated_matches_published_shape(self, row):
        circuit = wille_circuit(row.name)
        assert circuit.num_qubits == row.num_qubits
        assert len(circuit) == row.gate_count
        ideal = circuit.depth(TABLE1_LATENCY)
        assert abs(ideal - row.ideal_cycle) <= max(2, row.ideal_cycle // 10)

    def test_qft4_exact(self):
        circuit = wille_circuit("qft_4")
        assert len(circuit) == 6
        assert circuit.depth(TABLE1_LATENCY) == 10  # published ideal

    def test_deterministic(self):
        assert wille_circuit("miller_11") == wille_circuit("miller_11")

    def test_row_lookup(self):
        assert table1_row("3_17_13").gate_count == 36


class TestTable2:
    def test_row_count(self):
        assert len(TABLE2) == 13

    @pytest.mark.parametrize("row", TABLE2, ids=lambda r: f"{r.name}@{r.arch}")
    def test_published_invariants(self, row):
        assert row.olsq_cycle == row.toqm_cycle  # both exact solvers
        assert row.toqm_cycle >= row.ideal_cycle
        assert row.olsq_overhead_s > row.toqm_overhead_s  # TOQM faster

    def test_published_speedup_range(self):
        ratios = [r.olsq_overhead_s / r.toqm_overhead_s for r in TABLE2]
        assert min(ratios) > 8  # "around 9 to 1500 times faster"
        assert max(ratios) > 1000

    @pytest.mark.parametrize(
        "name", ["or", "adder", "qaoa5", "4gt13_92", "4mod5-v1_22", "mod5mils_65"]
    )
    def test_circuits_hit_published_ideal(self, name):
        row = table2_rows(name)[0]
        circuit = olsq_circuit(name)
        assert circuit.num_qubits == row.num_qubits
        assert abs(circuit.depth(OLSQ_LATENCY) - row.ideal_cycle) <= 1

    def test_queko_rows_have_exact_ideal(self):
        for name in ("queko_05_0", "queko_10_3", "queko_15_1"):
            row = table2_rows(name)[0]
            circuit = olsq_circuit(name)
            assert circuit.depth() == row.ideal_cycle

    def test_architectures_resolve(self):
        for row in TABLE2:
            arch = olsq_architecture(row)
            assert arch.num_qubits >= row.num_qubits


class TestTable3:
    def test_row_count(self):
        assert len(TABLE3) == 26

    def test_published_speedups_match_abstract(self):
        """Speedup over both baselines: 0.99x–1.36x, average 1.21x."""
        speedups = []
        for row in TABLE3:
            speedups.append(row.speedup_vs_sabre)
            speedups.append(row.speedup_vs_zulehner)
        assert min(speedups) >= 0.98
        assert max(speedups) <= 1.37
        sabre_avg = sum(r.speedup_vs_sabre for r in TABLE3) / len(TABLE3)
        zul_avg = sum(r.speedup_vs_zulehner for r in TABLE3) / len(TABLE3)
        assert sabre_avg == pytest.approx(1.23, abs=0.03)
        assert zul_avg == pytest.approx(1.18, abs=0.03)

    def test_qft10_structure(self):
        circuit = qft10_decomposed()
        assert circuit.num_qubits == 10
        assert len(circuit) == 190
        assert abs(circuit.depth(TABLE3_LATENCY) - 97) <= 3

    def test_scaling_cap(self):
        scaled = large_circuit("urf2_277", scale_gate_cap=1000)
        assert len(scaled) == 1000
        small = large_circuit("cm82a_208", scale_gate_cap=1000)
        assert len(small) == 650  # below the cap: published size

    @pytest.mark.parametrize("name", ["cm82a_208", "z4_268", "cm42a_207"])
    def test_calibration_close_to_published_ideal(self, name):
        row = table3_row(name)
        circuit = large_circuit(name, scale_gate_cap=None)
        assert circuit.num_qubits == row.num_qubits
        assert len(circuit) == row.gate_count
        ideal = circuit.depth(TABLE3_LATENCY)
        assert abs(ideal - row.ideal_cycle) / row.ideal_cycle < 0.05


class TestRegistry:
    def test_names_cover_all_tables(self):
        names = benchmark_names()
        assert "3_17_13" in names
        assert "queko_15_1" in names
        assert "mlp4_245" in names

    def test_lookup_each_table(self):
        assert benchmark_circuit("ham3_102").num_qubits == 3
        assert benchmark_circuit("adder").num_qubits == 4
        assert benchmark_circuit("cm82a_208").num_qubits == 8

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            benchmark_circuit("nope")
