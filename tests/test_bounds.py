"""Admissibility tests for the literature-grade bounds (repro.core.bounds).

Every bound ships with a written admissibility argument; these tests
cross-check the arguments empirically: on small random problems no bound
may ever exceed the true optimal depth (computed by the exact search,
including ``find_all_optimal`` exhaustive enumeration), ablating a bound
must never change the depth, and the closed-dominance filter extension
must preserve both the optimum and all-optima enumeration.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.arch import grid, lnn
from repro.circuit import Circuit, uniform_latency
from repro.circuit.generators import linear_entangler, qft_skeleton
from repro.core import OptimalMapper
from repro.core.bounds import (
    assignment_lb,
    layer_weight_lb,
    root_mapping_allowed,
    root_restriction_pairs,
)
from repro.core.problem import MappingProblem
from repro.core.state import SearchNode

# ---------------------------------------------------------------------------
# Strategies and helpers
# ---------------------------------------------------------------------------


@st.composite
def circuits(draw, min_qubits=2, max_qubits=4, max_gates=7):
    """Small random circuits mixing 1- and 2-qubit gates."""
    n = draw(st.integers(min_qubits, max_qubits))
    num_gates = draw(st.integers(1, max_gates))
    circuit = Circuit(n)
    for _ in range(num_gates):
        if n >= 2 and draw(st.booleans()):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 2))
            if b >= a:
                b += 1
            circuit.cx(a, b)
        else:
            circuit.h(draw(st.integers(0, n - 1)))
    return circuit


@st.composite
def latencies(draw):
    return uniform_latency(draw(st.integers(1, 2)), draw(st.integers(1, 4)))


def make_root(problem: MappingProblem, mapping) -> SearchNode:
    """A real-schedule root node at the given initial mapping."""
    pos = tuple(mapping)
    inv = [-1] * problem.num_physical
    for logical, physical in enumerate(pos):
        inv[physical] = logical
    return SearchNode(
        time=0,
        pos=pos,
        inv=tuple(inv),
        ptr=(0,) * problem.num_logical,
        started=0,
        inflight=(),
        last_swaps=frozenset(),
        prev_startable=frozenset(),
        parent=None,
        actions=(),
        prefix_layers=-1,
    )


_PROPERTY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Admissibility: bounds never exceed the true optimum
# ---------------------------------------------------------------------------


@_PROPERTY_SETTINGS
@given(circuits(), latencies())
def test_layer_weight_never_exceeds_mode2_optimum(circuit, latency):
    """The mapping-independent floor holds even for the best mapping."""
    arch = lnn(circuit.num_qubits)
    problem = MappingProblem(circuit, arch, latency)
    optimum = OptimalMapper(
        arch, latency, search_initial_mapping=True
    ).map(circuit).depth
    assert layer_weight_lb(problem) <= optimum


@_PROPERTY_SETTINGS
@given(circuits(max_qubits=3), latencies(), st.randoms(use_true_random=False))
def test_assignment_lb_never_exceeds_pinned_optimum(circuit, latency, rng):
    """The root's work/capacity bound holds for a random pinned mapping."""
    arch = lnn(circuit.num_qubits)
    problem = MappingProblem(circuit, arch, latency)
    mapping = list(range(circuit.num_qubits))
    rng.shuffle(mapping)
    optimum = OptimalMapper(arch, latency).map(
        circuit, initial_mapping=mapping
    ).depth
    assert assignment_lb(problem, make_root(problem, mapping)) <= optimum


def test_bounds_hold_against_exhaustive_all_optima():
    """Cross-check both bounds against ``find_all_optimal`` depths."""
    latency = uniform_latency(1, 3)
    for circuit, arch in [
        (qft_skeleton(3), lnn(3)),
        (linear_entangler(4), lnn(4)),
        (qft_skeleton(4), grid(2, 2)),
    ]:
        problem = MappingProblem(circuit, arch, latency)
        solutions = OptimalMapper(
            arch, latency, search_initial_mapping=True
        ).find_all_optimal(circuit, max_solutions=64)
        assert solutions
        depths = {result.depth for result in solutions}
        assert len(depths) == 1
        optimum = depths.pop()
        assert layer_weight_lb(problem) <= optimum
        for result in solutions:
            root = make_root(problem, result.initial_mapping)
            assert assignment_lb(problem, root) <= optimum


# ---------------------------------------------------------------------------
# Root restriction: loss-free, and its predicate is exact
# ---------------------------------------------------------------------------


def test_root_restriction_pairs_semantics():
    latency = uniform_latency(1, 3)
    # All frontier gates two-qubit: the restriction applies.
    qft = MappingProblem(qft_skeleton(3), lnn(3), latency)
    pairs = root_restriction_pairs(qft)
    assert pairs is not None and all(len(pair) == 2 for pair in pairs)
    # A dependency-free 1-qubit gate can open any schedule: no restriction.
    circuit = Circuit(3)
    circuit.h(2)
    circuit.cx(0, 1)
    assert root_restriction_pairs(
        MappingProblem(circuit, lnn(3), latency)
    ) is None
    # Empty circuit: nothing to restrict.
    assert root_restriction_pairs(
        MappingProblem(Circuit(2), lnn(2), latency)
    ) is None


def test_root_mapping_allowed_matches_adjacency():
    latency = uniform_latency(1, 3)
    circuit = Circuit(3)
    circuit.cx(0, 1)
    problem = MappingProblem(circuit, lnn(3), latency)
    pairs = root_restriction_pairs(problem)
    assert pairs == ((0, 1),)
    assert root_mapping_allowed(problem, (0, 1, 2), pairs)
    assert not root_mapping_allowed(problem, (0, 2, 1), pairs)


@_PROPERTY_SETTINGS
@given(circuits(), latencies())
def test_every_bound_is_individually_ablatable(circuit, latency):
    """Toggling any single lever never changes the mode-2 optimum."""
    arch = lnn(circuit.num_qubits)
    baseline = OptimalMapper(
        arch, latency, search_initial_mapping=True
    ).map(circuit).depth
    for lever in (
        "assignment_bound",
        "layer_bound",
        "root_restriction",
        "closed_dominance",
    ):
        result = OptimalMapper(
            arch, latency, search_initial_mapping=True, **{lever: True}
        ).map(circuit)
        assert result.depth == baseline, lever


# ---------------------------------------------------------------------------
# Closed dominance: parity and find_all safety
# ---------------------------------------------------------------------------


@_PROPERTY_SETTINGS
@given(circuits(), latencies(), st.booleans())
def test_closed_dominance_depth_parity(circuit, latency, mode2):
    arch = lnn(circuit.num_qubits)
    kwargs = dict(search_initial_mapping=mode2)
    baseline = OptimalMapper(arch, latency, **kwargs).map(circuit)
    all_on = OptimalMapper(
        arch,
        latency,
        closed_dominance=True,
        assignment_bound=True,
        layer_bound=True,
        root_restriction=True,
        **kwargs,
    ).map(circuit)
    assert all_on.depth == baseline.depth
    assert all_on.optimal


def test_closed_dominance_forced_off_for_find_all():
    """All-optima enumeration must keep equal-depth alternatives."""
    latency = uniform_latency(1, 3)
    circuit = qft_skeleton(3)
    arch = lnn(3)
    baseline = OptimalMapper(
        arch, latency, search_initial_mapping=True
    ).find_all_optimal(circuit, max_solutions=256)
    extended = OptimalMapper(
        arch, latency, search_initial_mapping=True, closed_dominance=True
    ).find_all_optimal(circuit, max_solutions=256)
    assert len(extended) == len(baseline)
    assert {r.depth for r in extended} == {r.depth for r in baseline}


def test_counters_surface_in_stats():
    """Each lever reports its own counter; ablated levers report zero."""
    latency = uniform_latency(1, 3)
    circuit = qft_skeleton(5)
    arch = lnn(5)
    on = OptimalMapper(
        arch,
        latency,
        search_initial_mapping=True,
        closed_dominance=True,
        assignment_bound=True,
        layer_bound=True,
        root_restriction=True,
    ).map(circuit).stats
    for key in (
        "closed_dominated",
        "pruned_by_assignment_lb",
        "pruned_by_layer_weight",
        "root_candidates_restricted",
    ):
        assert on.get(key, 0) >= 0
    assert on["closed_dominated"] > 0
    assert on["root_candidates_restricted"] > 0
    off = OptimalMapper(
        arch, latency, search_initial_mapping=True
    ).map(circuit).stats
    assert off.get("closed_dominated", 0) == 0
    assert off.get("root_candidates_restricted", 0) == 0


def test_closed_dominance_reduces_expansions_on_acceptance_instance():
    """The headline perf claim: >=25% fewer exact-lane expansions."""
    latency = uniform_latency(1, 3)
    circuit = qft_skeleton(5)
    arch = lnn(5)
    baseline = OptimalMapper(
        arch, latency, search_initial_mapping=True
    ).map(circuit)
    tightened = OptimalMapper(
        arch,
        latency,
        search_initial_mapping=True,
        closed_dominance=True,
        assignment_bound=True,
        layer_bound=True,
        root_restriction=True,
    ).map(circuit)
    assert tightened.depth == baseline.depth == 22
    saved = baseline.stats["nodes_expanded"] - tightened.stats["nodes_expanded"]
    assert saved >= 0.25 * baseline.stats["nodes_expanded"]
