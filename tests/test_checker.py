"""Unit tests for the independent schedule verifier.

Each test corrupts a known-good schedule in one specific way and asserts
the checker catches exactly that violation class.
"""

import pytest

from repro.arch import lnn
from repro.circuit import Circuit, uniform_latency
from repro.core.result import MappingResult, ScheduledOp
from repro.verify import VerificationError, is_valid, validate_result


def good_result():
    """cx(q0,q2) on lnn-3: swap Q1,Q2 then run the gate on Q0,Q1."""
    circuit = Circuit(3, name="good").cx(0, 2).h(2)
    ops = [
        ScheduledOp(None, "swap", (1, 2), (1, 2), 0, 3),
        ScheduledOp(0, "cx", (0, 2), (0, 1), 3, 1),
        ScheduledOp(1, "h", (2,), (1,), 4, 1),
    ]
    return MappingResult(
        circuit=circuit,
        coupling=lnn(3),
        latency=uniform_latency(1, 3),
        initial_mapping=(0, 1, 2),
        ops=ops,
        depth=5,
    )


def replace_op(result, index, **changes):
    op = result.ops[index]
    fields = dict(
        gate_index=op.gate_index,
        name=op.name,
        logical_qubits=op.logical_qubits,
        physical_qubits=op.physical_qubits,
        start=op.start,
        duration=op.duration,
    )
    fields.update(changes)
    result.ops[index] = ScheduledOp(**fields)
    return result


class TestAccepts:
    def test_good_schedule_passes(self):
        validate_result(good_result())
        assert is_valid(good_result())


class TestRejects:
    def test_non_injective_initial_mapping(self):
        result = good_result()
        result.initial_mapping = (0, 0, 2)
        with pytest.raises(VerificationError, match="injective"):
            validate_result(result)

    def test_initial_mapping_wrong_length(self):
        result = good_result()
        result.initial_mapping = (0, 1)
        with pytest.raises(VerificationError, match="covers"):
            validate_result(result)

    def test_non_adjacent_gate(self):
        result = replace_op(good_result(), 1, physical_qubits=(0, 2))
        with pytest.raises(VerificationError, match="non-adjacent"):
            validate_result(result)

    def test_overlapping_ops_on_same_qubit(self):
        result = replace_op(good_result(), 1, start=1)
        with pytest.raises(VerificationError, match="busy"):
            validate_result(result)

    def test_wrong_logical_position(self):
        # Run the gate before the swap takes effect but on free qubits:
        # claim q2 is at Q1 at cycle 0 (it is at Q2).
        result = good_result()
        result.ops.pop(0)  # drop the swap
        with pytest.raises(VerificationError, match="holding logicals"):
            validate_result(result)

    def test_gate_scheduled_twice(self):
        result = good_result()
        result.ops.append(
            ScheduledOp(0, "cx", (0, 2), (0, 1), 10, 1)
        )
        with pytest.raises(VerificationError, match="twice"):
            validate_result(result)

    def test_missing_gate(self):
        result = good_result()
        result.ops.pop()  # drop h(q2)
        with pytest.raises(VerificationError, match="never scheduled"):
            validate_result(result)

    def test_dependency_violation(self):
        # h(q2) depends on cx; start it during the cx.
        result = replace_op(good_result(), 2, start=3)
        with pytest.raises(VerificationError, match="busy|predecessor"):
            validate_result(result)

    def test_wrong_duration(self):
        result = replace_op(good_result(), 1, duration=2)
        with pytest.raises(VerificationError, match="duration|depth"):
            validate_result(result)

    def test_wrong_reported_depth(self):
        result = good_result()
        result.depth = 7
        with pytest.raises(VerificationError, match="depth"):
            validate_result(result)

    def test_inserted_op_must_be_swap(self):
        result = replace_op(good_result(), 0, name="cx")
        with pytest.raises(VerificationError, match="SWAP"):
            validate_result(result)

    def test_wrong_gate_name(self):
        result = replace_op(good_result(), 1, name="cz")
        with pytest.raises(VerificationError, match="name"):
            validate_result(result)


class TestResultHelpers:
    def test_final_mapping(self):
        result = good_result()
        assert result.final_mapping() == (0, 2, 1)

    def test_to_physical_circuit(self):
        physical = good_result().to_physical_circuit()
        assert [g.name for g in physical] == ["swap", "cx", "h"]
        assert physical[1].qubits == (0, 1)

    def test_describe_contains_key_facts(self):
        text = good_result().describe()
        assert "depth" in text and "swaps" in text and "q0->Q0" in text

    def test_num_inserted_swaps(self):
        assert good_result().num_inserted_swaps == 1

    def test_ideal_depth(self):
        assert good_result().ideal_depth == 2


class TestSwapDuration:
    def test_wrong_swap_duration_rejected(self):
        result = replace_op(good_result(), 0, duration=2)
        with pytest.raises(VerificationError, match="SWAP has duration|busy|depth"):
            validate_result(result)
