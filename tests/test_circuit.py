"""Unit tests for the Circuit container."""

import pytest

from repro.circuit import Circuit, IBM_LATENCY, uniform_latency
from repro.circuit.gate import two


class TestConstruction:
    def test_builder_chaining(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)
        assert len(circuit) == 4
        assert circuit[0].name == "h"
        assert circuit[3].qubits == (2,)

    def test_rejects_out_of_range_qubits(self):
        with pytest.raises(ValueError):
            Circuit(2).cx(0, 2)

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_equality(self):
        a = Circuit(2).cx(0, 1)
        b = Circuit(2).cx(0, 1)
        assert a == b
        assert a != Circuit(2).cx(1, 0)


class TestIntrospection:
    def test_count_ops(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1).cx(1, 2)
        assert circuit.count_ops() == {"h": 2, "cx": 2}

    def test_two_qubit_gates(self):
        circuit = Circuit(3).h(0).cx(0, 1).swap(1, 2)
        assert circuit.num_two_qubit_gates == 2
        assert [g.name for g in circuit.two_qubit_gates()] == ["cx", "swap"]

    def test_used_qubits_skips_idle(self):
        circuit = Circuit(5).cx(0, 3)
        assert circuit.used_qubits() == [0, 3]

    def test_interaction_graph_dedupes(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 0).cx(1, 2)
        assert circuit.interaction_graph() == [(0, 1), (1, 2)]


class TestDepth:
    def test_unit_depth_serial_chain(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_unit_depth_parallel(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        assert circuit.depth() == 1

    def test_weighted_depth(self):
        # h(1) then cx(2): critical path through qubit 0 = 1 + 2.
        circuit = Circuit(2).h(0).cx(0, 1)
        assert circuit.depth(IBM_LATENCY) == 3

    def test_empty_circuit_depth_zero(self):
        assert Circuit(3).depth() == 0

    def test_parallel_layers(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        layers = circuit.parallel_layers()
        assert layers == [[0, 1], [2]]


class TestTransforms:
    def test_without_single_qubit_gates(self):
        circuit = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        skeleton = circuit.without_single_qubit_gates()
        assert len(skeleton) == 2
        assert all(g.is_two_qubit for g in skeleton)

    def test_reversed(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        rev = circuit.reversed()
        assert rev[0].name == "cx"
        assert rev[1].name == "h"

    def test_relabeled(self):
        circuit = Circuit(3).cx(0, 2)
        relabeled = circuit.relabeled([2, 1, 0])
        assert relabeled[0].qubits == (2, 0)

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Circuit(3).relabeled([0, 0, 1])

    def test_copy_is_independent(self):
        circuit = Circuit(2).h(0)
        clone = circuit.copy()
        clone.append(two("cx", 0, 1))
        assert len(circuit) == 1
        assert len(clone) == 2
