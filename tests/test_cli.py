"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.obs import REQUIRED_STAT_KEYS, read_jsonl


class TestMapCommand:
    def test_map_qft_on_lnn(self, capsys):
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--latency", "qft"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "depth" in out
        assert "optimal" in out

    def test_map_heuristic_on_tokyo(self, capsys):
        code = main(
            ["map", "--circuit", "random:6:30:1", "--arch", "tokyo",
             "--mapper", "heuristic", "--latency", "ibm"]
        )
        assert code == 0
        assert "heuristic" in capsys.readouterr().out

    def test_map_benchmark_circuit(self, capsys):
        code = main(
            ["map", "--circuit", "bench:or", "--arch", "ibmqx2",
             "--mapper", "optimal", "--latency", "olsq",
             "--search-initial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "depth    : 8" in out  # Table 2: or == ideal == 8

    def test_timeline_flag(self, capsys):
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--latency", "qft", "--timeline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Q0" in out and ("-G-" in out or "=S=" in out)

    def test_qasm_roundtrip_via_file(self, tmp_path, capsys):
        source = tmp_path / "in.qasm"
        source.write_text(
            'OPENQASM 2.0; include "qelib1.inc";\n'
            "qreg q[3]; h q[0]; cx q[0],q[2];\n"
        )
        out_path = tmp_path / "out.qasm"
        code = main(
            ["map", "--circuit", str(source), "--arch", "lnn-3",
             "--qasm-out", str(out_path)]
        )
        assert code == 0
        text = out_path.read_text()
        assert "OPENQASM 2.0;" in text
        assert "swap" in text  # q0,q2 need one

    def test_sabre_and_trivial_mappers(self, capsys):
        for mapper in ("sabre", "zulehner", "trivial"):
            code = main(
                ["map", "--circuit", "random:5:20:2", "--arch", "grid2by3",
                 "--mapper", mapper]
            )
            assert code == 0


class TestTelemetryFlags:
    def test_trace_and_metrics_out_write_parseable_jsonl(
        self, tmp_path, capsys
    ):
        out = tmp_path / "telemetry.jsonl"
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--latency", "qft", "--trace", "--metrics-out", str(out)]
        )
        assert code == 0
        records = read_jsonl(str(out))  # every line must be valid JSON
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"search", "expand", "heuristic", "filter"} <= span_names
        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics[-1]["label"] == "final"
        assert metrics[-1]["metrics"]["search.nodes_expanded"] > 0
        printed = capsys.readouterr().out
        assert "search" in printed  # the rendered span tree
        for key in REQUIRED_STAT_KEYS:
            assert key in printed  # the stats line

    def test_progress_events_print_to_stderr(self, capsys):
        code = main(
            ["map", "--circuit", "qft:5", "--arch", "lnn-5",
             "--latency", "qft", "--progress", "--progress-every", "50"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[toqm-optimal:search]" in err
        assert "expanded=50" in err

    def test_budget_exceeded_exits_2_with_partial_stats(
        self, tmp_path, capsys
    ):
        out = tmp_path / "telemetry.jsonl"
        code = main(
            ["map", "--circuit", "qft:6", "--arch", "lnn-6",
             "--latency", "qft", "--budget", "0.05",
             "--metrics-out", str(out)]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "search budget exceeded" in captured.err
        assert "budget_reason=max_seconds" in captured.out
        records = read_jsonl(str(out))
        labels = [r["label"] for r in records if r["type"] == "metrics"]
        assert "budget_exceeded" in labels and "final" in labels

    def test_olsq_mapper_choice(self, capsys):
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--mapper", "olsq", "--latency", "olsq", "--metrics-out",
             "/dev/null"]
        )
        assert code == 0
        assert "mapper=olsq-style" in capsys.readouterr().out


class TestListingCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "qft_10" in out and "adder" in out

    def test_archs_listing(self, capsys):
        assert main(["archs"]) == 0
        out = capsys.readouterr().out
        assert "ibmqx2" in out and "tokyo" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
