"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestMapCommand:
    def test_map_qft_on_lnn(self, capsys):
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--latency", "qft"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "depth" in out
        assert "optimal" in out

    def test_map_heuristic_on_tokyo(self, capsys):
        code = main(
            ["map", "--circuit", "random:6:30:1", "--arch", "tokyo",
             "--mapper", "heuristic", "--latency", "ibm"]
        )
        assert code == 0
        assert "heuristic" in capsys.readouterr().out

    def test_map_benchmark_circuit(self, capsys):
        code = main(
            ["map", "--circuit", "bench:or", "--arch", "ibmqx2",
             "--mapper", "optimal", "--latency", "olsq",
             "--search-initial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "depth    : 8" in out  # Table 2: or == ideal == 8

    def test_timeline_flag(self, capsys):
        code = main(
            ["map", "--circuit", "qft:4", "--arch", "lnn-4",
             "--latency", "qft", "--timeline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Q0" in out and ("-G-" in out or "=S=" in out)

    def test_qasm_roundtrip_via_file(self, tmp_path, capsys):
        source = tmp_path / "in.qasm"
        source.write_text(
            'OPENQASM 2.0; include "qelib1.inc";\n'
            "qreg q[3]; h q[0]; cx q[0],q[2];\n"
        )
        out_path = tmp_path / "out.qasm"
        code = main(
            ["map", "--circuit", str(source), "--arch", "lnn-3",
             "--qasm-out", str(out_path)]
        )
        assert code == 0
        text = out_path.read_text()
        assert "OPENQASM 2.0;" in text
        assert "swap" in text  # q0,q2 need one

    def test_sabre_and_trivial_mappers(self, capsys):
        for mapper in ("sabre", "zulehner", "trivial"):
            code = main(
                ["map", "--circuit", "random:5:20:2", "--arch", "grid2by3",
                 "--mapper", mapper]
            )
            assert code == 0


class TestListingCommands:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "qft_10" in out and "adder" in out

    def test_archs_listing(self, capsys):
        assert main(["archs"]) == 0
        out = capsys.readouterr().out
        assert "ibmqx2" in out and "tokyo" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
