"""Tests for the corpus throughput harness (``repro.analysis.corpus``)."""

import json

import pytest

from repro.analysis.corpus import (
    append_corpus_trajectory,
    base_circuits,
    build_corpus,
    corpus_suite,
    identity_mismatches,
    run_corpus,
)
from repro.arch import lnn
from repro.circuit import uniform_latency
from repro.core import HeuristicMapper


def _mapper_factory():
    return HeuristicMapper(lnn(5), uniform_latency(1, 3))


class TestBuildCorpus:
    def test_deterministic_for_a_seed(self):
        first = build_corpus(20, seed=3, max_qubits=5)
        second = build_corpus(20, seed=3, max_qubits=5)
        assert [label for label, _ in first] == [
            label for label, _ in second
        ]
        assert build_corpus(20, seed=4, max_qubits=5) != first

    def test_size_repeats_and_unique_labels(self):
        stream = build_corpus(20, seed=0, max_qubits=5, repeat_factor=4)
        labels = [label for label, _ in stream]
        assert len(stream) == 20
        assert len(set(labels)) == 20  # occurrence-suffixed labels
        bases = {label.rsplit("@", 1)[0] for label in labels}
        assert len(bases) <= 5  # 20 requests / repeat factor 4
        assert len(bases) < len(stream)  # repetition actually happens

    def test_max_qubits_filters_pool(self):
        for _, circuit in base_circuits(max_qubits=5):
            assert circuit.num_qubits <= 5
        for label, circuit in build_corpus(10, max_qubits=5):
            assert circuit.num_qubits <= 5

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            build_corpus(0)
        with pytest.raises(ValueError):
            build_corpus(10, repeat_factor=0)
        with pytest.raises(ValueError):
            build_corpus(10, max_qubits=0)


class TestRunCorpus:
    def test_sequential_summary_shape(self):
        stream = build_corpus(6, seed=0, max_qubits=5, repeat_factor=3)
        summary = run_corpus(stream, _mapper_factory, workers=1)
        assert summary["circuits"] == 6
        assert summary["ok"] == 6 and summary["failed"] == 0
        assert summary["circuits_per_min"] > 0
        assert summary["nodes_expanded"] > 0
        assert len(summary["records"]) == 6
        # no telemetry dir → rollup-derived fields are absent, not fake
        assert summary["queue_wait_frac"] is None
        assert summary["warm_cache_hit_rate"] is None

    def test_telemetry_dir_fills_fleet_fields(self, tmp_path):
        stream = build_corpus(6, seed=0, max_qubits=5, repeat_factor=3)
        summary = run_corpus(
            stream, _mapper_factory, workers=2,
            telemetry_dir=str(tmp_path),
        )
        assert summary["ok"] == 6
        assert summary["queue_wait_frac"] is not None
        assert summary["warm_cache_hit_rate"] is not None
        assert (tmp_path / "fleet.json").exists()

    def test_identity_same_stream_matches(self):
        stream = build_corpus(6, seed=1, max_qubits=5, repeat_factor=3)
        warm = run_corpus(stream, _mapper_factory, workers=2)
        reference = run_corpus(stream, _mapper_factory, workers=1)
        assert identity_mismatches(warm, reference) == []

    def test_identity_flags_divergence(self):
        stream = build_corpus(4, seed=1, max_qubits=5, repeat_factor=2)
        a = run_corpus(stream, _mapper_factory, workers=1)
        b = run_corpus(stream, _mapper_factory, workers=1)
        b["records"][0]["depth"] = -1
        mismatches = identity_mismatches(a, b)
        assert len(mismatches) == 1 and "depth" in mismatches[0]


class TestTrajectoryRecording:
    def _summary(self, cpm):
        return {
            "scheduler": "stealing", "warm_cache": True, "workers": 4,
            "circuits": 100, "ok": 100, "failed": 0,
            "wall_seconds": 6000.0 / cpm, "circuits_per_min": cpm,
            "mapping_seconds": 10.0, "nodes_expanded": 1234,
            "queue_wait_frac": 0.2, "warm_cache_hit_rate": 0.75,
            "records": [],
        }

    def test_append_creates_and_extends_trajectory(self, tmp_path):
        path = str(tmp_path / "BENCH_search.json")
        name, suite = corpus_suite(self._summary(120.0))
        assert name == "corpus_fleet"
        entry = append_corpus_trajectory(path, {name: suite},
                                         kernel_backend="pure")
        assert entry["suites"]["corpus_fleet"]["circuits_per_min"] == 120.0
        append_corpus_trajectory(path, {name: suite},
                                 kernel_backend="pure")
        report = json.loads((tmp_path / "BENCH_search.json").read_text())
        assert report["schema"] == "repro.bench_search/2"
        assert len(report["trajectory"]) == 2
        recorded = report["trajectory"][0]["suites"]["corpus_fleet"]
        assert recorded["warm_cache_hit_rate"] == 0.75
        assert recorded["queue_wait_frac"] == 0.2

    def test_check_trend_gates_throughput(self, tmp_path):
        from repro.analysis.diagnose import check_trend

        path = str(tmp_path / "BENCH_search.json")
        fast = corpus_suite(self._summary(120.0))
        slow = corpus_suite(self._summary(50.0))  # < 0.67 × 120
        append_corpus_trajectory(path, {fast[0]: fast[1]},
                                 kernel_backend="pure")
        append_corpus_trajectory(path, {slow[0]: slow[1]},
                                 kernel_backend="pure")
        report = json.loads((tmp_path / "BENCH_search.json").read_text())
        ok, messages = check_trend(report)
        assert not ok
        assert any("circuits_per_min regressed" in m for m in messages)

        # within tolerance passes
        fine = corpus_suite(self._summary(110.0))
        append_corpus_trajectory(path, {fine[0]: fine[1]},
                                 kernel_backend="pure")
        report = json.loads((tmp_path / "BENCH_search.json").read_text())
        ok, messages = check_trend(report)
        assert ok
        assert any("circuits_per_min 110.0" in m for m in messages)


class TestCorpusCli:
    def test_corpus_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        bench_json = tmp_path / "BENCH_search.json"
        code = main([
            "corpus", "--size", "6", "--repeat-factor", "3",
            "--arch", "lnn-5", "--latency", "unit", "--workers", "1",
            "--verify-identity", "--record",
            "--bench-json", str(bench_json),
            "--json-out", str(tmp_path / "corpus.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "6 requests" in out
        assert "circuits/min" in out
        assert "identity      : OK" in out
        report = json.loads(bench_json.read_text())
        assert "corpus_fleet" in report["trajectory"][-1]["suites"]
        payload = json.loads((tmp_path / "corpus.json").read_text())
        assert payload["corpus"]["ok"] == 6
