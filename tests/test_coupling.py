"""Unit tests for coupling graphs and the swap-free embedding fast path."""

import pytest

from repro.arch import CouplingGraph, find_swap_free_mapping, grid, ibm_qx2, lnn


class TestConstruction:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 2)])

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            CouplingGraph(4, [(0, 1), (2, 3)])

    def test_edges_deduplicated_and_normalized(self):
        g = CouplingGraph(3, [(1, 0), (0, 1), (1, 2)])
        assert g.edges == ((0, 1), (1, 2))


class TestQueries:
    def test_adjacency_symmetric(self, qx2):
        assert qx2.are_adjacent(3, 4)
        assert qx2.are_adjacent(4, 3)
        assert not qx2.are_adjacent(0, 3)

    def test_neighbors(self, qx2):
        assert qx2.neighbors(2) == (0, 1, 3, 4)

    def test_lnn_distance(self):
        g = lnn(6)
        assert g.distance(0, 5) == 5
        assert g.distance(2, 2) == 0
        assert g.diameter == 5

    def test_grid_distance_manhattan(self):
        g = grid(2, 4)
        # column-major indexing: Q(row, col) = 2*col + row
        assert g.distance(0, 7) == 4  # (0,0) -> (1,3)
        assert g.distance(1, 6) == 4  # (1,0) -> (0,3)

    def test_longest_simple_path_exact_on_small(self):
        assert lnn(5).longest_simple_path_bound() == 4
        # 2x3 grid contains a Hamiltonian path of 5 edges.
        assert grid(2, 3).longest_simple_path_bound() == 5

    def test_longest_simple_path_fallback_on_large(self, tokyo):
        assert tokyo.longest_simple_path_bound() == 19

    def test_to_networkx(self, qx2):
        g = qx2.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 6


class TestSwapFreeMapping:
    def test_embeds_path_into_grid(self):
        mapping = find_swap_free_mapping([(0, 1), (1, 2), (2, 3)], grid(2, 2), 4)
        assert mapping is not None
        g = grid(2, 2)
        for a, b in [(0, 1), (1, 2), (2, 3)]:
            assert g.are_adjacent(mapping[a], mapping[b])

    def test_star_does_not_embed_into_lnn(self):
        # A degree-3 star cannot embed into a path.
        star = [(0, 1), (0, 2), (0, 3)]
        assert find_swap_free_mapping(star, lnn(4), 4) is None

    def test_all_logicals_assigned_even_isolated(self):
        mapping = find_swap_free_mapping([(0, 1)], lnn(5), 4)
        assert mapping is not None
        assert sorted(mapping) == [0, 1, 2, 3]
        assert len(set(mapping.values())) == 4

    def test_too_many_logicals(self):
        assert find_swap_free_mapping([], lnn(2), 3) is None
