"""Unit tests for the per-qubit dependency DAG."""

from repro.circuit import Circuit
from repro.circuit.dag import DependencyGraph


def chain_circuit():
    return Circuit(3).h(0).cx(0, 1).cx(1, 2).h(2)


class TestPredecessors:
    def test_first_gates_have_no_preds(self):
        dag = DependencyGraph(chain_circuit())
        assert dag.preds[0] == ()

    def test_chain_preds(self):
        dag = DependencyGraph(chain_circuit())
        assert dag.preds[1] == (0,)
        assert dag.preds[2] == (1,)
        assert dag.preds[3] == (2,)

    def test_two_qubit_gate_merges_preds(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1)
        dag = DependencyGraph(circuit)
        assert set(dag.preds[2]) == {0, 1}

    def test_duplicate_pred_deduplicated(self):
        # cx(0,1) followed by cx(0,1): the second depends on the first via
        # both qubits, but it should appear once.
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        dag = DependencyGraph(circuit)
        assert dag.preds[1] == (0,)

    def test_succs_inverse_of_preds(self):
        dag = DependencyGraph(chain_circuit())
        for gate, preds in enumerate(dag.preds):
            for pred in preds:
                assert gate in dag.succs[pred]


class TestStructure:
    def test_qubit_gates_in_program_order(self):
        dag = DependencyGraph(chain_circuit())
        assert dag.qubit_gates[1] == [1, 2]

    def test_pred_on_qubit(self):
        dag = DependencyGraph(chain_circuit())
        assert dag.pred_on_qubit(2, 1) == 1
        assert dag.pred_on_qubit(1, 0) == 0
        assert dag.pred_on_qubit(0, 0) is None

    def test_roots(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(1, 2)
        dag = DependencyGraph(circuit)
        assert dag.roots() == [0, 1]

    def test_critical_path_matches_depth(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3).cx(1, 2).h(0)
        dag = DependencyGraph(circuit)
        latencies = [1] * len(circuit)
        assert dag.critical_path_length(latencies) == circuit.depth()

    def test_weighted_critical_path(self):
        circuit = Circuit(2).cx(0, 1).cx(0, 1)
        dag = DependencyGraph(circuit)
        assert dag.critical_path_length([2, 2]) == 4
