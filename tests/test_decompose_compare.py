"""Tests for gate decomposition and the mapper-comparison utility."""

import math

import numpy as np
import pytest

from repro.analysis.compare import compare_mappers
from repro.arch import grid, lnn
from repro.baselines import SabreMapper, TrivialMapper
from repro.circuit import Circuit, uniform_latency
from repro.circuit.decompose import (
    decompose_cu1,
    decompose_cz,
    decompose_swaps,
    decompose_to_basis,
    swap_cx_overhead,
)
from repro.circuit.generators import qft_full, random_circuit
from repro.core import HeuristicMapper, OptimalMapper
from repro.verify.simulator import simulate


class TestDecompositions:
    def test_swap_becomes_three_cx(self):
        circuit = Circuit(2).swap(0, 1)
        lowered = decompose_swaps(circuit)
        assert [g.name for g in lowered] == ["cx", "cx", "cx"]
        assert np.allclose(simulate(Circuit(2).x(0)), simulate(Circuit(2).x(0)))

    def test_swap_semantics_preserved(self):
        circuit = Circuit(3).h(0).cx(0, 1).swap(1, 2).cx(0, 1)
        lowered = decompose_swaps(circuit)
        assert np.allclose(simulate(circuit), simulate(lowered))

    def test_cu1_semantics_preserved(self):
        circuit = Circuit(2).h(0).h(1).add(
            "cu1", 0, 1, params=(math.pi / 3,)
        )
        lowered = decompose_cu1(circuit)
        assert "cu1" not in lowered.count_ops()
        assert np.allclose(simulate(circuit), simulate(lowered))

    def test_cz_and_gt_semantics_preserved(self):
        circuit = Circuit(2).h(0).h(1).cz(0, 1).gt(0, 1)
        lowered = decompose_cz(circuit)
        assert set(lowered.count_ops()) == {"h", "cx"}
        assert np.allclose(simulate(circuit), simulate(lowered))

    def test_full_qft_lowering(self):
        circuit = qft_full(4)
        lowered = decompose_to_basis(circuit)
        assert set(lowered.count_ops()) <= {"h", "cx", "u1"}
        assert np.allclose(simulate(circuit), simulate(lowered))

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            decompose_to_basis(Circuit(2).add("ccx-ish", 0, 1))

    def test_swap_overhead_counter(self):
        circuit = Circuit(3).swap(0, 1).swap(1, 2).h(0)
        assert swap_cx_overhead(circuit) == 4
        assert len(decompose_swaps(circuit)) == len(circuit) + 4

    def test_qft10_gate_count_via_decomposition(self):
        # Table 3's qft_10 row: full QFT lowered to CX/U1 basis.
        lowered = decompose_to_basis(decompose_cu1(qft_full(10)))
        counts = lowered.count_ops()
        assert counts["cx"] == 2 * 45
        assert counts["h"] == 10


class TestCompareMappers:
    def test_report_structure(self):
        circuit = random_circuit(5, 40, two_qubit_fraction=0.6, seed=3)
        arch = grid(2, 3)
        latency = uniform_latency(1, 3)
        report = compare_mappers(
            circuit,
            arch,
            [
                ("toqm", HeuristicMapper(arch, latency)),
                ("sabre", SabreMapper(arch, latency, seed=0)),
                ("trivial", TrivialMapper(arch, latency)),
            ],
            latency=latency,
        )
        assert len(report.entries) == 3
        assert report.best().depth == min(e.depth for e in report.entries)
        assert report.best().label != "trivial"
        speedups = report.speedups("toqm")
        assert speedups["toqm"] == 1.0
        table = report.to_table()
        assert "mapper" in table and "trivial" in table

    def test_fidelity_tracks_depth(self):
        circuit = random_circuit(4, 30, two_qubit_fraction=0.7, seed=9)
        arch = lnn(4)
        latency = uniform_latency(1, 3)
        report = compare_mappers(
            circuit,
            arch,
            [
                ("optimal", OptimalMapper(arch, latency)),
                ("trivial", TrivialMapper(arch, latency)),
            ],
            latency=latency,
        )
        by_label = {e.label: e for e in report.entries}
        assert by_label["optimal"].depth <= by_label["trivial"].depth
        assert by_label["optimal"].fidelity >= by_label["trivial"].fidelity
